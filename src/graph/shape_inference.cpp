#include "graph/shape_inference.hpp"

#include <mutex>

#include "graph/op_params.hpp"

namespace orpheus {

namespace {

std::unordered_map<std::string, ShapeInferenceRule> &
rule_registry()
{
    static std::unordered_map<std::string, ShapeInferenceRule> registry;
    return registry;
}

std::mutex &
registry_mutex()
{
    static std::mutex m;
    return m;
}

// --- Shared helpers ------------------------------------------------------

ValueInfo
same_as(const ValueInfo &input, std::string name = "")
{
    ValueInfo out = input;
    out.name = std::move(name);
    return out;
}

void
require_rank(const ValueInfo &info, std::size_t rank, const Node &node)
{
    ORPHEUS_CHECK(info.shape.rank() == rank,
                  node.op_type() << " node " << node.name() << ": value "
                                 << info.name << " must have rank " << rank
                                 << ", got " << info.shape);
}

/** NumPy-style broadcast of two shapes (used by Add/Mul). */
Shape
broadcast_shapes(const Shape &a, const Shape &b, const Node &node)
{
    const std::size_t rank = std::max(a.rank(), b.rank());
    std::vector<Shape::dim_type> dims(rank, 1);
    for (std::size_t i = 0; i < rank; ++i) {
        const Shape::dim_type da =
            i < rank - a.rank() ? 1 : a.dim(static_cast<int>(i - (rank - a.rank())));
        const Shape::dim_type db =
            i < rank - b.rank() ? 1 : b.dim(static_cast<int>(i - (rank - b.rank())));
        ORPHEUS_CHECK(da == db || da == 1 || db == 1,
                      node.op_type() << " node " << node.name()
                                     << ": cannot broadcast " << a << " with "
                                     << b);
        dims[i] = std::max(da, db);
    }
    return Shape(dims);
}

// --- Per-op rules ---------------------------------------------------------

std::vector<ValueInfo>
infer_conv(const ShapeInferenceContext &ctx)
{
    const ValueInfo &x = ctx.input(0);
    const ValueInfo &w = ctx.input(1);
    require_rank(x, 4, ctx.node);
    require_rank(w, 4, ctx.node);

    const Conv2dParams p = Conv2dParams::from_attrs(ctx.node.attrs(), w.shape);
    const auto in_channels = x.shape.dim(1);
    const auto out_channels = w.shape.dim(0);
    ORPHEUS_CHECK(w.shape.dim(1) * p.group == in_channels,
                  "Conv " << ctx.node.name() << ": weight " << w.shape
                          << " with group " << p.group
                          << " does not match input channels " << in_channels);
    ORPHEUS_CHECK(out_channels % p.group == 0,
                  "Conv " << ctx.node.name() << ": output channels "
                          << out_channels << " not divisible by group "
                          << p.group);
    ORPHEUS_CHECK(w.shape.dim(2) == p.kernel_h && w.shape.dim(3) == p.kernel_w,
                  "Conv " << ctx.node.name() << ": kernel_shape attribute ["
                          << p.kernel_h << ", " << p.kernel_w
                          << "] disagrees with weight " << w.shape);
    if (ctx.node.has_input(2)) {
        const ValueInfo &bias = ctx.input(2);
        require_rank(bias, 1, ctx.node);
        ORPHEUS_CHECK(bias.shape.dim(0) == out_channels,
                      "Conv " << ctx.node.name() << ": bias " << bias.shape
                              << " does not match output channels "
                              << out_channels);
    }

    Shape out({x.shape.dim(0), out_channels, p.out_h(x.shape.dim(2)),
               p.out_w(x.shape.dim(3))});
    return {ValueInfo{"", x.dtype, std::move(out)}};
}

std::vector<ValueInfo>
infer_pool(const ShapeInferenceContext &ctx)
{
    const ValueInfo &x = ctx.input(0);
    require_rank(x, 4, ctx.node);
    const Pool2dParams p = Pool2dParams::from_attrs(ctx.node.attrs());
    Shape out({x.shape.dim(0), x.shape.dim(1), p.out_h(x.shape.dim(2)),
               p.out_w(x.shape.dim(3))});
    return {ValueInfo{"", x.dtype, std::move(out)}};
}

std::vector<ValueInfo>
infer_global_average_pool(const ShapeInferenceContext &ctx)
{
    const ValueInfo &x = ctx.input(0);
    require_rank(x, 4, ctx.node);
    return {ValueInfo{"", x.dtype,
                      Shape({x.shape.dim(0), x.shape.dim(1), 1, 1})}};
}

std::vector<ValueInfo>
infer_elementwise_unary(const ShapeInferenceContext &ctx)
{
    return {same_as(ctx.input(0))};
}

std::vector<ValueInfo>
infer_elementwise_binary(const ShapeInferenceContext &ctx)
{
    const ValueInfo &a = ctx.input(0);
    const ValueInfo &b = ctx.input(1);
    ORPHEUS_CHECK(a.dtype == b.dtype,
                  ctx.node.op_type() << " " << ctx.node.name()
                                     << ": dtype mismatch " << a.dtype
                                     << " vs " << b.dtype);
    return {ValueInfo{"", a.dtype,
                      broadcast_shapes(a.shape, b.shape, ctx.node)}};
}

std::vector<ValueInfo>
infer_concat(const ShapeInferenceContext &ctx)
{
    ORPHEUS_CHECK(!ctx.input_infos.empty(),
                  "Concat " << ctx.node.name() << " has no inputs");
    const ValueInfo &first = ctx.input(0);
    const int axis = first.shape.normalize_axis(
        static_cast<int>(ctx.node.attrs().get_int("axis", 1)));

    Shape::dim_type total = 0;
    for (const ValueInfo &input : ctx.input_infos) {
        ORPHEUS_CHECK(input.shape.rank() == first.shape.rank(),
                      "Concat " << ctx.node.name() << ": rank mismatch");
        for (int d = 0; d < static_cast<int>(first.shape.rank()); ++d) {
            if (d == axis)
                continue;
            ORPHEUS_CHECK(input.shape.dim(d) == first.shape.dim(d),
                          "Concat " << ctx.node.name()
                                    << ": non-axis dimension mismatch "
                                    << input.shape << " vs " << first.shape);
        }
        total += input.shape.dim(axis);
    }

    Shape out = first.shape;
    out.set_dim(axis, total);
    return {ValueInfo{"", first.dtype, std::move(out)}};
}

std::vector<ValueInfo>
infer_gemm(const ShapeInferenceContext &ctx)
{
    const ValueInfo &a = ctx.input(0);
    const ValueInfo &b = ctx.input(1);
    require_rank(a, 2, ctx.node);
    require_rank(b, 2, ctx.node);
    const bool trans_a = ctx.node.attrs().get_int("transA", 0) != 0;
    const bool trans_b = ctx.node.attrs().get_int("transB", 0) != 0;
    const auto m = trans_a ? a.shape.dim(1) : a.shape.dim(0);
    const auto ka = trans_a ? a.shape.dim(0) : a.shape.dim(1);
    const auto kb = trans_b ? b.shape.dim(1) : b.shape.dim(0);
    const auto n = trans_b ? b.shape.dim(0) : b.shape.dim(1);
    ORPHEUS_CHECK(ka == kb, "Gemm " << ctx.node.name()
                                    << ": inner dimensions disagree (" << ka
                                    << " vs " << kb << ")");
    return {ValueInfo{"", a.dtype, Shape({m, n})}};
}

std::vector<ValueInfo>
infer_matmul(const ShapeInferenceContext &ctx)
{
    const ValueInfo &a = ctx.input(0);
    const ValueInfo &b = ctx.input(1);
    require_rank(a, 2, ctx.node);
    require_rank(b, 2, ctx.node);
    ORPHEUS_CHECK(a.shape.dim(1) == b.shape.dim(0),
                  "MatMul " << ctx.node.name() << ": inner dims disagree");
    return {ValueInfo{"", a.dtype, Shape({a.shape.dim(0), b.shape.dim(1)})}};
}

std::vector<ValueInfo>
infer_flatten(const ShapeInferenceContext &ctx)
{
    const ValueInfo &x = ctx.input(0);
    const int axis = static_cast<int>(ctx.node.attrs().get_int("axis", 1));
    const int rank = static_cast<int>(x.shape.rank());
    ORPHEUS_CHECK(axis >= 0 && axis <= rank,
                  "Flatten " << ctx.node.name() << ": axis " << axis
                             << " out of range for rank " << rank);
    Shape::dim_type rows = 1, cols = 1;
    for (int d = 0; d < axis; ++d)
        rows *= x.shape.dim(d);
    for (int d = axis; d < rank; ++d)
        cols *= x.shape.dim(d);
    return {ValueInfo{"", x.dtype, Shape({rows, cols})}};
}

std::vector<ValueInfo>
infer_reshape(const ShapeInferenceContext &ctx)
{
    const ValueInfo &x = ctx.input(0);
    const std::string &shape_value = ctx.node.input(1);
    ORPHEUS_CHECK(ctx.graph.has_initializer(shape_value),
                  "Reshape " << ctx.node.name()
                             << ": shape operand must be a constant "
                                "initializer, got "
                             << shape_value);
    const Tensor &shape_tensor = ctx.graph.initializer(shape_value);
    ORPHEUS_CHECK(shape_tensor.dtype() == DataType::kInt64,
                  "Reshape " << ctx.node.name()
                             << ": shape operand must be int64");

    const std::int64_t *spec = shape_tensor.data<std::int64_t>();
    std::vector<Shape::dim_type> dims(
        static_cast<std::size_t>(shape_tensor.numel()));
    std::int64_t known = 1;
    int wildcard = -1;
    for (std::size_t i = 0; i < dims.size(); ++i) {
        std::int64_t d = spec[i];
        if (d == 0) // ONNX: 0 copies the input dimension.
            d = x.shape.dim(static_cast<int>(i));
        if (d == -1) {
            ORPHEUS_CHECK(wildcard < 0, "Reshape " << ctx.node.name()
                                                   << ": multiple -1 dims");
            wildcard = static_cast<int>(i);
            dims[i] = 1;
            continue;
        }
        ORPHEUS_CHECK(d > 0, "Reshape " << ctx.node.name()
                                        << ": invalid dimension " << spec[i]);
        dims[i] = d;
        known *= d;
    }
    if (wildcard >= 0) {
        ORPHEUS_CHECK(known != 0 && x.shape.numel() % known == 0,
                      "Reshape " << ctx.node.name() << ": cannot infer -1 in "
                                 << x.shape << " -> requested spec");
        dims[static_cast<std::size_t>(wildcard)] = x.shape.numel() / known;
    }

    Shape out(dims);
    ORPHEUS_CHECK(out.numel() == x.shape.numel(),
                  "Reshape " << ctx.node.name() << ": element count changes ("
                             << x.shape << " -> " << out << ")");
    return {ValueInfo{"", x.dtype, std::move(out)}};
}

std::vector<ValueInfo>
infer_batchnorm(const ShapeInferenceContext &ctx)
{
    const ValueInfo &x = ctx.input(0);
    require_rank(x, 4, ctx.node);
    const auto channels = x.shape.dim(1);
    for (std::size_t i = 1; i <= 4; ++i) {
        const ValueInfo &param = ctx.input(i);
        require_rank(param, 1, ctx.node);
        ORPHEUS_CHECK(param.shape.dim(0) == channels,
                      "BatchNormalization " << ctx.node.name() << ": operand "
                                            << i << " has " << param.shape
                                            << ", expected [" << channels
                                            << "]");
    }
    return {same_as(x)};
}

std::vector<ValueInfo>
infer_pad(const ShapeInferenceContext &ctx)
{
    const ValueInfo &x = ctx.input(0);
    const auto pads = ctx.node.attrs().at("pads").as_ints();
    const std::size_t rank = x.shape.rank();
    ORPHEUS_CHECK(pads.size() == 2 * rank,
                  "Pad " << ctx.node.name() << ": pads must have "
                         << 2 * rank << " entries, got " << pads.size());
    std::vector<Shape::dim_type> dims(rank);
    for (std::size_t d = 0; d < rank; ++d) {
        ORPHEUS_CHECK(pads[d] >= 0 && pads[rank + d] >= 0,
                      "Pad " << ctx.node.name()
                             << ": negative pads are not supported");
        dims[d] = x.shape.dim(static_cast<int>(d)) + pads[d] + pads[rank + d];
    }
    return {ValueInfo{"", x.dtype, Shape(dims)}};
}

std::vector<ValueInfo>
infer_constant(const ShapeInferenceContext &ctx)
{
    const Tensor &value = ctx.node.attrs().at("value").as_tensor();
    return {ValueInfo{"", value.dtype(), value.shape()}};
}

std::vector<ValueInfo>
infer_reduce_mean(const ShapeInferenceContext &ctx)
{
    const ValueInfo &x = ctx.input(0);
    const auto axes = ctx.node.attrs().at("axes").as_ints();
    const bool keepdims = ctx.node.attrs().get_int("keepdims", 1) != 0;

    std::vector<bool> reduced(x.shape.rank(), false);
    for (std::int64_t axis : axes)
        reduced[static_cast<std::size_t>(
            x.shape.normalize_axis(static_cast<int>(axis)))] = true;

    std::vector<Shape::dim_type> dims;
    for (std::size_t d = 0; d < x.shape.rank(); ++d) {
        if (!reduced[d])
            dims.push_back(x.shape.dim(static_cast<int>(d)));
        else if (keepdims)
            dims.push_back(1);
    }
    return {ValueInfo{"", x.dtype, Shape(dims)}};
}

std::vector<ValueInfo>
infer_argmax(const ShapeInferenceContext &ctx)
{
    const ValueInfo &x = ctx.input(0);
    const int axis = x.shape.normalize_axis(
        static_cast<int>(ctx.node.attrs().get_int("axis", 0)));
    const bool keepdims = ctx.node.attrs().get_int("keepdims", 1) != 0;

    std::vector<Shape::dim_type> dims;
    for (int d = 0; d < static_cast<int>(x.shape.rank()); ++d) {
        if (d != axis)
            dims.push_back(x.shape.dim(d));
        else if (keepdims)
            dims.push_back(1);
    }
    return {ValueInfo{"", DataType::kInt64, Shape(dims)}};
}

std::vector<ValueInfo>
infer_dropout(const ShapeInferenceContext &ctx)
{
    // Inference-mode dropout is the identity; the optional mask output is
    // not produced by Orpheus.
    std::vector<ValueInfo> outs(ctx.node.outputs().size(),
                                same_as(ctx.input(0)));
    if (outs.size() > 1)
        outs[1] = ValueInfo{"", DataType::kBool, ctx.input(0).shape};
    return outs;
}

std::vector<ValueInfo>
infer_quantize_linear(const ShapeInferenceContext &ctx)
{
    const ValueInfo &x = ctx.input(0);
    // The output dtype follows the zero-point tensor (ONNX convention);
    // uint8 when the zero point is omitted.
    DataType dtype = DataType::kUInt8;
    if (ctx.node.has_input(2))
        dtype = ctx.input(2).dtype;
    return {ValueInfo{"", dtype, x.shape}};
}

std::vector<ValueInfo>
infer_dequantize_linear(const ShapeInferenceContext &ctx)
{
    return {ValueInfo{"", DataType::kFloat32, ctx.input(0).shape}};
}

std::vector<ValueInfo>
infer_qlinear_conv(const ShapeInferenceContext &ctx)
{
    const ValueInfo &x = ctx.input(0);
    const ValueInfo &w = ctx.input(3);
    require_rank(x, 4, ctx.node);
    require_rank(w, 4, ctx.node);
    ORPHEUS_CHECK(x.dtype == DataType::kUInt8 &&
                      w.dtype == DataType::kInt8,
                  "QLinearConv " << ctx.node.name()
                                 << ": expects uint8 activations and int8 "
                                    "weights, got "
                                 << x.dtype << " / " << w.dtype);
    const Conv2dParams p = Conv2dParams::from_attrs(ctx.node.attrs(), w.shape);
    ORPHEUS_CHECK(w.shape.dim(1) * p.group == x.shape.dim(1),
                  "QLinearConv " << ctx.node.name()
                                 << ": weight/input channel mismatch");
    Shape out({x.shape.dim(0), w.shape.dim(0), p.out_h(x.shape.dim(2)),
               p.out_w(x.shape.dim(3))});
    return {ValueInfo{"", DataType::kUInt8, std::move(out)}};
}

std::once_flag g_builtin_rules_once;

void
register_builtin_rules()
{
    auto &registry = rule_registry();
    registry[op_names::kConv] = infer_conv;
    registry[op_names::kMaxPool] = infer_pool;
    registry[op_names::kAveragePool] = infer_pool;
    registry[op_names::kGlobalAveragePool] = infer_global_average_pool;
    registry[op_names::kRelu] = infer_elementwise_unary;
    registry[op_names::kLeakyRelu] = infer_elementwise_unary;
    registry[op_names::kSigmoid] = infer_elementwise_unary;
    registry[op_names::kTanh] = infer_elementwise_unary;
    registry[op_names::kClip] = infer_elementwise_unary;
    registry[op_names::kSoftmax] = infer_elementwise_unary;
    registry[op_names::kIdentity] = infer_elementwise_unary;
    registry[op_names::kAdd] = infer_elementwise_binary;
    registry[op_names::kSub] = infer_elementwise_binary;
    registry[op_names::kMul] = infer_elementwise_binary;
    registry[op_names::kDiv] = infer_elementwise_binary;
    registry[op_names::kNeg] = infer_elementwise_unary;
    registry[op_names::kExp] = infer_elementwise_unary;
    registry[op_names::kSqrt] = infer_elementwise_unary;
    registry[op_names::kAbs] = infer_elementwise_unary;
    registry[op_names::kGlobalMaxPool] = infer_global_average_pool;
    registry[op_names::kArgMax] = infer_argmax;
    registry[op_names::kConcat] = infer_concat;
    registry[op_names::kGemm] = infer_gemm;
    registry[op_names::kMatMul] = infer_matmul;
    registry[op_names::kFlatten] = infer_flatten;
    registry[op_names::kReshape] = infer_reshape;
    registry[op_names::kBatchNormalization] = infer_batchnorm;
    registry[op_names::kPad] = infer_pad;
    registry[op_names::kConstant] = infer_constant;
    registry[op_names::kReduceMean] = infer_reduce_mean;
    registry[op_names::kDropout] = infer_dropout;
    registry[op_names::kQuantizeLinear] = infer_quantize_linear;
    registry[op_names::kDequantizeLinear] = infer_dequantize_linear;
    registry[op_names::kQLinearConv] = infer_qlinear_conv;
}

} // namespace

void
register_shape_inference_rule(const std::string &op_type,
                              ShapeInferenceRule rule)
{
    std::call_once(g_builtin_rules_once, register_builtin_rules);
    std::lock_guard<std::mutex> lock(registry_mutex());
    rule_registry()[op_type] = std::move(rule);
}

bool
has_shape_inference_rule(const std::string &op_type)
{
    std::call_once(g_builtin_rules_once, register_builtin_rules);
    std::lock_guard<std::mutex> lock(registry_mutex());
    return rule_registry().count(op_type) > 0;
}

ValueInfoMap
infer_shapes(const Graph &graph)
{
    std::call_once(g_builtin_rules_once, register_builtin_rules);
    graph.validate();

    ValueInfoMap infos;
    for (const ValueInfo &input : graph.inputs()) {
        ORPHEUS_CHECK(input.shape.is_fully_defined(),
                      "graph input " << input.name
                                     << " has undefined shape "
                                     << input.shape);
        infos[input.name] = input;
    }
    for (const auto &[name, tensor] : graph.initializers())
        infos[name] = ValueInfo{name, tensor.dtype(), tensor.shape()};

    for (std::size_t index : graph.topological_order()) {
        const Node &node = graph.nodes()[index];

        ShapeInferenceRule rule;
        {
            std::lock_guard<std::mutex> lock(registry_mutex());
            auto it = rule_registry().find(node.op_type());
            ORPHEUS_CHECK(it != rule_registry().end(),
                          "no shape inference rule for op "
                              << node.op_type() << " (node " << node.name()
                              << ")");
            rule = it->second;
        }

        ShapeInferenceContext ctx{node, {}, graph};
        ctx.input_infos.reserve(node.inputs().size());
        for (const std::string &in : node.inputs()) {
            if (in.empty()) {
                ctx.input_infos.push_back(ValueInfo{});
                continue;
            }
            auto it = infos.find(in);
            ORPHEUS_ASSERT(it != infos.end(),
                           "topological order produced unknown value " << in);
            ctx.input_infos.push_back(it->second);
        }

        std::vector<ValueInfo> outs = rule(ctx);
        ORPHEUS_CHECK(outs.size() == node.outputs().size(),
                      "rule for " << node.op_type() << " returned "
                                  << outs.size() << " outputs, node has "
                                  << node.outputs().size());
        for (std::size_t i = 0; i < outs.size(); ++i) {
            outs[i].name = node.outputs()[i];
            infos[outs[i].name] = outs[i];
        }
    }
    return infos;
}

} // namespace orpheus
