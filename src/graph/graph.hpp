/**
 * @file
 * The Orpheus computation graph IR.
 *
 * A Graph owns a list of Nodes plus the metadata needed to execute them:
 * typed graph inputs/outputs and an initializer map holding constant
 * tensors (weights). Values are referenced by name; the Graph provides
 * producer/consumer queries, topological ordering, structural validation
 * and the mutation helpers the simplification passes are built from.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/tensor.hpp"
#include "graph/node.hpp"

namespace orpheus {

/** Name + type signature of a graph input or output. */
struct ValueInfo {
    std::string name;
    DataType dtype = DataType::kFloat32;
    Shape shape;
};

class Graph
{
  public:
    explicit Graph(std::string name = "graph") : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    // --- Structure ------------------------------------------------------

    /** Declares a graph input with its static signature. */
    void add_input(const std::string &name, Shape shape,
                   DataType dtype = DataType::kFloat32);

    /** Declares a graph output. Shape may be empty (filled by inference). */
    void add_output(const std::string &name, Shape shape = {},
                    DataType dtype = DataType::kFloat32);

    /** Registers a constant tensor (weight) under @p name. */
    void add_initializer(const std::string &name, Tensor tensor);

    /**
     * Appends a node. If @p name is empty a unique one is derived from
     * the op type. Returns a reference valid until the node list is next
     * mutated.
     */
    Node &add_node(const std::string &op_type,
                   std::vector<std::string> inputs,
                   std::vector<std::string> outputs, AttributeMap attrs = {},
                   std::string name = "");

    const std::vector<ValueInfo> &inputs() const { return inputs_; }
    std::vector<ValueInfo> &inputs() { return inputs_; }
    const std::vector<ValueInfo> &outputs() const { return outputs_; }
    std::vector<ValueInfo> &outputs() { return outputs_; }

    const std::vector<Node> &nodes() const { return nodes_; }
    std::vector<Node> &nodes() { return nodes_; }

    const std::unordered_map<std::string, Tensor> &initializers() const
    {
        return initializers_;
    }

    bool has_initializer(const std::string &name) const
    {
        return initializers_.count(name) > 0;
    }

    /** Initializer lookup; throws orpheus::Error when absent. */
    const Tensor &initializer(const std::string &name) const;

    /** Removes an initializer if present. */
    void remove_initializer(const std::string &name);

    bool is_graph_input(const std::string &name) const;
    bool is_graph_output(const std::string &name) const;

    // --- Queries ---------------------------------------------------------

    /** Index of the node producing @p value, or nullopt. */
    std::optional<std::size_t> producer(const std::string &value) const;

    /** Indices of all nodes consuming @p value. */
    std::vector<std::size_t> consumers(const std::string &value) const;

    /**
     * Node indices in a valid execution order (inputs before uses).
     * Throws orpheus::Error if the graph contains a cycle.
     */
    std::vector<std::size_t> topological_order() const;

    /** Generates a value name, unique within the graph, from @p base. */
    std::string unique_value_name(const std::string &base);

    /**
     * Structural validation: every node input must be a graph input, an
     * initializer or some node's output; every output name is produced
     * exactly once; graph outputs exist. Throws on violation.
     */
    void validate() const;

    // --- Mutation helpers (used by passes) --------------------------------

    /** Rewrites every node input (and graph output) @p from to @p to. */
    void replace_all_uses(const std::string &from, const std::string &to);

    /** Erases the nodes whose indices are in @p indices. */
    void remove_nodes(const std::vector<std::size_t> &indices);

    /** Multi-line human-readable dump of the whole graph. */
    std::string to_string() const;

  private:
    std::string name_;
    std::vector<ValueInfo> inputs_;
    std::vector<ValueInfo> outputs_;
    std::vector<Node> nodes_;
    std::unordered_map<std::string, Tensor> initializers_;
    std::uint64_t name_counter_ = 0;
};

} // namespace orpheus
