/**
 * @file
 * Decoded hyper-parameters for windowed operators (convolution and
 * pooling). Both shape inference and the kernels in src/ops decode node
 * attributes through these structs so the two can never disagree about
 * padding/stride semantics.
 *
 * Attribute conventions follow ONNX: pads = [top, left, bottom, right]
 * for 2-D operators, dilations/strides/kernel_shape are [h, w].
 */
#pragma once

#include <cstdint>

#include "core/shape.hpp"
#include "graph/attribute.hpp"

namespace orpheus {

/** Decoded Conv attributes for 2-D NCHW convolution. */
struct Conv2dParams {
    std::int64_t kernel_h = 1;
    std::int64_t kernel_w = 1;
    std::int64_t stride_h = 1;
    std::int64_t stride_w = 1;
    std::int64_t pad_top = 0;
    std::int64_t pad_left = 0;
    std::int64_t pad_bottom = 0;
    std::int64_t pad_right = 0;
    std::int64_t dilation_h = 1;
    std::int64_t dilation_w = 1;
    std::int64_t group = 1;

    /**
     * Decodes ONNX Conv attributes. @p weight_shape (OIHW) supplies the
     * kernel extent when the kernel_shape attribute is omitted.
     */
    static Conv2dParams from_attrs(const AttributeMap &attrs,
                                   const Shape &weight_shape);

    /** Effective kernel extent including dilation. */
    std::int64_t
    dilated_kernel_h() const
    {
        return (kernel_h - 1) * dilation_h + 1;
    }

    std::int64_t
    dilated_kernel_w() const
    {
        return (kernel_w - 1) * dilation_w + 1;
    }

    /** Output spatial extent for an input of height @p in_h. */
    std::int64_t out_h(std::int64_t in_h) const;
    std::int64_t out_w(std::int64_t in_w) const;

    /** Writes these parameters back into an attribute map. */
    void to_attrs(AttributeMap &attrs) const;
};

/** Decoded MaxPool / AveragePool attributes. */
struct Pool2dParams {
    std::int64_t kernel_h = 1;
    std::int64_t kernel_w = 1;
    std::int64_t stride_h = 1;
    std::int64_t stride_w = 1;
    std::int64_t pad_top = 0;
    std::int64_t pad_left = 0;
    std::int64_t pad_bottom = 0;
    std::int64_t pad_right = 0;
    /** AveragePool only: divide by full window size even over padding. */
    bool count_include_pad = false;
    /** Round output extents up instead of down (ONNX ceil_mode). */
    bool ceil_mode = false;

    static Pool2dParams from_attrs(const AttributeMap &attrs);

    std::int64_t out_h(std::int64_t in_h) const;
    std::int64_t out_w(std::int64_t in_w) const;

    void to_attrs(AttributeMap &attrs) const;
};

} // namespace orpheus
