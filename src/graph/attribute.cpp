#include "graph/attribute.hpp"

#include <limits>
#include <sstream>

namespace orpheus {

std::int64_t
Attribute::as_int() const
{
    ORPHEUS_CHECK(is_int(), "attribute is not an int: " << to_string());
    return std::get<std::int64_t>(value_);
}

float
Attribute::as_float() const
{
    ORPHEUS_CHECK(is_float(), "attribute is not a float: " << to_string());
    return std::get<float>(value_);
}

const std::string &
Attribute::as_string() const
{
    ORPHEUS_CHECK(is_string(), "attribute is not a string: " << to_string());
    return std::get<std::string>(value_);
}

const std::vector<std::int64_t> &
Attribute::as_ints() const
{
    ORPHEUS_CHECK(is_ints(), "attribute is not an int list: " << to_string());
    return std::get<std::vector<std::int64_t>>(value_);
}

const std::vector<float> &
Attribute::as_floats() const
{
    ORPHEUS_CHECK(is_floats(),
                  "attribute is not a float list: " << to_string());
    return std::get<std::vector<float>>(value_);
}

const Tensor &
Attribute::as_tensor() const
{
    ORPHEUS_CHECK(is_tensor(), "attribute is not a tensor: " << to_string());
    return std::get<Tensor>(value_);
}

std::string
Attribute::to_string() const
{
    std::ostringstream out;
    // Full float precision: to_string() doubles as an identity key for
    // the CSE pass, so distinct values must never collide.
    out.precision(std::numeric_limits<float>::max_digits10);
    if (is_int()) {
        out << "int(" << std::get<std::int64_t>(value_) << ")";
    } else if (is_float()) {
        out << "float(" << std::get<float>(value_) << ")";
    } else if (is_string()) {
        out << "string(\"" << std::get<std::string>(value_) << "\")";
    } else if (is_ints()) {
        out << "ints[";
        const auto &values = std::get<std::vector<std::int64_t>>(value_);
        for (std::size_t i = 0; i < values.size(); ++i)
            out << (i > 0 ? ", " : "") << values[i];
        out << "]";
    } else if (is_floats()) {
        out << "floats[";
        const auto &values = std::get<std::vector<float>>(value_);
        for (std::size_t i = 0; i < values.size(); ++i)
            out << (i > 0 ? ", " : "") << values[i];
        out << "]";
    } else {
        out << "tensor(" << std::get<Tensor>(value_).to_string() << ")";
    }
    return out.str();
}

const Attribute &
AttributeMap::at(const std::string &key) const
{
    auto it = map_.find(key);
    ORPHEUS_CHECK(it != map_.end(), "missing required attribute: " << key);
    return it->second;
}

std::int64_t
AttributeMap::get_int(const std::string &key, std::int64_t fallback) const
{
    auto it = map_.find(key);
    return it == map_.end() ? fallback : it->second.as_int();
}

float
AttributeMap::get_float(const std::string &key, float fallback) const
{
    auto it = map_.find(key);
    return it == map_.end() ? fallback : it->second.as_float();
}

std::string
AttributeMap::get_string(const std::string &key,
                         const std::string &fallback) const
{
    auto it = map_.find(key);
    return it == map_.end() ? fallback : it->second.as_string();
}

std::vector<std::int64_t>
AttributeMap::get_ints(const std::string &key,
                       const std::vector<std::int64_t> &fallback) const
{
    auto it = map_.find(key);
    return it == map_.end() ? fallback : it->second.as_ints();
}

std::vector<float>
AttributeMap::get_floats(const std::string &key,
                         const std::vector<float> &fallback) const
{
    auto it = map_.find(key);
    return it == map_.end() ? fallback : it->second.as_floats();
}

} // namespace orpheus
