#include "graph/node.hpp"

#include <sstream>

#include "core/status.hpp"

namespace orpheus {

namespace {

const std::string kEmptyName;

} // namespace

const std::string &
Node::input(std::size_t index) const
{
    return index < inputs_.size() ? inputs_[index] : kEmptyName;
}

const std::string &
Node::output(std::size_t index) const
{
    ORPHEUS_CHECK(index < outputs_.size(),
                  "node " << name_ << " has no output #" << index);
    return outputs_[index];
}

std::string
Node::to_string() const
{
    std::ostringstream out;
    out << op_type_ << "(" << name_ << ": ";
    for (std::size_t i = 0; i < inputs_.size(); ++i)
        out << (i > 0 ? ", " : "") << (inputs_[i].empty() ? "_" : inputs_[i]);
    out << " -> ";
    for (std::size_t i = 0; i < outputs_.size(); ++i)
        out << (i > 0 ? ", " : "") << outputs_[i];
    out << ")";
    return out.str();
}

} // namespace orpheus
