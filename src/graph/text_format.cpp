#include "graph/text_format.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace orpheus {

namespace {

constexpr const char *kMagic = "orpheus-text";
constexpr int kVersion = 1;

// --- Writing ---------------------------------------------------------------

void
check_name(const std::string &name)
{
    ORPHEUS_CHECK(!name.empty(), "text format: empty name");
    for (char ch : name) {
        ORPHEUS_CHECK(!std::isspace(static_cast<unsigned char>(ch)),
                      "text format: name contains whitespace: '" << name
                                                                 << "'");
    }
}

std::string
hex_encode(const void *data, std::size_t size)
{
    static const char digits[] = "0123456789abcdef";
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::string out;
    out.reserve(size * 2);
    for (std::size_t i = 0; i < size; ++i) {
        out.push_back(digits[bytes[i] >> 4]);
        out.push_back(digits[bytes[i] & 0xF]);
    }
    return out;
}

std::string
format_shape(const Shape &shape)
{
    std::ostringstream out;
    out << '[';
    for (std::size_t d = 0; d < shape.rank(); ++d) {
        if (d > 0)
            out << ',';
        out << shape.dim(static_cast<int>(d));
    }
    out << ']';
    return out.str();
}

void
write_tensor_line(std::ostream &out, const char *record,
                  const std::string &name, const Tensor &tensor,
                  bool inline_data)
{
    out << record << ' ' << name << ' ' << to_string(tensor.dtype()) << ' '
        << format_shape(tensor.shape());
    if (inline_data)
        out << ' ' << hex_encode(tensor.raw_data(), tensor.byte_size());
    out << '\n';
}

void
write_attr(std::ostream &out, const std::string &name,
           const Attribute &attr)
{
    check_name(name);
    out.precision(std::numeric_limits<float>::max_digits10);
    if (attr.is_int()) {
        out << "attr_int " << name << ' ' << attr.as_int() << '\n';
    } else if (attr.is_float()) {
        out << "attr_float " << name << ' ' << attr.as_float() << '\n';
    } else if (attr.is_string()) {
        out << "attr_string " << name << ' ' << attr.as_string() << '\n';
    } else if (attr.is_ints()) {
        out << "attr_ints " << name;
        for (std::int64_t value : attr.as_ints())
            out << ' ' << value;
        out << '\n';
    } else if (attr.is_floats()) {
        out << "attr_floats " << name;
        for (float value : attr.as_floats())
            out << ' ' << value;
        out << '\n';
    } else {
        const Tensor &tensor = attr.as_tensor();
        out << "attr_tensor " << name << ' ' << to_string(tensor.dtype())
            << ' ' << format_shape(tensor.shape()) << ' '
            << hex_encode(tensor.raw_data(), tensor.byte_size()) << '\n';
    }
}

// --- Parsing -----------------------------------------------------------------

class Parser
{
  public:
    explicit Parser(const std::string &text) : stream_(text) {}

    /** Advances to the next meaningful line; false at end of input. */
    bool
    next_line()
    {
        std::string line;
        while (std::getline(stream_, line)) {
            ++line_number_;
            // Trim trailing carriage returns (files edited on Windows).
            while (!line.empty() && (line.back() == '\r'))
                line.pop_back();
            if (line.empty() || line[0] == '#')
                continue;
            tokens_ = tokenize(line);
            if (!tokens_.empty())
                return true;
        }
        return false;
    }

    const std::vector<std::string> &tokens() const { return tokens_; }
    int line() const { return line_number_; }

  private:
    static std::vector<std::string>
    tokenize(const std::string &line)
    {
        std::vector<std::string> tokens;
        std::istringstream in(line);
        std::string token;
        while (in >> token)
            tokens.push_back(token);
        return tokens;
    }

    std::istringstream stream_;
    std::vector<std::string> tokens_;
    int line_number_ = 0;
};

[[noreturn]] void
parse_fail(const Parser &parser, const std::string &message)
{
    throw Error("text format, line " + std::to_string(parser.line()) +
                ": " + message);
}

Shape
parse_shape(const Parser &parser, const std::string &token)
{
    if (token.size() < 2 || token.front() != '[' || token.back() != ']')
        parse_fail(parser, "malformed shape: " + token);
    std::vector<Shape::dim_type> dims;
    std::string body = token.substr(1, token.size() - 2);
    if (!body.empty()) {
        std::istringstream in(body);
        std::string piece;
        while (std::getline(in, piece, ','))
            dims.push_back(std::stoll(piece));
    }
    return Shape(dims);
}

std::vector<std::uint8_t>
hex_decode(const Parser &parser, const std::string &hex)
{
    if (hex.size() % 2 != 0)
        parse_fail(parser, "odd hex payload length");
    const auto nibble = [&](char ch) -> int {
        if (ch >= '0' && ch <= '9')
            return ch - '0';
        if (ch >= 'a' && ch <= 'f')
            return ch - 'a' + 10;
        if (ch >= 'A' && ch <= 'F')
            return ch - 'A' + 10;
        parse_fail(parser, std::string("bad hex digit: ") + ch);
    };
    std::vector<std::uint8_t> bytes(hex.size() / 2);
    for (std::size_t i = 0; i < bytes.size(); ++i)
        bytes[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) |
                                             nibble(hex[2 * i + 1]));
    return bytes;
}

Tensor
parse_tensor_payload(const Parser &parser, const std::string &dtype_token,
                     const std::string &shape_token,
                     const std::string &hex_token)
{
    const DataType dtype = parse_dtype(dtype_token);
    Tensor tensor(parse_shape(parser, shape_token), dtype);
    const std::vector<std::uint8_t> bytes = hex_decode(parser, hex_token);
    if (bytes.size() != tensor.byte_size())
        parse_fail(parser, "payload has " + std::to_string(bytes.size()) +
                               " bytes, tensor needs " +
                               std::to_string(tensor.byte_size()));
    if (!bytes.empty())
        std::memcpy(tensor.raw_data(), bytes.data(), bytes.size());
    return tensor;
}

} // namespace

std::string
to_text(const Graph &graph)
{
    graph.validate();
    std::ostringstream out;
    out << kMagic << ' ' << kVersion << '\n';
    check_name(graph.name());
    out << "graph " << graph.name() << "\n\n";

    for (const ValueInfo &input : graph.inputs()) {
        check_name(input.name);
        out << "input " << input.name << ' ' << to_string(input.dtype)
            << ' ' << format_shape(input.shape) << '\n';
    }
    out << '\n';

    // Deterministic output: initializers sorted by name.
    std::vector<std::string> names;
    names.reserve(graph.initializers().size());
    for (const auto &[name, tensor] : graph.initializers()) {
        (void)tensor;
        names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    for (const std::string &name : names) {
        check_name(name);
        const Tensor &tensor = graph.initializer(name);
        write_tensor_line(out, "initializer", name, tensor, false);
        out << "data " << hex_encode(tensor.raw_data(), tensor.byte_size())
            << '\n';
    }
    out << '\n';

    for (std::size_t index : graph.topological_order()) {
        const Node &node = graph.nodes()[index];
        check_name(node.name());
        check_name(node.op_type());
        out << "node " << node.name() << ' ' << node.op_type() << '\n';
        out << "inputs";
        for (const std::string &in : node.inputs()) {
            if (!in.empty())
                check_name(in);
            out << ' ' << (in.empty() ? "_" : in);
        }
        out << '\n';
        out << "outputs";
        for (const std::string &value : node.outputs()) {
            check_name(value);
            out << ' ' << value;
        }
        out << '\n';
        for (const auto &[attr_name, attr] : node.attrs())
            write_attr(out, attr_name, attr);
        out << "end\n";
    }
    out << '\n';

    for (const ValueInfo &output : graph.outputs()) {
        check_name(output.name);
        out << "output " << output.name << '\n';
    }
    return out.str();
}

Status
from_text(const std::string &text, Graph &out_graph)
{
    try {
        Parser parser(text);
        if (!parser.next_line() || parser.tokens().size() != 2 ||
            parser.tokens()[0] != kMagic) {
            return parse_error("not an orpheus-text file");
        }
        if (std::stoi(parser.tokens()[1]) != kVersion)
            return parse_error("unsupported text format version " +
                               parser.tokens()[1]);

        Graph graph;
        std::string pending_initializer_name;
        Tensor pending_initializer;
        bool have_pending_initializer = false;

        // Node under construction.
        bool in_node = false;
        std::string node_name, node_op;
        std::vector<std::string> node_inputs, node_outputs;
        AttributeMap node_attrs;

        const auto flush_initializer = [&]() {
            if (!have_pending_initializer)
                return;
            graph.add_initializer(pending_initializer_name,
                                  std::move(pending_initializer));
            have_pending_initializer = false;
        };
        const auto flush_node = [&](const Parser &where) {
            if (in_node)
                parse_fail(where, "record inside an unterminated node "
                                  "(missing 'end')");
        };

        while (parser.next_line()) {
            const auto &tokens = parser.tokens();
            const std::string &record = tokens[0];

            if (record == "graph") {
                if (tokens.size() != 2)
                    parse_fail(parser, "graph needs a name");
                graph.set_name(tokens[1]);
            } else if (record == "input") {
                flush_node(parser);
                flush_initializer();
                if (tokens.size() != 4)
                    parse_fail(parser, "input needs name, dtype, shape");
                graph.add_input(tokens[1], parse_shape(parser, tokens[3]),
                                parse_dtype(tokens[2]));
            } else if (record == "initializer") {
                flush_node(parser);
                flush_initializer();
                if (tokens.size() != 4)
                    parse_fail(parser,
                               "initializer needs name, dtype, shape");
                pending_initializer_name = tokens[1];
                pending_initializer =
                    Tensor(parse_shape(parser, tokens[3]),
                           parse_dtype(tokens[2]));
                have_pending_initializer = true;
            } else if (record == "data") {
                if (!have_pending_initializer)
                    parse_fail(parser, "data without an initializer");
                if (tokens.size() != 2)
                    parse_fail(parser, "data needs one hex payload");
                const auto bytes = hex_decode(parser, tokens[1]);
                if (bytes.size() != pending_initializer.byte_size())
                    parse_fail(parser, "payload size mismatch");
                if (!bytes.empty())
                    std::memcpy(pending_initializer.raw_data(),
                                bytes.data(), bytes.size());
                flush_initializer();
            } else if (record == "node") {
                flush_node(parser);
                flush_initializer();
                if (tokens.size() != 3)
                    parse_fail(parser, "node needs name and op type");
                in_node = true;
                node_name = tokens[1];
                node_op = tokens[2];
                node_inputs.clear();
                node_outputs.clear();
                node_attrs = AttributeMap();
            } else if (record == "inputs") {
                if (!in_node)
                    parse_fail(parser, "inputs outside a node");
                for (std::size_t i = 1; i < tokens.size(); ++i)
                    node_inputs.push_back(tokens[i] == "_" ? ""
                                                           : tokens[i]);
            } else if (record == "outputs") {
                if (!in_node)
                    parse_fail(parser, "outputs outside a node");
                node_outputs.assign(tokens.begin() + 1, tokens.end());
            } else if (record == "attr_int") {
                if (!in_node || tokens.size() != 3)
                    parse_fail(parser, "malformed attr_int");
                node_attrs.set(
                    tokens[1],
                    Attribute(static_cast<std::int64_t>(
                        std::stoll(tokens[2]))));
            } else if (record == "attr_float") {
                if (!in_node || tokens.size() != 3)
                    parse_fail(parser, "malformed attr_float");
                node_attrs.set(tokens[1], Attribute(std::stof(tokens[2])));
            } else if (record == "attr_string") {
                if (!in_node || tokens.size() < 3)
                    parse_fail(parser, "malformed attr_string");
                std::string value = tokens[2];
                for (std::size_t i = 3; i < tokens.size(); ++i)
                    value += " " + tokens[i];
                node_attrs.set(tokens[1], Attribute(std::move(value)));
            } else if (record == "attr_ints") {
                if (!in_node || tokens.size() < 2)
                    parse_fail(parser, "malformed attr_ints");
                std::vector<std::int64_t> values;
                for (std::size_t i = 2; i < tokens.size(); ++i)
                    values.push_back(
                        static_cast<std::int64_t>(std::stoll(tokens[i])));
                node_attrs.set(tokens[1], Attribute(std::move(values)));
            } else if (record == "attr_floats") {
                if (!in_node || tokens.size() < 2)
                    parse_fail(parser, "malformed attr_floats");
                std::vector<float> values;
                for (std::size_t i = 2; i < tokens.size(); ++i)
                    values.push_back(std::stof(tokens[i]));
                node_attrs.set(tokens[1], Attribute(std::move(values)));
            } else if (record == "attr_tensor") {
                if (!in_node || tokens.size() != 5)
                    parse_fail(parser, "malformed attr_tensor");
                node_attrs.set(tokens[1],
                               Attribute(parse_tensor_payload(
                                   parser, tokens[2], tokens[3],
                                   tokens[4])));
            } else if (record == "end") {
                if (!in_node)
                    parse_fail(parser, "end outside a node");
                graph.add_node(node_op, node_inputs, node_outputs,
                               std::move(node_attrs), node_name);
                in_node = false;
            } else if (record == "output") {
                flush_node(parser);
                flush_initializer();
                if (tokens.size() != 2)
                    parse_fail(parser, "output needs a name");
                graph.add_output(tokens[1]);
            } else {
                parse_fail(parser, "unknown record: " + record);
            }
        }
        if (in_node)
            return parse_error("unterminated node at end of file");
        flush_initializer();

        graph.validate();
        out_graph = std::move(graph);
        return Status::ok();
    } catch (const Error &error) {
        return parse_error(error.what());
    } catch (const std::exception &error) {
        return parse_error(std::string("text parse failed: ") +
                           error.what());
    }
}

Status
save_text_file(const Graph &graph, const std::string &path)
{
    try {
        std::ofstream file(path, std::ios::trunc);
        if (!file)
            return internal_error("cannot open for writing: " + path);
        file << to_text(graph);
        if (!file)
            return internal_error("error writing: " + path);
        return Status::ok();
    } catch (const Error &error) {
        return internal_error(error.what());
    }
}

Status
load_text_file(const std::string &path, Graph &out_graph)
{
    std::ifstream file(path);
    if (!file)
        return not_found_error("cannot open model file: " + path);
    std::stringstream buffer;
    buffer << file.rdbuf();
    return from_text(buffer.str(), out_graph);
}

} // namespace orpheus
