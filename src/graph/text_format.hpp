/**
 * @file
 * The Orpheus text model format (.orpht).
 *
 * ONNX is the interchange format; the text format is the *transparency*
 * format: a line-oriented, diff-able, hand-editable serialisation of a
 * Graph, useful for inspecting what the simplifier did, crafting
 * regression cases, and teaching. Tensor payloads are hex-encoded raw
 * bytes, so round trips are bit exact.
 *
 * Grammar (one record per line; names must contain no whitespace):
 *
 *   orpheus-text 1
 *   graph <name>
 *   input <name> <dtype> [d0,d1,...]
 *   initializer <name> <dtype> [d0,...]
 *   data <hex bytes>                      # immediately after initializer
 *   node <name> <op_type>
 *   inputs <name|_> ...                   # "_" = omitted optional input
 *   outputs <name> ...
 *   attr_int <name> <value>
 *   attr_float <name> <value>             # max_digits10, exact round trip
 *   attr_string <name> <value...>
 *   attr_ints <name> <v0> <v1> ...
 *   attr_floats <name> <v0> ...
 *   attr_tensor <name> <dtype> [dims] <hex>
 *   end                                   # closes the node
 *   output <name>
 *
 * Blank lines and lines starting with '#' are ignored.
 */
#pragma once

#include <string>

#include "core/status.hpp"
#include "graph/graph.hpp"

namespace orpheus {

/** Serialises @p graph to the text format. */
std::string to_text(const Graph &graph);

/** Parses the text format into @p out_graph. */
Status from_text(const std::string &text, Graph &out_graph);

/** File helpers. */
Status save_text_file(const Graph &graph, const std::string &path);
Status load_text_file(const std::string &path, Graph &out_graph);

} // namespace orpheus
