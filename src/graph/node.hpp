/**
 * @file
 * A single operation in a computation graph.
 *
 * Nodes reference tensors ("values") by name, ONNX-style. An empty input
 * name denotes an omitted optional input (e.g. a Conv without bias).
 * Operator type strings follow ONNX spellings ("Conv", "Relu", ...); the
 * full supported set is listed in op_names below.
 */
#pragma once

#include <string>
#include <vector>

#include "graph/attribute.hpp"

namespace orpheus {

/** ONNX-spelled operator type names supported by Orpheus. */
namespace op_names {

inline constexpr const char *kConv = "Conv";
inline constexpr const char *kRelu = "Relu";
inline constexpr const char *kLeakyRelu = "LeakyRelu";
inline constexpr const char *kSigmoid = "Sigmoid";
inline constexpr const char *kTanh = "Tanh";
inline constexpr const char *kClip = "Clip";
inline constexpr const char *kMaxPool = "MaxPool";
inline constexpr const char *kAveragePool = "AveragePool";
inline constexpr const char *kGlobalAveragePool = "GlobalAveragePool";
inline constexpr const char *kAdd = "Add";
inline constexpr const char *kSub = "Sub";
inline constexpr const char *kMul = "Mul";
inline constexpr const char *kDiv = "Div";
inline constexpr const char *kNeg = "Neg";
inline constexpr const char *kExp = "Exp";
inline constexpr const char *kSqrt = "Sqrt";
inline constexpr const char *kAbs = "Abs";
inline constexpr const char *kGlobalMaxPool = "GlobalMaxPool";
inline constexpr const char *kArgMax = "ArgMax";
inline constexpr const char *kConcat = "Concat";
inline constexpr const char *kGemm = "Gemm";
inline constexpr const char *kMatMul = "MatMul";
inline constexpr const char *kFlatten = "Flatten";
inline constexpr const char *kReshape = "Reshape";
inline constexpr const char *kSoftmax = "Softmax";
inline constexpr const char *kBatchNormalization = "BatchNormalization";
inline constexpr const char *kPad = "Pad";
inline constexpr const char *kIdentity = "Identity";
inline constexpr const char *kDropout = "Dropout";
inline constexpr const char *kConstant = "Constant";
inline constexpr const char *kReduceMean = "ReduceMean";
inline constexpr const char *kQuantizeLinear = "QuantizeLinear";
inline constexpr const char *kDequantizeLinear = "DequantizeLinear";
inline constexpr const char *kQLinearConv = "QLinearConv";

} // namespace op_names

class Node
{
  public:
    Node() = default;

    Node(std::string op_type, std::string name,
         std::vector<std::string> inputs, std::vector<std::string> outputs,
         AttributeMap attrs = {})
        : op_type_(std::move(op_type)), name_(std::move(name)),
          inputs_(std::move(inputs)), outputs_(std::move(outputs)),
          attrs_(std::move(attrs))
    {
    }

    const std::string &op_type() const { return op_type_; }
    const std::string &name() const { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    const std::vector<std::string> &inputs() const { return inputs_; }
    const std::vector<std::string> &outputs() const { return outputs_; }
    std::vector<std::string> &inputs() { return inputs_; }
    std::vector<std::string> &outputs() { return outputs_; }

    /** Input name at @p index, or "" if the optional input is omitted. */
    const std::string &input(std::size_t index) const;
    const std::string &output(std::size_t index) const;

    /** True if input @p index exists and is non-empty. */
    bool has_input(std::size_t index) const
    {
        return index < inputs_.size() && !inputs_[index].empty();
    }

    const AttributeMap &attrs() const { return attrs_; }
    AttributeMap &attrs() { return attrs_; }

    /** One-line debug form, e.g. "Conv(conv1: x, w, b -> y)". */
    std::string to_string() const;

  private:
    std::string op_type_;
    std::string name_;
    std::vector<std::string> inputs_;
    std::vector<std::string> outputs_;
    AttributeMap attrs_;
};

} // namespace orpheus
