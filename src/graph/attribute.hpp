/**
 * @file
 * Node attributes: a small tagged union mirroring the ONNX attribute
 * kinds Orpheus consumes (int, float, string, int list, float list,
 * tensor), plus a typed map with defaulted lookups.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "core/tensor.hpp"

namespace orpheus {

class Attribute
{
  public:
    using Value = std::variant<std::int64_t, float, std::string,
                               std::vector<std::int64_t>, std::vector<float>,
                               Tensor>;

    Attribute() : value_(std::int64_t{0}) {}
    Attribute(std::int64_t v) : value_(v) {}
    Attribute(int v) : value_(static_cast<std::int64_t>(v)) {}
    Attribute(float v) : value_(v) {}
    Attribute(std::string v) : value_(std::move(v)) {}
    Attribute(const char *v) : value_(std::string(v)) {}
    Attribute(std::vector<std::int64_t> v) : value_(std::move(v)) {}
    Attribute(std::vector<float> v) : value_(std::move(v)) {}
    Attribute(Tensor v) : value_(std::move(v)) {}

    bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
    bool is_float() const { return std::holds_alternative<float>(value_); }
    bool is_string() const { return std::holds_alternative<std::string>(value_); }
    bool is_ints() const
    {
        return std::holds_alternative<std::vector<std::int64_t>>(value_);
    }
    bool is_floats() const
    {
        return std::holds_alternative<std::vector<float>>(value_);
    }
    bool is_tensor() const { return std::holds_alternative<Tensor>(value_); }

    /** Typed accessors; each throws orpheus::Error on a kind mismatch. */
    std::int64_t as_int() const;
    float as_float() const;
    const std::string &as_string() const;
    const std::vector<std::int64_t> &as_ints() const;
    const std::vector<float> &as_floats() const;
    const Tensor &as_tensor() const;

    /** Debug form, e.g. "ints[1, 1]". */
    std::string to_string() const;

  private:
    Value value_;
};

/**
 * Ordered attribute map (ordered so that serialisation is deterministic).
 * The get_* helpers return a fallback when the key is absent, matching
 * how ONNX specifies per-attribute defaults.
 */
class AttributeMap
{
  public:
    bool has(const std::string &key) const { return map_.count(key) > 0; }

    void set(const std::string &key, Attribute value)
    {
        map_[key] = std::move(value);
    }

    /** Lookup that throws orpheus::Error when @p key is absent. */
    const Attribute &at(const std::string &key) const;

    std::int64_t get_int(const std::string &key, std::int64_t fallback) const;
    float get_float(const std::string &key, float fallback) const;
    std::string get_string(const std::string &key,
                           const std::string &fallback) const;
    std::vector<std::int64_t> get_ints(
        const std::string &key,
        const std::vector<std::int64_t> &fallback) const;
    std::vector<float> get_floats(const std::string &key,
                                  const std::vector<float> &fallback) const;

    std::size_t size() const { return map_.size(); }
    auto begin() const { return map_.begin(); }
    auto end() const { return map_.end(); }

  private:
    std::map<std::string, Attribute> map_;
};

} // namespace orpheus
