/**
 * @file
 * Static shape and dtype inference over a Graph.
 *
 * Inference walks the graph in topological order and computes a
 * ValueInfo for every value, starting from the declared graph inputs and
 * the initializer tensors. Per-op rules live in an extensible registry,
 * so integrating a new operator means registering one rule — the same
 * philosophy as the kernel registry in src/backend.
 */
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace orpheus {

/** Inferred signature for every value in a graph, keyed by value name. */
using ValueInfoMap = std::unordered_map<std::string, ValueInfo>;

/**
 * Context handed to a shape-inference rule: the node, resolved input
 * signatures (empty name -> default ValueInfo), and the owning graph for
 * initializer access (Reshape reads its shape operand's data).
 */
struct ShapeInferenceContext {
    const Node &node;
    std::vector<ValueInfo> input_infos;
    const Graph &graph;

    const ValueInfo &
    input(std::size_t index) const
    {
        return input_infos.at(index);
    }
};

/** A rule returns one ValueInfo per node output (names filled by caller). */
using ShapeInferenceRule =
    std::function<std::vector<ValueInfo>(const ShapeInferenceContext &)>;

/** Registers (or replaces) the rule for @p op_type. */
void register_shape_inference_rule(const std::string &op_type,
                                   ShapeInferenceRule rule);

/** True if a rule exists for @p op_type. */
bool has_shape_inference_rule(const std::string &op_type);

/**
 * Runs whole-graph inference. Throws orpheus::Error on unknown ops,
 * rank/shape violations, or graphs that fail validate().
 */
ValueInfoMap infer_shapes(const Graph &graph);

} // namespace orpheus
