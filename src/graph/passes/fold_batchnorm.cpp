/**
 * @file
 * Folds inference-mode BatchNormalization into a preceding Conv.
 *
 * With y = gamma * (x - mean) / sqrt(var + eps) + beta and x = W * a + b,
 * the BN collapses into scaled conv weights and a shifted bias:
 *
 *   scale = gamma / sqrt(var + eps)
 *   W'[o, ...] = W[o, ...] * scale[o]
 *   b'[o]      = (b[o] - mean[o]) * scale[o] + beta[o]
 *
 * This removes one full tensor traversal per conv at inference time and
 * is the single most valuable simplification for the paper's networks
 * (every conv in all five models is conv+BN).
 */
#include "graph/passes/pass.hpp"

#include <cmath>

namespace orpheus {

namespace {

class FoldBatchNormPass : public GraphPass
{
  public:
    const char *name() const override { return "fold-batchnorm"; }

    bool
    run(Graph &graph) override
    {
        std::vector<std::size_t> doomed;
        for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
            Node &bn = graph.nodes()[i];
            if (bn.op_type() != op_names::kBatchNormalization)
                continue;
            if (!try_fold(graph, i))
                continue;
            doomed.push_back(i);
        }
        graph.remove_nodes(doomed);
        return !doomed.empty();
    }

  private:
    bool
    try_fold(Graph &graph, std::size_t bn_index)
    {
        Node &bn = graph.nodes()[bn_index];

        // All four BN parameters must be constants.
        for (std::size_t operand = 1; operand <= 4; ++operand) {
            if (!graph.has_initializer(bn.input(operand)))
                return false;
        }

        const auto conv_index = graph.producer(bn.input(0));
        if (!conv_index)
            return false;
        Node &conv = graph.nodes()[*conv_index];
        if (conv.op_type() != op_names::kConv)
            return false;
        // The conv output must feed only this BN and must not itself be a
        // graph output (its value disappears).
        if (graph.consumers(conv.output(0)).size() != 1 ||
            graph.is_graph_output(conv.output(0))) {
            return false;
        }
        // Fused activations run *after* BN would have; a conv that already
        // fused one cannot absorb a BN behind the activation.
        if (conv.attrs().has("fused_activation"))
            return false;
        if (!graph.has_initializer(conv.input(1)))
            return false;
        if (conv.has_input(2) && !graph.has_initializer(conv.input(2)))
            return false;

        const Tensor &weight = graph.initializer(conv.input(1));
        const Tensor &gamma = graph.initializer(bn.input(1));
        const Tensor &beta = graph.initializer(bn.input(2));
        const Tensor &mean = graph.initializer(bn.input(3));
        const Tensor &var = graph.initializer(bn.input(4));
        const float eps = bn.attrs().get_float("epsilon", 1e-5f);

        const std::int64_t out_channels = weight.shape().dim(0);
        if (gamma.numel() != out_channels)
            return false;

        Tensor new_weight = weight.clone();
        Tensor new_bias(Shape({out_channels}), DataType::kFloat32);

        const float *g = gamma.data<float>();
        const float *bt = beta.data<float>();
        const float *mu = mean.data<float>();
        const float *vr = var.data<float>();
        float *wp = new_weight.data<float>();
        float *bp = new_bias.data<float>();

        const std::int64_t per_filter = weight.numel() / out_channels;
        for (std::int64_t o = 0; o < out_channels; ++o) {
            const float scale = g[o] / std::sqrt(vr[o] + eps);
            for (std::int64_t k = 0; k < per_filter; ++k)
                wp[o * per_filter + k] *= scale;
            const float old_bias =
                conv.has_input(2)
                    ? graph.initializer(conv.input(2)).data<float>()[o]
                    : 0.0f;
            bp[o] = (old_bias - mu[o]) * scale + bt[o];
        }

        const std::string weight_name =
            graph.unique_value_name(conv.input(1) + "_bnfold");
        const std::string bias_name =
            graph.unique_value_name(conv.name() + "_bias_bnfold");
        graph.add_initializer(weight_name, std::move(new_weight));
        graph.add_initializer(bias_name, std::move(new_bias));

        conv.inputs().resize(3);
        conv.inputs()[1] = weight_name;
        conv.inputs()[2] = bias_name;
        // The conv now produces what the BN used to produce.
        conv.outputs()[0] = bn.output(0);
        return true;
    }
};

} // namespace

std::unique_ptr<GraphPass>
make_fold_batchnorm_pass()
{
    return std::make_unique<FoldBatchNormPass>();
}

} // namespace orpheus
