/**
 * @file
 * Removes no-op nodes: Identity, and Dropout in inference mode (where it
 * is the identity function). Consumers are rewired to the node's input.
 */
#include "graph/passes/pass.hpp"

namespace orpheus {

namespace {

class EliminateIdentityPass : public GraphPass
{
  public:
    const char *name() const override { return "eliminate-identity"; }

    bool
    run(Graph &graph) override
    {
        std::vector<std::size_t> doomed;
        for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
            const Node &node = graph.nodes()[i];
            if (node.op_type() != op_names::kIdentity &&
                node.op_type() != op_names::kDropout) {
                continue;
            }
            // A Dropout whose mask output is consumed cannot be removed.
            if (node.outputs().size() > 1 &&
                !graph.consumers(node.output(1)).empty()) {
                continue;
            }
            graph.replace_all_uses(node.output(0), node.input(0));
            doomed.push_back(i);
        }
        graph.remove_nodes(doomed);
        return !doomed.empty();
    }
};

} // namespace

std::unique_ptr<GraphPass>
make_eliminate_identity_pass()
{
    return std::make_unique<EliminateIdentityPass>();
}

} // namespace orpheus
