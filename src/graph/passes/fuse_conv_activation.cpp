/**
 * @file
 * Fuses an elementwise activation into the Conv that feeds it.
 *
 * The conv kernels apply the activation while the output tile is still
 * hot in cache, eliminating one full traversal of the activation tensor.
 * Supported activations: Relu, LeakyRelu(alpha), Clip(min, max) — which
 * covers ReLU6-style networks.
 *
 * The fusion is recorded on the Conv node as attributes:
 *   fused_activation = "relu" | "leaky_relu" | "clip"
 *   fused_alpha      (leaky_relu)
 *   fused_min / fused_max (clip)
 */
#include "graph/passes/pass.hpp"

#include <limits>

namespace orpheus {

namespace {

class FuseConvActivationPass : public GraphPass
{
  public:
    const char *name() const override { return "fuse-conv-activation"; }

    bool
    run(Graph &graph) override
    {
        std::vector<std::size_t> doomed;
        for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
            const Node &act = graph.nodes()[i];
            if (!is_fusable_activation(graph, act))
                continue;

            const auto conv_index = graph.producer(act.input(0));
            if (!conv_index)
                continue;
            Node &conv = graph.nodes()[*conv_index];
            if (conv.op_type() != op_names::kConv)
                continue;
            if (conv.attrs().has("fused_activation"))
                continue;
            if (graph.consumers(conv.output(0)).size() != 1 ||
                graph.is_graph_output(conv.output(0))) {
                continue;
            }

            attach(graph, conv, act);
            conv.outputs()[0] = act.output(0);
            doomed.push_back(i);
        }
        graph.remove_nodes(doomed);
        return !doomed.empty();
    }

  private:
    static bool
    is_fusable_activation(const Graph &graph, const Node &node)
    {
        if (node.op_type() == op_names::kRelu ||
            node.op_type() == op_names::kLeakyRelu) {
            return true;
        }
        if (node.op_type() == op_names::kClip) {
            // Clip bounds may arrive as attributes (opset 6) or constant
            // inputs (opset 11+); both are fusable.
            for (std::size_t operand = 1; operand <= 2; ++operand) {
                if (node.has_input(operand) &&
                    !graph.has_initializer(node.input(operand))) {
                    return false;
                }
            }
            return true;
        }
        return false;
    }

    static void
    attach(const Graph &graph, Node &conv, const Node &act)
    {
        if (act.op_type() == op_names::kRelu) {
            conv.attrs().set("fused_activation", "relu");
        } else if (act.op_type() == op_names::kLeakyRelu) {
            conv.attrs().set("fused_activation", "leaky_relu");
            conv.attrs().set("fused_alpha",
                             act.attrs().get_float("alpha", 0.01f));
        } else {
            conv.attrs().set("fused_activation", "clip");
            conv.attrs().set("fused_min", clip_bound(graph, act, 1, "min",
                                                     std::numeric_limits<
                                                         float>::lowest()));
            conv.attrs().set("fused_max", clip_bound(graph, act, 2, "max",
                                                     std::numeric_limits<
                                                         float>::max()));
        }
    }

    static float
    clip_bound(const Graph &graph, const Node &clip, std::size_t operand,
               const char *attr, float fallback)
    {
        if (clip.has_input(operand))
            return *graph.initializer(clip.input(operand)).data<float>();
        return clip.attrs().get_float(attr, fallback);
    }
};

} // namespace

std::unique_ptr<GraphPass>
make_fuse_conv_activation_pass()
{
    return std::make_unique<FuseConvActivationPass>();
}

} // namespace orpheus
