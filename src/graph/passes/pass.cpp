#include "graph/passes/pass.hpp"

#include "core/logging.hpp"

namespace orpheus {

void
PassManager::add(std::unique_ptr<GraphPass> pass)
{
    ORPHEUS_CHECK(pass != nullptr, "cannot add a null pass");
    passes_.push_back(std::move(pass));
}

PassManagerReport
PassManager::run(Graph &graph, int max_iterations) const
{
    PassManagerReport report;
    for (const auto &pass : passes_)
        report.changes.emplace_back(pass->name(), 0);

    for (int iteration = 0; iteration < max_iterations; ++iteration) {
        ++report.iterations;
        bool changed = false;
        for (std::size_t i = 0; i < passes_.size(); ++i) {
            if (passes_[i]->run(graph)) {
                changed = true;
                ++report.changes[i].second;
                ORPHEUS_DEBUG("pass " << passes_[i]->name()
                                      << " changed graph " << graph.name());
            }
        }
        if (!changed) {
            graph.validate();
            return report;
        }
    }
    ORPHEUS_ASSERT(false, "pass pipeline failed to converge after "
                              << max_iterations << " iterations on graph "
                              << graph.name());
}

PassManager
standard_simplification_pipeline()
{
    PassManager manager;
    manager.add(make_eliminate_identity_pass());
    manager.add(make_constant_folding_pass());
    manager.add(make_eliminate_common_subexpressions_pass());
    manager.add(make_fold_pad_pass());
    manager.add(make_fold_batchnorm_pass());
    manager.add(make_fuse_conv_activation_pass());
    manager.add(make_eliminate_dead_nodes_pass());
    return manager;
}

PassManagerReport
simplify_graph(Graph &graph)
{
    static const PassManager pipeline = standard_simplification_pipeline();
    return pipeline.run(graph);
}

} // namespace orpheus
