/**
 * @file
 * Folds explicit zero Pad nodes into the padding attribute of the Conv
 * that consumes them.
 *
 * Only Conv is targeted: MaxPool pads with -inf in ONNX semantics and
 * AveragePool's divisor depends on count_include_pad, so folding a
 * zero-Pad into either would change results.
 */
#include "graph/passes/pass.hpp"

#include "graph/op_params.hpp"

namespace orpheus {

namespace {

class FoldPadPass : public GraphPass
{
  public:
    const char *name() const override { return "fold-pad"; }

    bool
    run(Graph &graph) override
    {
        std::vector<std::size_t> doomed;
        for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
            const Node &pad = graph.nodes()[i];
            if (pad.op_type() != op_names::kPad || !is_foldable(pad))
                continue;
            if (graph.is_graph_output(pad.output(0)))
                continue;

            const auto users = graph.consumers(pad.output(0));
            if (users.size() != 1)
                continue;
            Node &conv = graph.nodes()[users[0]];
            if (conv.op_type() != op_names::kConv ||
                conv.input(0) != pad.output(0)) {
                continue;
            }

            const auto pads = pad.attrs().at("pads").as_ints();
            if (pads.size() != 8)
                continue; // Only 4-D NCHW pads fold into Conv.
            // Batch/channel padding cannot be expressed on Conv.
            if (pads[0] != 0 || pads[1] != 0 || pads[4] != 0 || pads[5] != 0)
                continue;

            auto conv_pads =
                conv.attrs().get_ints("pads", {0, 0, 0, 0});
            conv_pads[0] += pads[2]; // top
            conv_pads[1] += pads[3]; // left
            conv_pads[2] += pads[6]; // bottom
            conv_pads[3] += pads[7]; // right
            conv.attrs().set("pads", conv_pads);
            conv.inputs()[0] = pad.input(0);
            doomed.push_back(i);
        }
        graph.remove_nodes(doomed);
        return !doomed.empty();
    }

  private:
    static bool
    is_foldable(const Node &pad)
    {
        return pad.attrs().get_string("mode", "constant") == "constant" &&
               pad.attrs().get_float("value", 0.0f) == 0.0f;
    }
};

} // namespace

std::unique_ptr<GraphPass>
make_fold_pad_pass()
{
    return std::make_unique<FoldPadPass>();
}

} // namespace orpheus
