/**
 * @file
 * Dead-code elimination: removes nodes whose outputs reach no graph
 * output, and garbage-collects initializers no node references.
 */
#include "graph/passes/pass.hpp"

#include <unordered_set>

namespace orpheus {

namespace {

class EliminateDeadNodesPass : public GraphPass
{
  public:
    const char *name() const override { return "eliminate-dead-nodes"; }

    bool
    run(Graph &graph) override
    {
        // Walk backwards from the graph outputs marking live values.
        std::unordered_set<std::string> live;
        std::vector<std::string> frontier;
        for (const ValueInfo &output : graph.outputs()) {
            if (live.insert(output.name).second)
                frontier.push_back(output.name);
        }

        std::vector<bool> node_live(graph.nodes().size(), false);
        while (!frontier.empty()) {
            const std::string value = std::move(frontier.back());
            frontier.pop_back();
            const auto producer = graph.producer(value);
            if (!producer || node_live[*producer])
                continue;
            node_live[*producer] = true;
            for (const std::string &in : graph.nodes()[*producer].inputs()) {
                if (!in.empty() && live.insert(in).second)
                    frontier.push_back(in);
            }
        }

        std::vector<std::size_t> doomed;
        for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
            if (!node_live[i])
                doomed.push_back(i);
        }
        graph.remove_nodes(doomed);

        // Initializer GC (after node removal so references are final).
        std::unordered_set<std::string> referenced;
        for (const Node &node : graph.nodes()) {
            for (const std::string &in : node.inputs())
                referenced.insert(in);
        }
        for (const ValueInfo &output : graph.outputs())
            referenced.insert(output.name);

        std::vector<std::string> dead_initializers;
        for (const auto &[name, tensor] : graph.initializers()) {
            (void)tensor;
            if (referenced.count(name) == 0)
                dead_initializers.push_back(name);
        }
        for (const std::string &name : dead_initializers)
            graph.remove_initializer(name);

        return !doomed.empty() || !dead_initializers.empty();
    }
};

} // namespace

std::unique_ptr<GraphPass>
make_eliminate_dead_nodes_pass()
{
    return std::make_unique<EliminateDeadNodesPass>();
}

} // namespace orpheus
