/**
 * @file
 * Common-subexpression elimination: nodes with the same operator, the
 * same inputs and the same attributes compute the same value (every
 * Orpheus op is pure), so duplicates collapse onto one node.
 *
 * Duplicates arise naturally when graphs are assembled programmatically
 * or exported carelessly (e.g. the same normalisation applied on two
 * branches). Nodes carrying tensor attributes are skipped — comparing
 * large constants byte-wise here would cost more than the pass saves
 * (Constant nodes are folded into initializers beforehand anyway).
 */
#include "graph/passes/pass.hpp"

#include <sstream>
#include <unordered_map>

namespace orpheus {

namespace {

class EliminateCommonSubexpressionsPass : public GraphPass
{
  public:
    const char *name() const override { return "eliminate-cse"; }

    bool
    run(Graph &graph) override
    {
        std::unordered_map<std::string, std::size_t> canonical;
        std::vector<std::size_t> doomed;

        for (std::size_t index : graph.topological_order()) {
            const Node &node = graph.nodes()[index];
            if (node.outputs().size() != 1)
                continue;
            if (graph.is_graph_output(node.output(0)))
                continue;

            bool has_tensor_attr = false;
            for (const auto &[attr_name, attr] : node.attrs()) {
                (void)attr_name;
                has_tensor_attr |= attr.is_tensor();
            }
            if (has_tensor_attr)
                continue;

            const std::string key = node_key(node);
            auto [it, inserted] = canonical.emplace(key, index);
            if (inserted)
                continue;

            // Duplicate: reroute consumers to the canonical node.
            graph.replace_all_uses(node.output(0),
                                   graph.nodes()[it->second].output(0));
            doomed.push_back(index);
        }

        graph.remove_nodes(doomed);
        return !doomed.empty();
    }

  private:
    static std::string
    node_key(const Node &node)
    {
        std::ostringstream key;
        key << node.op_type();
        for (const std::string &in : node.inputs())
            key << '\x1f' << in;
        for (const auto &[attr_name, attr] : node.attrs())
            key << '\x1e' << attr_name << '=' << attr.to_string();
        return key.str();
    }
};

} // namespace

std::unique_ptr<GraphPass>
make_eliminate_common_subexpressions_pass()
{
    return std::make_unique<EliminateCommonSubexpressionsPass>();
}

} // namespace orpheus
