/**
 * @file
 * Structural constant folding.
 *
 * Orpheus folds the constant subgraph shapes that exporters actually
 * emit around weights, without pulling the kernel library into the graph
 * layer:
 *
 *  - Constant nodes become initializers.
 *  - Reshape/Flatten of an initializer becomes a reshaped initializer.
 *
 * Arithmetic over constants (rare in inference graphs once BN folding
 * has run) is intentionally left to the runtime.
 */
#include "graph/passes/pass.hpp"

namespace orpheus {

namespace {

class ConstantFoldingPass : public GraphPass
{
  public:
    const char *name() const override { return "constant-folding"; }

    bool
    run(Graph &graph) override
    {
        std::vector<std::size_t> doomed;
        for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
            const Node &node = graph.nodes()[i];
            if (node.op_type() == op_names::kConstant) {
                fold_constant(graph, node);
                doomed.push_back(i);
            } else if (node.op_type() == op_names::kReshape &&
                       can_fold_reshape(graph, node)) {
                fold_reshape(graph, node);
                doomed.push_back(i);
            } else if (node.op_type() == op_names::kFlatten &&
                       graph.has_initializer(node.input(0))) {
                fold_flatten(graph, node);
                doomed.push_back(i);
            }
        }
        graph.remove_nodes(doomed);
        return !doomed.empty();
    }

  private:
    static void
    fold_constant(Graph &graph, const Node &node)
    {
        graph.add_initializer(node.output(0),
                              node.attrs().at("value").as_tensor().clone());
    }

    static bool
    can_fold_reshape(const Graph &graph, const Node &node)
    {
        return graph.has_initializer(node.input(0)) &&
               graph.has_initializer(node.input(1));
    }

    static void
    fold_reshape(Graph &graph, const Node &node)
    {
        const Tensor &data = graph.initializer(node.input(0));
        const Tensor &spec = graph.initializer(node.input(1));
        const std::int64_t *dims = spec.data<std::int64_t>();

        std::vector<Shape::dim_type> resolved(
            static_cast<std::size_t>(spec.numel()));
        std::int64_t known = 1;
        int wildcard = -1;
        for (std::size_t d = 0; d < resolved.size(); ++d) {
            if (dims[d] == -1) {
                wildcard = static_cast<int>(d);
                resolved[d] = 1;
            } else if (dims[d] == 0) {
                resolved[d] = data.shape().dim(static_cast<int>(d));
                known *= resolved[d];
            } else {
                resolved[d] = dims[d];
                known *= resolved[d];
            }
        }
        if (wildcard >= 0)
            resolved[static_cast<std::size_t>(wildcard)] =
                data.numel() / known;

        graph.add_initializer(node.output(0),
                              data.reshape(Shape(resolved)).clone());
    }

    static void
    fold_flatten(Graph &graph, const Node &node)
    {
        const Tensor &data = graph.initializer(node.input(0));
        const int axis =
            static_cast<int>(node.attrs().get_int("axis", 1));
        Shape::dim_type rows = 1, cols = 1;
        for (int d = 0; d < static_cast<int>(data.shape().rank()); ++d) {
            if (d < axis)
                rows *= data.shape().dim(d);
            else
                cols *= data.shape().dim(d);
        }
        graph.add_initializer(node.output(0),
                              data.reshape(Shape({rows, cols})).clone());
    }
};

} // namespace

std::unique_ptr<GraphPass>
make_constant_folding_pass()
{
    return std::make_unique<ConstantFoldingPass>();
}

} // namespace orpheus
