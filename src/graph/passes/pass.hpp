/**
 * @file
 * Graph-simplification pass framework.
 *
 * The paper's model loader "applies simplifications to the computation
 * graph" before the runtime sees it. Each simplification is a GraphPass;
 * the PassManager runs a pipeline to fixpoint. The standard pipeline
 * (the one the engine applies by default) is:
 *
 *   1. EliminateIdentity    Identity/inference-mode-Dropout removal
 *   2. ConstantFolding      structural folding of constant subgraphs
 *   2b. EliminateCSE        duplicate pure nodes merged
 *   3. FoldPad              Pad nodes merged into Conv/Pool padding
 *   4. FoldBatchNorm        BatchNormalization folded into Conv weights
 *   5. FuseConvActivation   Relu/Clip/LeakyRelu fused into Conv
 *   6. EliminateDeadNodes   unreferenced nodes dropped
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace orpheus {

class GraphPass
{
  public:
    virtual ~GraphPass() = default;

    /** Stable pass name used in logs and pipeline configuration. */
    virtual const char *name() const = 0;

    /** Mutates @p graph; returns true if anything changed. */
    virtual bool run(Graph &graph) = 0;
};

/** Outcome of one PassManager invocation. */
struct PassManagerReport {
    /** Number of full pipeline iterations executed. */
    int iterations = 0;
    /** Per-pass application counts (pass name, times it changed the graph). */
    std::vector<std::pair<std::string, int>> changes;

    bool
    changed() const
    {
        for (const auto &[name, count] : changes) {
            if (count > 0)
                return true;
        }
        return false;
    }
};

class PassManager
{
  public:
    /** Appends a pass to the pipeline. */
    void add(std::unique_ptr<GraphPass> pass);

    /**
     * Runs the pipeline repeatedly until no pass changes the graph (or
     * @p max_iterations is reached, which indicates a pass that never
     * converges and trips an assertion).
     */
    PassManagerReport run(Graph &graph, int max_iterations = 16) const;

    std::size_t size() const { return passes_.size(); }

  private:
    std::vector<std::unique_ptr<GraphPass>> passes_;
};

/** Factories for the individual standard passes. */
std::unique_ptr<GraphPass> make_eliminate_identity_pass();
std::unique_ptr<GraphPass> make_constant_folding_pass();
std::unique_ptr<GraphPass> make_eliminate_common_subexpressions_pass();
std::unique_ptr<GraphPass> make_fold_pad_pass();
std::unique_ptr<GraphPass> make_fold_batchnorm_pass();
std::unique_ptr<GraphPass> make_fuse_conv_activation_pass();
std::unique_ptr<GraphPass> make_eliminate_dead_nodes_pass();

/** Builds the standard simplification pipeline described above. */
PassManager standard_simplification_pipeline();

/** Convenience: runs the standard pipeline on @p graph. */
PassManagerReport simplify_graph(Graph &graph);

} // namespace orpheus
