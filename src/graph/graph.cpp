#include "graph/graph.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <unordered_set>

namespace orpheus {

void
Graph::add_input(const std::string &name, Shape shape, DataType dtype)
{
    ORPHEUS_CHECK(!name.empty(), "graph input name must not be empty");
    ORPHEUS_CHECK(!is_graph_input(name), "duplicate graph input: " << name);
    inputs_.push_back(ValueInfo{name, dtype, std::move(shape)});
}

void
Graph::add_output(const std::string &name, Shape shape, DataType dtype)
{
    ORPHEUS_CHECK(!name.empty(), "graph output name must not be empty");
    ORPHEUS_CHECK(!is_graph_output(name), "duplicate graph output: " << name);
    outputs_.push_back(ValueInfo{name, dtype, std::move(shape)});
}

void
Graph::add_initializer(const std::string &name, Tensor tensor)
{
    ORPHEUS_CHECK(!name.empty(), "initializer name must not be empty");
    ORPHEUS_CHECK(!has_initializer(name), "duplicate initializer: " << name);
    initializers_.emplace(name, std::move(tensor));
}

Node &
Graph::add_node(const std::string &op_type, std::vector<std::string> inputs,
                std::vector<std::string> outputs, AttributeMap attrs,
                std::string name)
{
    ORPHEUS_CHECK(!outputs.empty(),
                  "node of type " << op_type << " needs at least one output");
    if (name.empty())
        name = op_type + "_" + std::to_string(name_counter_++);
    nodes_.emplace_back(op_type, std::move(name), std::move(inputs),
                        std::move(outputs), std::move(attrs));
    return nodes_.back();
}

const Tensor &
Graph::initializer(const std::string &name) const
{
    auto it = initializers_.find(name);
    ORPHEUS_CHECK(it != initializers_.end(), "no initializer named " << name);
    return it->second;
}

void
Graph::remove_initializer(const std::string &name)
{
    initializers_.erase(name);
}

bool
Graph::is_graph_input(const std::string &name) const
{
    return std::any_of(inputs_.begin(), inputs_.end(),
                       [&](const ValueInfo &v) { return v.name == name; });
}

bool
Graph::is_graph_output(const std::string &name) const
{
    return std::any_of(outputs_.begin(), outputs_.end(),
                       [&](const ValueInfo &v) { return v.name == name; });
}

std::optional<std::size_t>
Graph::producer(const std::string &value) const
{
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        for (const std::string &out : nodes_[i].outputs()) {
            if (out == value)
                return i;
        }
    }
    return std::nullopt;
}

std::vector<std::size_t>
Graph::consumers(const std::string &value) const
{
    std::vector<std::size_t> result;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        for (const std::string &in : nodes_[i].inputs()) {
            if (in == value) {
                result.push_back(i);
                break;
            }
        }
    }
    return result;
}

std::vector<std::size_t>
Graph::topological_order() const
{
    // Kahn's algorithm over value-name edges. Inputs that are graph
    // inputs or initializers are ready immediately.
    std::unordered_map<std::string, std::size_t> produced_by;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        for (const std::string &out : nodes_[i].outputs())
            produced_by[out] = i;
    }

    std::vector<std::size_t> in_degree(nodes_.size(), 0);
    std::vector<std::vector<std::size_t>> dependents(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        for (const std::string &in : nodes_[i].inputs()) {
            if (in.empty())
                continue;
            auto it = produced_by.find(in);
            if (it != produced_by.end() && it->second != i) {
                dependents[it->second].push_back(i);
                ++in_degree[i];
            }
        }
    }

    // A plain queue keeps the order stable (original index order among
    // ready nodes), which makes plans and dumps deterministic.
    std::queue<std::size_t> ready;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (in_degree[i] == 0)
            ready.push(i);
    }

    std::vector<std::size_t> order;
    order.reserve(nodes_.size());
    while (!ready.empty()) {
        const std::size_t current = ready.front();
        ready.pop();
        order.push_back(current);
        for (std::size_t next : dependents[current]) {
            if (--in_degree[next] == 0)
                ready.push(next);
        }
    }

    ORPHEUS_CHECK(order.size() == nodes_.size(),
                  "graph " << name_ << " contains a cycle ("
                           << nodes_.size() - order.size()
                           << " nodes unreachable)");
    return order;
}

std::string
Graph::unique_value_name(const std::string &base)
{
    return base + "__" + std::to_string(name_counter_++);
}

void
Graph::validate() const
{
    std::unordered_set<std::string> defined;
    for (const ValueInfo &input : inputs_)
        defined.insert(input.name);
    for (const auto &[name, tensor] : initializers_) {
        (void)tensor;
        defined.insert(name);
    }

    std::unordered_set<std::string> produced;
    for (const Node &node : nodes_) {
        for (const std::string &out : node.outputs()) {
            ORPHEUS_CHECK(!out.empty(),
                          "node " << node.name() << " has an unnamed output");
            ORPHEUS_CHECK(produced.insert(out).second,
                          "value " << out << " is produced more than once");
            ORPHEUS_CHECK(defined.count(out) == 0,
                          "value " << out
                                   << " shadows a graph input/initializer");
        }
    }

    // Check node inputs against the transitive definition set in
    // topological order (also verifies acyclicity).
    for (std::size_t index : topological_order()) {
        const Node &node = nodes_[index];
        for (const std::string &in : node.inputs()) {
            if (in.empty())
                continue;
            ORPHEUS_CHECK(defined.count(in) > 0 || produced.count(in) > 0,
                          "node " << node.name() << " reads undefined value "
                                  << in);
        }
    }

    for (const ValueInfo &output : outputs_) {
        ORPHEUS_CHECK(produced.count(output.name) > 0 ||
                          defined.count(output.name) > 0,
                      "graph output " << output.name << " is never produced");
    }
}

void
Graph::replace_all_uses(const std::string &from, const std::string &to)
{
    for (Node &node : nodes_) {
        for (std::string &in : node.inputs()) {
            if (in == from)
                in = to;
        }
    }
    for (ValueInfo &output : outputs_) {
        if (output.name == from)
            output.name = to;
    }
}

void
Graph::remove_nodes(const std::vector<std::size_t> &indices)
{
    if (indices.empty())
        return;
    std::unordered_set<std::size_t> doomed(indices.begin(), indices.end());
    std::vector<Node> kept;
    kept.reserve(nodes_.size() - doomed.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (doomed.count(i) == 0)
            kept.push_back(std::move(nodes_[i]));
    }
    nodes_ = std::move(kept);
}

std::string
Graph::to_string() const
{
    std::ostringstream out;
    out << "graph " << name_ << " {\n";
    for (const ValueInfo &input : inputs_)
        out << "  input " << input.name << ": " << input.dtype << input.shape
            << "\n";
    out << "  initializers: " << initializers_.size() << "\n";
    for (const Node &node : nodes_)
        out << "  " << node.to_string() << "\n";
    for (const ValueInfo &output : outputs_)
        out << "  output " << output.name << "\n";
    out << "}";
    return out.str();
}

} // namespace orpheus
