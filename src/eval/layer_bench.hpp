/**
 * @file
 * Per-layer timing harness ("evaluating ... individual layers", §I).
 */
#pragma once

#include <string>
#include <vector>

#include "runtime/engine.hpp"

namespace orpheus {

/** Timing for one plan step, averaged over the harness repetitions. */
struct LayerTiming {
    std::string node_name;
    std::string op_type;
    std::string impl_name;
    Shape output_shape;
    double mean_ms = 0.0;
    double share = 0.0; ///< Fraction of total network time.
};

/**
 * Runs @p repetitions profiled inferences on @p engine with a
 * deterministic random input and returns per-layer mean timings,
 * sorted by descending share.
 */
std::vector<LayerTiming> profile_layers(Engine &engine, int repetitions = 3,
                                        std::uint64_t input_seed = 0x1118);

/** Renders layer timings as an aligned text table. */
std::string layer_timings_to_string(const std::vector<LayerTiming> &timings,
                                    std::size_t max_rows = 0);

/** CSV form: node,op,impl,output_shape,mean_ms,share. */
std::string layer_timings_to_csv(const std::vector<LayerTiming> &timings);

} // namespace orpheus
