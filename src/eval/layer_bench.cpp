#include "eval/layer_bench.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/rng.hpp"

namespace orpheus {

std::vector<LayerTiming>
profile_layers(Engine &engine, int repetitions, std::uint64_t input_seed)
{
    ORPHEUS_CHECK(engine.options().enable_profiling,
                  "profile_layers requires an engine compiled with "
                  "enable_profiling = true");
    ORPHEUS_CHECK(engine.graph().inputs().size() == 1,
                  "profile_layers expects a single-input graph");

    Rng rng(input_seed);
    Tensor input =
        random_tensor(engine.graph().inputs().front().shape, rng);

    engine.profiler().reset();
    (void)engine.run(input); // Warm-up (counted separately then dropped).
    engine.profiler().reset();
    for (int i = 0; i < repetitions; ++i)
        (void)engine.run(input);

    const double total = engine.profiler().total_ms();
    std::vector<LayerTiming> timings;
    timings.reserve(engine.profiler().steps().size());
    for (const LayerProfile &step : engine.profiler().steps()) {
        LayerTiming timing;
        timing.node_name = step.node_name;
        timing.op_type = step.op_type;
        timing.impl_name = step.impl_name;
        timing.output_shape = step.output_shape;
        timing.mean_ms = step.mean_ms();
        timing.share = total > 0.0 ? step.total_ms / total : 0.0;
        timings.push_back(std::move(timing));
    }
    std::stable_sort(timings.begin(), timings.end(),
                     [](const LayerTiming &a, const LayerTiming &b) {
                         return a.share > b.share;
                     });
    return timings;
}

std::string
layer_timings_to_string(const std::vector<LayerTiming> &timings,
                        std::size_t max_rows)
{
    std::ostringstream out;
    out << std::left << std::setw(30) << "node" << std::setw(18) << "op"
        << std::setw(20) << "impl" << std::right << std::setw(12)
        << "mean ms" << std::setw(9) << "share" << "\n";
    out << std::string(89, '-') << "\n";
    std::size_t rows = 0;
    for (const LayerTiming &timing : timings) {
        if (max_rows > 0 && rows++ >= max_rows)
            break;
        out << std::left << std::setw(30) << timing.node_name
            << std::setw(18) << timing.op_type << std::setw(20)
            << timing.impl_name << std::right << std::setw(12) << std::fixed
            << std::setprecision(3) << timing.mean_ms << std::setw(8)
            << std::setprecision(1) << timing.share * 100.0 << "%\n";
    }
    return out.str();
}

std::string
layer_timings_to_csv(const std::vector<LayerTiming> &timings)
{
    std::ostringstream out;
    out << "node,op,impl,output_shape,mean_ms,share\n";
    for (const LayerTiming &timing : timings) {
        out << timing.node_name << ',' << timing.op_type << ','
            << timing.impl_name << ",\"" << timing.output_shape << "\","
            << timing.mean_ms << ',' << timing.share << "\n";
    }
    return out.str();
}

} // namespace orpheus
