/**
 * @file
 * Whole-network experiment runner.
 *
 * The paper's "infrastructure to run multiple inference experiments":
 * controlled warm-up, repetition, summary statistics and CSV output for
 * full-network timings.
 */
#pragma once

#include <functional>
#include <map>
#include <string>

#include "eval/statistics.hpp"
#include "runtime/engine.hpp"

namespace orpheus {

struct ExperimentConfig {
    int warmup_runs = 1;
    int timed_runs = 5;
};

struct ExperimentResult {
    std::string name;
    RunStats stats;
    std::vector<double> samples_ms;
};

/**
 * Times @p fn (one call = one inference) under @p config.
 */
ExperimentResult time_callable(const std::string &name,
                               const std::function<void()> &fn,
                               const ExperimentConfig &config = {});

/**
 * Times engine.run(input) end to end. The input tensor is filled with
 * deterministic random data matching the engine's single graph input.
 */
ExperimentResult time_inference(Engine &engine,
                                const ExperimentConfig &config = {},
                                std::uint64_t input_seed = 0x1117);

/** Renders results as CSV: name,mean_ms,median_ms,min_ms,max_ms,sd,n. */
std::string results_to_csv(const std::vector<ExperimentResult> &results);

} // namespace orpheus
