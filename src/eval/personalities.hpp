/**
 * @file
 * Framework personalities: baseline emulation for the paper's Figure 2.
 *
 * The paper compares Orpheus against TVM, PyTorch, DarkNet and TF-Lite
 * on a HiKey 970. Shipping four external frameworks is neither possible
 * offline nor what the comparison is actually about: Section III
 * explains every gap in the figure through *which convolution algorithm
 * each framework runs*. A personality therefore configures Orpheus's own
 * kernels the way the corresponding framework executes layers:
 *
 *   Orpheus      im2col + packed GEMM conv, specialised depthwise.
 *   TVM-like     spatial-pack conv (TVM's ARM CPU schedule),
 *                specialised depthwise.
 *   PyTorch-like im2col + GEMM conv through a weaker (unpacked,
 *                cache-blocked) GEMM, and depthwise convolutions lowered
 *                through the generic grouped GEMM path — the
 *                "inefficient depthwise" the paper calls out.
 *   DarkNet-like im2col + textbook naive GEMM (DarkNet's gemm.c),
 *                no depthwise specialisation.
 *   TFLite-like  Orpheus kernels, but the thread count request is
 *                ignored and all hardware threads are used — the
 *                behaviour that excluded TF-Lite from the paper's
 *                single-thread figure.
 *
 * This preserves the *shape* of the figure (who wins where, and why)
 * while every byte of executed code remains in this repository.
 */
#pragma once

#include <string>
#include <vector>

#include "runtime/engine.hpp"

namespace orpheus {

struct FrameworkPersonality {
    /** Display name used in benchmark output ("TVM-like"). */
    std::string name;
    /** Engine configuration emulating the framework. */
    EngineOptions options;
    /**
     * Threads the personality actually uses when asked for
     * @p requested; everyone honours the request except TFLite-like.
     */
    int effective_threads(int requested) const;
    /** True if the framework ignores the requested thread count. */
    bool ignores_thread_request = false;
    /** One-line rationale shown in reports. */
    std::string notes;
};

FrameworkPersonality orpheus_personality();
FrameworkPersonality tvm_like_personality();
FrameworkPersonality pytorch_like_personality();
FrameworkPersonality darknet_like_personality();
FrameworkPersonality tflite_like_personality();

/** The comparison set plotted in Figure 2 (Orpheus, TVM, PyTorch, plus
 *  the DarkNet anecdote). */
std::vector<FrameworkPersonality> figure2_personalities();

/** Personality by name ("orpheus", "tvm", "pytorch", "darknet",
 *  "tflite"); throws for unknown names. */
FrameworkPersonality personality_by_name(const std::string &name);

} // namespace orpheus
