#include "eval/personalities.hpp"

#include <thread>

namespace orpheus {

int
FrameworkPersonality::effective_threads(int requested) const
{
    if (!ignores_thread_request)
        return requested;
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware > 0 ? static_cast<int>(hardware) : requested;
}

FrameworkPersonality
orpheus_personality()
{
    FrameworkPersonality p;
    p.name = "Orpheus";
    // No pins: the default heuristic order is exactly the Orpheus
    // design (depthwise_direct for depthwise nodes, im2col_gemm with the
    // packed kernel for everything else).
    p.options.backend.gemm_variant = GemmVariant::kPacked;
    p.options.backend.allow_depthwise_specialization = true;
    p.notes = "im2col + packed GEMM convolution; specialised depthwise";
    return p;
}

FrameworkPersonality
tvm_like_personality()
{
    FrameworkPersonality p;
    p.name = "TVM-like";
    p.options.backend.gemm_variant = GemmVariant::kPacked;
    p.options.backend.forced_impl[op_names::kConv] = "spatial_pack";
    // TVM's ARM schedules also include a tuned depthwise kernel;
    // spatial_pack executes grouped/depthwise convolutions natively with
    // per-group register tiles, which plays that role here.
    p.notes = "spatial-pack convolution (TVM ARM CPU schedule)";
    return p;
}

FrameworkPersonality
pytorch_like_personality()
{
    FrameworkPersonality p;
    p.name = "PyTorch-like";
    p.options.backend.gemm_variant = GemmVariant::kBlocked;
    p.options.backend.forced_impl[op_names::kConv] = "im2col_gemm";
    p.options.backend.allow_depthwise_specialization = false;
    p.notes = "im2col + blocked GEMM; depthwise lowered through grouped "
              "GEMM (the paper's 'inefficient depthwise')";
    return p;
}

FrameworkPersonality
darknet_like_personality()
{
    FrameworkPersonality p;
    p.name = "DarkNet-like";
    p.options.backend.gemm_variant = GemmVariant::kNaive;
    p.options.backend.forced_impl[op_names::kConv] = "im2col_gemm";
    p.options.backend.allow_depthwise_specialization = false;
    p.notes = "im2col + textbook naive GEMM (darknet gemm.c)";
    return p;
}

FrameworkPersonality
tflite_like_personality()
{
    FrameworkPersonality p = orpheus_personality();
    p.name = "TFLite-like";
    p.ignores_thread_request = true;
    p.notes = "GEMM convolution but always uses every hardware thread "
              "(the behaviour that excluded TF-Lite from Figure 2)";
    return p;
}

std::vector<FrameworkPersonality>
figure2_personalities()
{
    return {orpheus_personality(), tvm_like_personality(),
            pytorch_like_personality(), darknet_like_personality()};
}

FrameworkPersonality
personality_by_name(const std::string &name)
{
    if (name == "orpheus")
        return orpheus_personality();
    if (name == "tvm")
        return tvm_like_personality();
    if (name == "pytorch")
        return pytorch_like_personality();
    if (name == "darknet")
        return darknet_like_personality();
    if (name == "tflite")
        return tflite_like_personality();
    throw Error("unknown framework personality: " + name);
}

} // namespace orpheus
