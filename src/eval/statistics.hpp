/**
 * @file
 * Summary statistics for timing samples.
 */
#pragma once

#include <string>
#include <vector>

namespace orpheus {

/** Summary of a set of timing samples (milliseconds). */
struct RunStats {
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double median = 0.0;
    double stddev = 0.0;

    /** e.g. "12.3 ms (median 12.1, min 11.9, max 13.0, sd 0.4, n=5)". */
    std::string to_string() const;
};

/** Computes summary statistics; @p samples may be unsorted. */
RunStats compute_stats(std::vector<double> samples);

/** Geometric mean; all samples must be > 0. */
double geometric_mean(const std::vector<double> &samples);

} // namespace orpheus
