#include "eval/experiment.hpp"

#include <sstream>

#include "core/rng.hpp"
#include "core/timer.hpp"

namespace orpheus {

ExperimentResult
time_callable(const std::string &name, const std::function<void()> &fn,
              const ExperimentConfig &config)
{
    for (int i = 0; i < config.warmup_runs; ++i)
        fn();

    ExperimentResult result;
    result.name = name;
    result.samples_ms.reserve(static_cast<std::size_t>(config.timed_runs));
    Timer timer;
    for (int i = 0; i < config.timed_runs; ++i) {
        timer.start();
        fn();
        result.samples_ms.push_back(timer.elapsed_ms());
    }
    result.stats = compute_stats(result.samples_ms);
    return result;
}

ExperimentResult
time_inference(Engine &engine, const ExperimentConfig &config,
               std::uint64_t input_seed)
{
    ORPHEUS_CHECK(engine.graph().inputs().size() == 1,
                  "time_inference expects a single-input graph");
    const ValueInfo &input_info = engine.graph().inputs().front();
    Rng rng(input_seed);
    Tensor input = random_tensor(input_info.shape, rng, -1.0f, 1.0f);

    return time_callable(engine.graph().name(),
                         [&] { (void)engine.run(input); }, config);
}

std::string
results_to_csv(const std::vector<ExperimentResult> &results)
{
    std::ostringstream out;
    out << "name,mean_ms,median_ms,min_ms,max_ms,stddev_ms,runs\n";
    for (const ExperimentResult &result : results) {
        out << result.name << ',' << result.stats.mean << ','
            << result.stats.median << ',' << result.stats.min << ','
            << result.stats.max << ',' << result.stats.stddev << ','
            << result.stats.count << "\n";
    }
    return out.str();
}

} // namespace orpheus
