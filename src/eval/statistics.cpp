#include "eval/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/status.hpp"

namespace orpheus {

std::string
RunStats::to_string() const
{
    std::ostringstream out;
    out.precision(4);
    out << mean << " ms (median " << median << ", min " << min << ", max "
        << max << ", sd " << stddev << ", n=" << count << ")";
    return out.str();
}

RunStats
compute_stats(std::vector<double> samples)
{
    RunStats stats;
    stats.count = samples.size();
    if (samples.empty())
        return stats;

    std::sort(samples.begin(), samples.end());
    stats.min = samples.front();
    stats.max = samples.back();

    double sum = 0.0;
    for (double sample : samples)
        sum += sample;
    stats.mean = sum / static_cast<double>(samples.size());

    const std::size_t mid = samples.size() / 2;
    stats.median = samples.size() % 2 == 1
                       ? samples[mid]
                       : 0.5 * (samples[mid - 1] + samples[mid]);

    double variance = 0.0;
    for (double sample : samples) {
        const double delta = sample - stats.mean;
        variance += delta * delta;
    }
    variance /= static_cast<double>(samples.size());
    stats.stddev = std::sqrt(variance);
    return stats;
}

double
geometric_mean(const std::vector<double> &samples)
{
    ORPHEUS_CHECK(!samples.empty(), "geometric mean of an empty set");
    double log_sum = 0.0;
    for (double sample : samples) {
        ORPHEUS_CHECK(sample > 0.0,
                      "geometric mean requires positive samples, got "
                          << sample);
        log_sum += std::log(sample);
    }
    return std::exp(log_sum / static_cast<double>(samples.size()));
}

} // namespace orpheus
