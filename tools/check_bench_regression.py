#!/usr/bin/env python3
"""Gate benchmark results against committed baselines.

Compares BENCH_<slug>.json files produced by the bench harness
(ORPHEUS_BENCH_JSON) against the baselines committed under
bench/baselines/, and exits non-zero when any gated cell regressed by
more than the threshold (default 10 %).

Robustness against machine and scheduler noise:

 - Multiple result (and baseline) directories are merged by per-cell
   MINIMUM: the fastest observation of a cell is the least disturbed
   one, so CI runs each gated bench a few times and passes every
   output directory.
 - Raw milliseconds are not comparable across machines, so each cell
   is scored as its share of the file's total cell time
   (cell / sum(cells)). A regression shifts the suite's time toward
   the offending cell, which survives the constant machine-speed
   factor between the baseline host and CI.
 - Cells below an absolute floor (default 0.25 ms) are reported but
   not gated: micro-cells swing tens of percent from timer and
   scheduler jitter alone.
 - A results file missing a baseline cell fails the gate outright —
   coverage loss hides regressions.
 - Columns ending in "_pct" are quality scores (e.g. chaos goodput),
   not times: they are excluded from the time-share normalisation and
   gated absolutely instead — the gate fails when a result drops below
   baseline * (1 - threshold). Machine speed cancels out of a
   percentage, so no normalisation is needed (or wanted). Baselines
   for quality-only benches should commit just the _pct cells; count
   cells (retries, quarantines, ...) vary legitimately run to run.
 - Columns ending in "_ms" are absolute latency bounds (e.g. the
   overload bench's per-class tail cells, whose service time is pinned
   by fault injection so raw milliseconds ARE comparable): they are
   likewise excluded from the normalisation and gated as upper bounds —
   the gate fails when a result exceeds baseline * (1 + threshold).
   Tail percentiles are noisier than means, so CI gates these slugs
   with a wider threshold in a separate invocation.

Usage:
  check_bench_regression.py --baseline bench/baselines \\
      --results run1 [--results run2 ...] \\
      [--threshold 0.10] [--floor-ms 0.25] <slug> [<slug> ...]
"""

import argparse
import json
import os
import sys


def load_cells(path):
    """Returns {(row, column): mean_ms} for one BENCH_*.json file."""
    with open(path) as handle:
        data = json.load(handle)
    return {
        (cell["row"], cell["column"]): float(cell["mean_ms"])
        for cell in data.get("cells", [])
    }


def min_merge(paths):
    """Per-cell minimum across several runs of the same bench."""
    merged = {}
    for path in paths:
        for key, value in load_cells(path).items():
            merged[key] = min(merged.get(key, float("inf")), value)
    return merged


def is_quality(key):
    """Quality-score cells ("*_pct" columns): higher is better, gated
    absolutely rather than as a share of suite time."""
    return key[1].endswith("_pct")


def is_bound(key):
    """Absolute-bound cells ("*_ms" columns): lower is better, gated
    absolutely as an upper bound rather than as a share of suite time."""
    return key[1].endswith("_ms")


def scores(cells):
    """Each time cell's share of the file's total time."""
    total = sum(value for key, value in cells.items()
                if value > 0 and not is_quality(key) and not is_bound(key))
    if total <= 0:
        return {}
    return {key: value / total for key, value in cells.items()
            if value > 0 and not is_quality(key) and not is_bound(key)}


def check_bench(slug, baseline_dirs, results_dirs, threshold, floor_ms,
                quality_threshold=None):
    """Returns a list of human-readable failure strings for one bench."""
    name = f"BENCH_{slug}.json"
    baseline_paths = [os.path.join(d, name) for d in baseline_dirs
                      if os.path.exists(os.path.join(d, name))]
    results_paths = [os.path.join(d, name) for d in results_dirs
                     if os.path.exists(os.path.join(d, name))]
    if not baseline_paths:
        return [f"{slug}: no baseline {name} under "
                f"{', '.join(baseline_dirs)}"]
    if not results_paths:
        return [f"{slug}: no results {name} under "
                f"{', '.join(results_dirs)} (bench not run?)"]

    baseline_cells = min_merge(baseline_paths)
    result_cells = min_merge(results_paths)
    baseline_scores = scores(baseline_cells)
    result_scores = scores(result_cells)

    if quality_threshold is None:
        quality_threshold = threshold
    failures = []
    gated = skipped = 0
    for key in sorted(k for k in baseline_cells if is_quality(k)):
        row, column = key
        base = baseline_cells[key]
        if key not in result_cells:
            failures.append(f"{slug}: cell ({row}, {column}) disappeared "
                            "from the results")
            continue
        gated += 1
        new = result_cells[key]
        if new < base * (1 - quality_threshold):
            failures.append(
                f"{slug}: ({row}, {column}) quality dropped "
                f"{base:.2f} -> {new:.2f} "
                f"(gate {base * (1 - quality_threshold):.2f})")
    for key in sorted(k for k in baseline_cells if is_bound(k)):
        row, column = key
        base = baseline_cells[key]
        if key not in result_cells:
            failures.append(f"{slug}: cell ({row}, {column}) disappeared "
                            "from the results")
            continue
        gated += 1
        new = result_cells[key]
        if new > base * (1 + threshold):
            failures.append(
                f"{slug}: ({row}, {column}) latency bound exceeded "
                f"{base:.3f} ms -> {new:.3f} ms "
                f"(gate {base * (1 + threshold):.3f} ms)")
    for key, base_score in sorted(baseline_scores.items()):
        row, column = key
        if key not in result_cells:
            failures.append(f"{slug}: cell ({row}, {column}) disappeared "
                            "from the results")
            continue
        if baseline_cells[key] < floor_ms:
            skipped += 1
            continue
        new_score = result_scores.get(key)
        if new_score is None or base_score <= 0:
            continue
        gated += 1
        change = (new_score - base_score) / base_score
        if change > threshold:
            failures.append(
                f"{slug}: ({row}, {column}) regressed "
                f"{100 * change:.1f}% normalised "
                f"(baseline {baseline_cells[key]:.4f} ms -> "
                f"{result_cells[key]:.4f} ms, time share "
                f"{base_score:.3f} -> {new_score:.3f})")
    print(f"{slug}: {gated} cells gated, {skipped} below the "
          f"{floor_ms} ms floor, {len(failures)} failure(s)")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="fail on >threshold normalised bench regressions")
    parser.add_argument("--baseline", action="append", required=True,
                        help="directory with committed BENCH_*.json "
                             "(repeatable; merged by per-cell min)")
    parser.add_argument("--results", action="append", required=True,
                        help="directory with fresh BENCH_*.json "
                             "(repeatable; merged by per-cell min)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative normalised regression allowed")
    parser.add_argument("--quality-threshold", type=float, default=None,
                        help="relative drop allowed on *_pct quality "
                             "cells (default: --threshold). Speedup "
                             "cells (e.g. gemm's simd_speedup_pct) are "
                             "ratios of two timings, so they tolerate a "
                             "different noise band than time shares")
    parser.add_argument("--floor-ms", type=float, default=0.25,
                        help="do not gate cells faster than this")
    parser.add_argument("slugs", nargs="+",
                        help="bench slugs to gate, e.g. gemm prepare")
    args = parser.parse_args()

    all_failures = []
    for slug in args.slugs:
        all_failures.extend(
            check_bench(slug, args.baseline, args.results,
                        args.threshold, args.floor_ms,
                        args.quality_threshold))

    if all_failures:
        print("\nbench regression gate FAILED:")
        for failure in all_failures:
            print(f"  {failure}")
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
