/**
 * @file
 * orpheus — command-line front end to the framework.
 *
 * Subcommands:
 *   list                          zoo models, personalities, kernels
 *   info    <model>               plan summary + footprint
 *   run     <model> [options]     timed inference
 *   compare <model> [options]     all framework personalities
 *   convert <model> <out.onnx>    export a zoo model to ONNX
 *   quantize <model> <out.onnx>   int8 PTQ, then export
 *   serve   <model> [options]     synthetic concurrent-client load
 *
 * <model> is a zoo name (resnet-18, ...) or a path to an .onnx file.
 * Common options:
 *   --personality <p>   orpheus | tvm | pytorch | darknet | tflite
 *   --threads <n>       inference threads (default 1, the paper setup)
 *   --runs <n>          timed repetitions (default 5)
 *   --profile           print the per-layer profile after running
 *   --autotune          measure every kernel candidate per node
 *   --no-simd           force scalar kernels (disable the SIMD tier;
 *                       equivalent to ORPHEUS_DISABLE_SIMD=1)
 * serve options:
 *   --clients <n>       concurrent client threads (default 4)
 *   --requests <n>      requests per client (default 32)
 *   --queue-depth <n>   admission-control queue bound (default 16)
 *   --deadline-ms <ms>  per-request deadline, 0 = unlimited (default 0)
 *   --workers <n>       service worker threads (default 2)
 *   --replicas <n>      engine replicas in the pool (default: workers)
 *   --warm-spares <n>   compiled spare replicas (default 0)
 *   --max-retries <n>   failover retries per request (default 0)
 *   --retry-budget <f>  retry tokens earned per request (default 0.2)
 *   --brownout          shed batch work / degrade replicas on overload
 *   --max-batch <n>     fuse up to n queued requests per engine run
 *   --batch-window-ms <ms>  max wait for co-batched requests (default 0:
 *                       coalesce only what is already queued)
 * latency classes (run/serve):
 *   --class <list>      comma-separated latency classes assigned to
 *                       clients round-robin: realtime | interactive |
 *                       batch (serve; default interactive). For run, a
 *                       single class routed through the service path.
 *   --priority <class>  alias for --class (run)
 *   --rt-queue-depth <n>        real-time lane depth (0 = depth/4)
 *   --class-deadline-ms <c>=<ms> per-class SLO budget, repeatable
 *                       (e.g. --class-deadline-ms realtime=50)
 * lifecycle (serve):
 *   --swap-to <model>   hot-swap to this model mid-run (canary rollout)
 *   --canary-fraction <f>       live-traffic slice for the canary (0.25)
 *   --canary-samples <n>        live samples observed before the verdict
 *   --shutdown-deadline-ms <ms> graceful-drain budget on SIGINT/SIGTERM
 * While serving, SIGINT/SIGTERM trigger a graceful drain (then the
 * final stats dump) and SIGHUP triggers a hot reload of --swap-to (or
 * the serving model spec).
 */
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cpu_features.hpp"
#include "core/rng.hpp"
#include "core/threadpool.hpp"
#include "eval/experiment.hpp"
#include "eval/layer_bench.hpp"
#include "eval/personalities.hpp"
#include "models/model_zoo.hpp"
#include "onnx/exporter.hpp"
#include "graph/text_format.hpp"
#include "onnx/importer.hpp"
#include "core/timer.hpp"
#include "quant/quantizer.hpp"
#include "runtime/engine.hpp"
#include "runtime/service.hpp"

namespace {

using namespace orpheus;

struct CliOptions {
    std::string personality = "orpheus";
    int threads = 1;
    int runs = 5;
    bool profile = false;
    bool autotune = false;
    bool no_simd = false;
    int clients = 4;
    int requests = 32;
    int queue_depth = 16;
    double deadline_ms = 0;
    int workers = 2;
    int replicas = 0;
    int warm_spares = 0;
    int max_retries = 0;
    double retry_budget = 0.2;
    bool brownout = false;
    /** --class/--priority: latency classes assigned to serve clients
     *  round-robin; empty keeps run on the bare-engine path. */
    std::string traffic_class;
    int rt_queue_depth = 0;
    std::array<double, kPriorityClasses> class_deadline_ms{};
    bool guard = false;
    int shadow_every = 0;
    double guard_cooldown_ms = 250;
    std::string corrupt_kind; // "" | nan | bitflip | spike
    std::string corrupt_node;
    std::string corrupt_impl;
    int corrupt_max = -1;
    std::string swap_to;
    double canary_fraction = 0.25;
    long long canary_samples = 0;
    double shutdown_deadline_ms = 0;
    int max_batch = 1;
    double batch_window_ms = 0;
    std::vector<std::string> positional;
};

/* Signal flags for serve: handlers only set these; the serve control
 * loop routes them through the graceful-shutdown / reload paths. */
volatile std::sig_atomic_t g_shutdown_requested = 0;
volatile std::sig_atomic_t g_reload_requested = 0;

void
on_shutdown_signal(int)
{
    g_shutdown_requested = 1;
}

void
on_reload_signal(int)
{
    g_reload_requested = 1;
}

/** "realtime" (or "rt") / "interactive" / "batch" → RequestPriority. */
RequestPriority
priority_by_name(const std::string &name)
{
    if (name == "realtime" || name == "rt")
        return RequestPriority::kRealtime;
    if (name == "interactive")
        return RequestPriority::kInteractive;
    if (name == "batch")
        return RequestPriority::kBatch;
    ORPHEUS_CHECK(false, "latency class must be realtime, interactive or "
                         "batch, got "
                             << name);
    return RequestPriority::kInteractive;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: orpheus <list|info|run|compare|convert|quantize|serve> "
        "[<model>] [args]\n"
        "  options: --personality <p> --threads <n> --runs <n> "
        "--profile --autotune --no-simd\n"
        "  serve:   --clients <n> --requests <n> --queue-depth <n> "
        "--deadline-ms <ms> --workers <n>\n"
        "           --replicas <n> --warm-spares <n> --max-retries <n> "
        "--retry-budget <f> --brownout\n"
        "           --max-batch <n> --batch-window-ms <ms>\n"
        "  classes (run/serve): --class <realtime|interactive|batch>[,"
        "...] --priority <class> --rt-queue-depth <n> "
        "--class-deadline-ms <class>=<ms>\n"
        "  lifecycle (serve): --swap-to <model> --canary-fraction <f> "
        "--canary-samples <n> --shutdown-deadline-ms <ms>\n"
        "  guard (run/serve): --guard --shadow-every <n> "
        "--guard-cooldown-ms <ms>\n"
        "  chaos (run/serve): --corrupt <nan|bitflip|spike> "
        "[--corrupt-node <name>] [--corrupt-impl <impl>] "
        "[--corrupt-max <n>]\n");
    return 2;
}

CliOptions
parse_options(int argc, char **argv, int first)
{
    CliOptions options;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next_value = [&](const char *flag) {
            ORPHEUS_CHECK(i + 1 < argc, "missing value for " << flag);
            return std::string(argv[++i]);
        };
        if (arg == "--personality")
            options.personality = next_value("--personality");
        else if (arg == "--threads")
            options.threads = std::stoi(next_value("--threads"));
        else if (arg == "--runs")
            options.runs = std::stoi(next_value("--runs"));
        else if (arg == "--profile")
            options.profile = true;
        else if (arg == "--autotune")
            options.autotune = true;
        else if (arg == "--no-simd")
            options.no_simd = true;
        else if (arg == "--clients")
            options.clients = std::stoi(next_value("--clients"));
        else if (arg == "--requests")
            options.requests = std::stoi(next_value("--requests"));
        else if (arg == "--queue-depth")
            options.queue_depth = std::stoi(next_value("--queue-depth"));
        else if (arg == "--deadline-ms")
            options.deadline_ms = std::stod(next_value("--deadline-ms"));
        else if (arg == "--workers")
            options.workers = std::stoi(next_value("--workers"));
        else if (arg == "--replicas")
            options.replicas = std::stoi(next_value("--replicas"));
        else if (arg == "--warm-spares")
            options.warm_spares = std::stoi(next_value("--warm-spares"));
        else if (arg == "--max-retries")
            options.max_retries = std::stoi(next_value("--max-retries"));
        else if (arg == "--retry-budget")
            options.retry_budget = std::stod(next_value("--retry-budget"));
        else if (arg == "--brownout")
            options.brownout = true;
        else if (arg == "--class" || arg == "--priority")
            options.traffic_class = next_value(arg.c_str());
        else if (arg == "--rt-queue-depth")
            options.rt_queue_depth =
                std::stoi(next_value("--rt-queue-depth"));
        else if (arg == "--class-deadline-ms") {
            const std::string spec = next_value("--class-deadline-ms");
            const std::size_t eq = spec.find('=');
            ORPHEUS_CHECK(eq != std::string::npos,
                          "--class-deadline-ms wants <class>=<ms>, got "
                              << spec);
            options.class_deadline_ms[priority_index(
                priority_by_name(spec.substr(0, eq)))] =
                std::stod(spec.substr(eq + 1));
        }
        else if (arg == "--guard")
            options.guard = true;
        else if (arg == "--shadow-every")
            options.shadow_every = std::stoi(next_value("--shadow-every"));
        else if (arg == "--guard-cooldown-ms")
            options.guard_cooldown_ms =
                std::stod(next_value("--guard-cooldown-ms"));
        else if (arg == "--corrupt")
            options.corrupt_kind = next_value("--corrupt");
        else if (arg == "--corrupt-node")
            options.corrupt_node = next_value("--corrupt-node");
        else if (arg == "--corrupt-impl")
            options.corrupt_impl = next_value("--corrupt-impl");
        else if (arg == "--corrupt-max")
            options.corrupt_max = std::stoi(next_value("--corrupt-max"));
        else if (arg == "--swap-to")
            options.swap_to = next_value("--swap-to");
        else if (arg == "--canary-fraction")
            options.canary_fraction =
                std::stod(next_value("--canary-fraction"));
        else if (arg == "--canary-samples")
            options.canary_samples =
                std::stoll(next_value("--canary-samples"));
        else if (arg == "--shutdown-deadline-ms")
            options.shutdown_deadline_ms =
                std::stod(next_value("--shutdown-deadline-ms"));
        else if (arg == "--max-batch")
            options.max_batch = std::stoi(next_value("--max-batch"));
        else if (arg == "--batch-window-ms")
            options.batch_window_ms =
                std::stod(next_value("--batch-window-ms"));
        else
            options.positional.push_back(arg);
    }
    return options;
}

/** One-line cpu-feature / SIMD-tier report for run & serve banners. */
void
print_cpu_features()
{
    const std::string features = cpu_features().to_string();
    const char *isa = simd_isa_compiled();
    std::string tier;
    if (isa[0] == '\0')
        tier = "none compiled in";
    else if (!simd_isa_supported())
        tier = std::string(isa) + " (unsupported on this host)";
    else if (simd_disabled())
        tier = std::string(isa) + " (disabled by override)";
    else
        tier = std::string(isa) + " (active)";
    std::printf("cpu-features: %s; simd tier: %s\n",
                features.empty() ? "none" : features.c_str(),
                tier.c_str());
}

bool
has_suffix(const std::string &value, const std::string &suffix)
{
    return value.size() > suffix.size() &&
           value.compare(value.size() - suffix.size(), suffix.size(),
                         suffix) == 0;
}

/** Loads a model by zoo name, ONNX path or .orpht text path. */
Graph
load_model(const std::string &spec)
{
    Graph graph;
    if (has_suffix(spec, ".onnx")) {
        import_onnx_file(spec, graph).throw_if_error();
        return graph;
    }
    if (has_suffix(spec, ".orpht")) {
        load_text_file(spec, graph).throw_if_error();
        return graph;
    }
    return models::by_name(spec);
}

/** Writes @p graph to @p path by extension (.onnx or .orpht). */
void
save_model(const Graph &graph, const std::string &path)
{
    if (has_suffix(path, ".orpht"))
        save_text_file(graph, path).throw_if_error();
    else
        export_onnx_file(graph, path).throw_if_error();
}

EngineOptions
engine_options(const CliOptions &cli, bool profiling)
{
    EngineOptions options = personality_by_name(cli.personality).options;
    options.enable_profiling = profiling;
    if (cli.autotune)
        options.selection = SelectionStrategy::kAutoTune;
    return options;
}

CorruptionKind
corruption_kind_by_name(const std::string &name)
{
    if (name == "nan")
        return CorruptionKind::kNaNPoke;
    if (name == "bitflip")
        return CorruptionKind::kBitFlip;
    if (name == "spike")
        return CorruptionKind::kMagnitudeSpike;
    ORPHEUS_CHECK(false,
                  "--corrupt must be nan, bitflip or spike, got " << name);
    return CorruptionKind::kNone;
}

/** Applies --guard/--corrupt flags to @p options for run and serve. */
void
apply_guard_and_chaos(const CliOptions &cli, EngineOptions &options)
{
    if (cli.guard) {
        options.guard.enabled = true;
        options.guard.shadow_every_n = cli.shadow_every;
        options.guard.cooldown_ms = cli.guard_cooldown_ms;
    }
    if (!cli.corrupt_kind.empty()) {
        auto injector = std::make_shared<FaultInjector>();
        injector->arm_corruption(cli.corrupt_node, cli.corrupt_impl,
                                 corruption_kind_by_name(cli.corrupt_kind),
                                 /*corrupt_from_call=*/0,
                                 cli.corrupt_max);
        options.fault_injector = std::move(injector);
    }
}

/** Prints the process-wide per-kernel health ledger (guard runs). */
void
print_kernel_health()
{
    const auto snapshot = KernelRegistry::instance().health().snapshot();
    if (snapshot.empty())
        return;
    std::printf("\nkernel health ledger:\n");
    std::printf("  %-28s %6s %6s %6s %6s %8s %8s\n", "kernel", "trips",
                "faults", "opens", "recov", "shadows", "diverged");
    for (const auto &[id, record] : snapshot)
        std::printf("  %-28s %6lld %6lld %6lld %6lld %8lld %8lld\n",
                    id.c_str(),
                    static_cast<long long>(record.guard_trips),
                    static_cast<long long>(record.faults),
                    static_cast<long long>(record.breaker_opens),
                    static_cast<long long>(record.recoveries),
                    static_cast<long long>(record.shadow_runs),
                    static_cast<long long>(record.shadow_divergences));
}

int
cmd_list()
{
    std::printf("zoo models:\n");
    for (const std::string &name : models::zoo_names())
        std::printf("  %s\n", name.c_str());
    std::printf("  tiny-cnn\n  tiny-mlp\n");

    std::printf("\nframework personalities:\n");
    for (const char *name :
         {"orpheus", "tvm", "pytorch", "darknet", "tflite"}) {
        const FrameworkPersonality p = personality_by_name(name);
        std::printf("  %-10s %s\n", name, p.notes.c_str());
    }

    std::printf("\nregistered kernels:\n");
    KernelRegistry &registry = KernelRegistry::instance();
    for (const std::string &op : registry.op_types()) {
        std::printf("  %-22s", op.c_str());
        for (const KernelDef *def : registry.kernels(op))
            std::printf(" %s(%d)", def->impl_name.c_str(), def->priority);
        std::printf("\n");
    }
    return 0;
}

int
cmd_info(const CliOptions &cli)
{
    ORPHEUS_CHECK(!cli.positional.empty(), "info: missing model");
    Graph graph = load_model(cli.positional[0]);

    std::size_t weight_bytes = 0;
    std::int64_t parameters = 0;
    for (const auto &[name, tensor] : graph.initializers()) {
        (void)name;
        weight_bytes += tensor.byte_size();
        parameters += tensor.numel();
    }
    std::printf("model: %s\n", graph.name().c_str());
    std::printf("  nodes: %zu   initializers: %zu   parameters: %lld "
                "(%.2f MiB)\n",
                graph.nodes().size(), graph.initializers().size(),
                static_cast<long long>(parameters),
                static_cast<double>(weight_bytes) / (1024 * 1024));

    Engine engine(std::move(graph), engine_options(cli, false));
    std::printf("  plan steps after simplification: %zu\n",
                engine.steps().size());
    std::printf("  activation arena: %.2f MiB (no reuse: %.2f MiB)\n\n",
                static_cast<double>(engine.arena_bytes()) / (1024 * 1024),
                static_cast<double>(engine.naive_arena_bytes()) /
                    (1024 * 1024));
    std::printf("%s", engine.plan_summary().c_str());
    return 0;
}

/**
 * run --priority/--class: timed repetitions routed through an
 * InferenceService in the requested latency class, so class SLO
 * budgets and feasibility admission engage exactly as they would in
 * serving (an un-meetable budget is rejected at submit, not timed).
 */
int
run_through_service(const CliOptions &cli, EngineOptions options)
{
    const RequestPriority priority = priority_by_name(cli.traffic_class);
    ServiceOptions service_options;
    service_options.workers = 1;
    service_options.max_queue_depth =
        static_cast<std::size_t>(std::max(1, cli.queue_depth));
    service_options.rt_queue_depth =
        static_cast<std::size_t>(std::max(0, cli.rt_queue_depth));
    service_options.default_deadline_ms = cli.deadline_ms;
    service_options.class_deadline_ms = cli.class_deadline_ms;
    InferenceService service(load_model(cli.positional[0]), options,
                             service_options);

    Rng rng(0x0e11);
    std::map<std::string, Tensor> inputs;
    for (const auto &input : service.engine().request_inputs())
        inputs[input.name] = random_tensor(input.shape, rng);

    int ok = 0;
    for (int i = 0; i < cli.runs; ++i) {
        const InferenceResponse response =
            service.run(inputs, DeadlineToken(), priority);
        if (response.status.is_ok())
            ++ok;
        else
            std::printf("run %d: %s\n", i,
                        response.status.to_string().c_str());
    }
    const ServiceStats stats = service.stats();
    const std::size_t lane = priority_index(priority);
    std::printf("%s as %s traffic: %d/%d ok, p50 %.2f ms  p99 %.2f ms  "
                "p99.9 %.2f ms  (%lld infeasible-rejected, %lld deadline "
                "misses)\n",
                service.engine().graph().name().c_str(),
                to_string(priority), ok, cli.runs,
                stats.class_p50_ms[lane], stats.class_p99_ms[lane],
                stats.class_p999_ms[lane],
                static_cast<long long>(stats.class_infeasible[lane]),
                static_cast<long long>(stats.class_deadline_miss[lane]));
    service.stop();
    return ok == cli.runs ? 0 : 1;
}

int
cmd_run(const CliOptions &cli)
{
    ORPHEUS_CHECK(!cli.positional.empty(), "run: missing model");
    const FrameworkPersonality personality =
        personality_by_name(cli.personality);
    set_global_num_threads(personality.effective_threads(cli.threads));

    EngineOptions options = engine_options(cli, cli.profile);
    apply_guard_and_chaos(cli, options);
    print_cpu_features();
    if (!cli.traffic_class.empty())
        return run_through_service(cli, std::move(options));
    Engine engine(load_model(cli.positional[0]), options);
    ExperimentConfig config;
    config.timed_runs = cli.runs;
    try {
        const ExperimentResult result = time_inference(engine, config);
        std::printf("%s under %s (%d threads requested): %s\n",
                    engine.graph().name().c_str(), personality.name.c_str(),
                    cli.threads, result.stats.to_string().c_str());
    } catch (const DataCorruptionError &error) {
        std::printf("guard stopped the run: %s\n", error.what());
        print_kernel_health();
        return 1;
    }

    if (cli.profile) {
        const auto timings = profile_layers(engine, cli.runs);
        std::printf("\n%s",
                    layer_timings_to_string(timings, 25).c_str());
    }
    if (cli.guard)
        print_kernel_health();
    return 0;
}

int
cmd_compare(const CliOptions &cli)
{
    ORPHEUS_CHECK(!cli.positional.empty(), "compare: missing model");
    const Graph graph = load_model(cli.positional[0]);

    std::printf("%-16s %12s %12s\n", "personality", "mean ms",
                "median ms");
    std::printf("%s\n", std::string(42, '-').c_str());
    for (const FrameworkPersonality &p : figure2_personalities()) {
        set_global_num_threads(p.effective_threads(cli.threads));
        Engine engine{Graph(graph), p.options};
        ExperimentConfig config;
        config.timed_runs = cli.runs;
        const ExperimentResult result = time_inference(engine, config);
        std::printf("%-16s %12.2f %12.2f\n", p.name.c_str(),
                    result.stats.mean, result.stats.median);
    }
    set_global_num_threads(1);
    return 0;
}

int
cmd_convert(const CliOptions &cli)
{
    ORPHEUS_CHECK(cli.positional.size() >= 2,
                  "convert: need <model> <out.onnx|out.orpht>");
    const Graph graph = load_model(cli.positional[0]);
    save_model(graph, cli.positional[1]);
    std::printf("wrote %s\n", cli.positional[1].c_str());
    return 0;
}

int
cmd_quantize(const CliOptions &cli)
{
    ORPHEUS_CHECK(cli.positional.size() >= 2,
                  "quantize: need <model> <out.onnx>");
    QuantizationReport report;
    Graph quantized =
        quantize_model(load_model(cli.positional[0]), {}, &report);
    std::printf("quantized %d convs (%d skipped, %d Q/DQ pairs removed)\n",
                report.quantized_convs, report.skipped_convs,
                report.removed_quant_pairs);
    save_model(quantized, cli.positional[1]);
    std::printf("wrote %s\n", cli.positional[1].c_str());
    return 0;
}

void
print_rollout(const RolloutReport &report)
{
    std::printf("rollout: generation %llu %s — %s "
                "(%zu replica(s) swapped, %lld canary samples)\n",
                static_cast<unsigned long long>(report.generation),
                report.status.is_ok()
                    ? "promoted"
                    : (report.rolled_back ? "rolled back" : "rejected"),
                report.status.is_ok() ? report.detail.c_str()
                                      : report.status.message().c_str(),
                report.replicas_swapped,
                static_cast<long long>(report.canary_samples));
}

/**
 * Synthetic serving load: --clients threads each push --requests
 * requests through an InferenceService in bursts, so admission control
 * and deadlines actually engage. Reports client-observed latency
 * percentiles plus the service's shed counters.
 */
int
cmd_serve(const CliOptions &cli)
{
    ORPHEUS_CHECK(!cli.positional.empty(), "serve: missing model");
    ORPHEUS_CHECK(cli.clients > 0 && cli.requests > 0,
                  "serve: --clients and --requests must be positive");
    const FrameworkPersonality personality =
        personality_by_name(cli.personality);
    set_global_num_threads(personality.effective_threads(cli.threads));

    ServiceOptions service_options;
    service_options.max_queue_depth =
        static_cast<std::size_t>(std::max(1, cli.queue_depth));
    service_options.workers = std::max(1, cli.workers);
    service_options.default_deadline_ms = cli.deadline_ms;
    service_options.replicas = std::max(0, cli.replicas);
    service_options.warm_spares = std::max(0, cli.warm_spares);
    service_options.max_retries = std::max(0, cli.max_retries);
    service_options.retry_budget = cli.retry_budget;
    service_options.enable_brownout = cli.brownout;
    service_options.rt_queue_depth =
        static_cast<std::size_t>(std::max(0, cli.rt_queue_depth));
    service_options.class_deadline_ms = cli.class_deadline_ms;
    service_options.max_batch = std::max(1, cli.max_batch);
    service_options.batch_window_ms = std::max(0.0, cli.batch_window_ms);

    /* --class realtime,batch,... assigns latency classes to client
     * threads round-robin, so one invocation can mix (say) a couple
     * of real-time clients into a batch flood. */
    std::vector<RequestPriority> client_classes;
    std::string class_list =
        cli.traffic_class.empty() ? "interactive" : cli.traffic_class;
    for (std::size_t start = 0; start <= class_list.size();) {
        std::size_t comma = class_list.find(',', start);
        if (comma == std::string::npos)
            comma = class_list.size();
        client_classes.push_back(
            priority_by_name(class_list.substr(start, comma - start)));
        start = comma + 1;
    }

    EngineOptions eng_options = engine_options(cli, false);
    apply_guard_and_chaos(cli, eng_options);
    InferenceService service(load_model(cli.positional[0]), eng_options,
                             service_options);

    char deadline_text[32] = "unlimited";
    if (cli.deadline_ms > 0)
        std::snprintf(deadline_text, sizeof(deadline_text), "%g ms",
                      cli.deadline_ms);
    print_cpu_features();
    std::printf("serving %s: %d clients x %d requests, queue depth %zu, "
                "%d workers, deadline %s\n",
                service.engine().graph().name().c_str(), cli.clients,
                cli.requests, service_options.max_queue_depth,
                service_options.workers, deadline_text);
    const ConstantPackCache &packs = service.pool().pack_cache();
    std::printf("pool: %zu replicas (+%d warm spares), max %d retries "
                "(budget %.2f/request), brownout %s; shared packs: "
                "%zu entries, %.1f KiB, %lld hits\n",
                service.pool().replica_count() -
                    static_cast<std::size_t>(service_options.warm_spares),
                service_options.warm_spares, service_options.max_retries,
                service_options.retry_budget,
                service_options.enable_brownout ? "on" : "off",
                packs.entries(),
                static_cast<double>(packs.bytes()) / 1024.0,
                static_cast<long long>(packs.hits()));
    std::printf("per-request activation footprint: %.1f KiB\n",
                static_cast<double>(service.request_footprint_bytes()) /
                    1024.0);
    if (service_options.max_batch > 1) {
        const std::string &fallback =
            service.engine().batch_fallback_reason();
        if (fallback.empty())
            std::printf("batching: up to %lld per run, window %g ms\n",
                        static_cast<long long>(
                            service.engine().batch_capacity()),
                        service_options.batch_window_ms);
        else
            std::printf("batching: OFF (%s)\n", fallback.c_str());
    }
    if (cli.guard)
        std::printf("guard: on (shadow every %d, cool-down %g ms)%s\n",
                    cli.shadow_every, cli.guard_cooldown_ms,
                    cli.corrupt_kind.empty()
                        ? ""
                        : "  [corruption injection armed]");

    /* SIGINT/SIGTERM drain gracefully and still print the final stats
     * dump; SIGHUP hot-reloads the model through the canary lifecycle. */
    g_shutdown_requested = 0;
    g_reload_requested = 0;
    std::signal(SIGINT, on_shutdown_signal);
    std::signal(SIGTERM, on_shutdown_signal);
#ifdef SIGHUP
    std::signal(SIGHUP, on_reload_signal);
#endif

    std::mutex merge_mutex;
    std::vector<double> latencies;
    std::vector<std::thread> threads;
    std::atomic<int> clients_done{0};
    const int burst = 4;
    Timer wall;
    for (int client = 0; client < cli.clients; ++client) {
        const RequestPriority client_class =
            client_classes[static_cast<std::size_t>(client) %
                           client_classes.size()];
        threads.emplace_back([&, client, client_class] {
            Rng rng(0x5e47 + static_cast<std::uint64_t>(client));
            std::map<std::string, Tensor> inputs;
            for (const auto &input : service.engine().request_inputs())
                inputs[input.name] = random_tensor(input.shape, rng);
            std::vector<double> local;
            int remaining = cli.requests;
            while (remaining > 0) {
                const int batch = std::min(burst, remaining);
                remaining -= batch;
                std::vector<std::future<InferenceResponse>> inflight;
                std::vector<Timer> timers(
                    static_cast<std::size_t>(batch));
                for (int i = 0; i < batch; ++i) {
                    timers[static_cast<std::size_t>(i)] = Timer();
                    inflight.push_back(service.submit(
                        inputs, DeadlineToken(), 0, client_class));
                }
                for (int i = 0; i < batch; ++i) {
                    const InferenceResponse response =
                        inflight[static_cast<std::size_t>(i)].get();
                    if (response.status.is_ok())
                        local.push_back(
                            timers[static_cast<std::size_t>(i)]
                                .elapsed_ms());
                }
            }
            {
                std::lock_guard<std::mutex> lock(merge_mutex);
                latencies.insert(latencies.end(), local.begin(),
                                 local.end());
            }
            ++clients_done;
        });
    }

    /* Control loop: watch for signals and the --swap-to trigger while
     * the clients run. --swap-to fires once, a quarter of the way into
     * the load, so the canary observes genuinely live traffic. */
    const long long total_requests =
        static_cast<long long>(cli.clients) * cli.requests;
    bool swapped = cli.swap_to.empty();
    bool drained = false;
    ShutdownReport drain_report;
    const auto reload_to = [&](const std::string &target) {
        RolloutOptions rollout;
        rollout.canary_fraction = cli.canary_fraction;
        rollout.min_canary_samples = cli.canary_samples;
        std::printf("\nhot swap: staging %s (canary slice %.0f%%, "
                    "%lld live samples)\n",
                    target.c_str(), 100.0 * cli.canary_fraction,
                    static_cast<long long>(cli.canary_samples));
        try {
            print_rollout(service.reload(load_model(target), rollout));
        } catch (const std::exception &error) {
            /* A bad --swap-to spec must not take down the serving
             * incumbent; report and keep draining traffic. */
            std::printf("hot swap: failed to load %s: %s\n",
                        target.c_str(), error.what());
        }
    };
    while (clients_done.load() < cli.clients) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        if (g_reload_requested) {
            g_reload_requested = 0;
            swapped = true;
            reload_to(cli.swap_to.empty() ? cli.positional[0]
                                          : cli.swap_to);
        } else if (!swapped &&
                   service.stats().completed_ok >= total_requests / 4) {
            swapped = true;
            reload_to(cli.swap_to);
        }
        if (g_shutdown_requested) {
            std::printf("\nsignal: graceful shutdown (deadline %s)\n",
                        cli.shutdown_deadline_ms > 0 ? "armed"
                                                     : "unlimited");
            drain_report = service.shutdown(cli.shutdown_deadline_ms);
            drained = true;
            break; /* submits now fail fast; clients wind down */
        }
    }
    for (std::thread &thread : threads)
        thread.join();
    const double wall_s = wall.elapsed_s();

    const auto percentile = [&](double p) {
        if (latencies.empty())
            return 0.0;
        const double rank =
            p / 100.0 * static_cast<double>(latencies.size() - 1);
        const std::size_t index =
            static_cast<std::size_t>(std::llround(rank));
        return latencies[index];
    };
    std::sort(latencies.begin(), latencies.end());

    const ServiceStats stats = service.stats();
    std::printf("\ncompleted %lld / %lld submitted in %.2f s "
                "(%.1f req/s)\n",
                static_cast<long long>(stats.completed_ok),
                static_cast<long long>(stats.submitted), wall_s,
                wall_s > 0
                    ? static_cast<double>(stats.completed_ok) / wall_s
                    : 0.0);
    std::printf("latency (client-observed, completed requests): "
                "p50 %.2f ms   p99 %.2f ms\n",
                percentile(50.0), percentile(99.0));
    std::printf("latency (service histogram, queue + run): "
                "p50 %.2f ms   p99 %.2f ms   p99.9 %.2f ms\n",
                stats.latency_p50_ms, stats.latency_p99_ms,
                stats.latency_p999_ms);
    std::printf("shed: %lld queue-full, %lld over-deadline (%lld "
                "infeasible at submit); failed: %lld\n",
                static_cast<long long>(stats.rejected_queue_full),
                static_cast<long long>(stats.deadline_exceeded),
                static_cast<long long>(stats.rejected_infeasible),
                static_cast<long long>(stats.failed));
    std::printf("\nper-class (queue + run):\n");
    std::printf("  %-12s %7s %9s %9s %9s %6s %11s %7s\n", "class",
                "count", "p50 ms", "p99 ms", "p99.9 ms", "shed",
                "infeasible", "misses");
    for (std::size_t lane = 0; lane < kPriorityClasses; ++lane)
        std::printf("  %-12s %7lld %9.2f %9.2f %9.2f %6lld %11lld "
                    "%7lld\n",
                    to_string(static_cast<RequestPriority>(lane)),
                    static_cast<long long>(stats.class_count[lane]),
                    stats.class_p50_ms[lane], stats.class_p99_ms[lane],
                    stats.class_p999_ms[lane],
                    static_cast<long long>(stats.class_shed[lane]),
                    static_cast<long long>(stats.class_infeasible[lane]),
                    static_cast<long long>(
                        stats.class_deadline_miss[lane]));
    if (service_options.max_batch > 1)
        std::printf("batching: %lld batches (%lld requests, mean "
                    "occupancy %.2f, max %lld), flushes %lld full / "
                    "%lld window / %lld deadline, %lld splits\n",
                    static_cast<long long>(stats.batches_formed),
                    static_cast<long long>(stats.batched_requests),
                    stats.batch_mean_occupancy,
                    static_cast<long long>(stats.batch_max_occupancy),
                    static_cast<long long>(stats.batch_flush_full),
                    static_cast<long long>(stats.batch_flush_window),
                    static_cast<long long>(stats.batch_flush_deadline),
                    static_cast<long long>(stats.batch_splits));
    std::printf("watchdog: %lld hangs, %lld demotions\n",
                static_cast<long long>(stats.watchdog_hangs),
                static_cast<long long>(stats.demotions));
    std::printf("failover: %lld retries (%lld denied by budget), "
                "%lld quarantines, %lld probes, %lld readmissions\n",
                static_cast<long long>(stats.retries),
                static_cast<long long>(stats.retry_budget_denied),
                static_cast<long long>(stats.quarantines),
                static_cast<long long>(stats.probes),
                static_cast<long long>(stats.readmissions));
    if (service_options.enable_brownout)
        std::printf("brownout: entered %lld, exited %lld, shed %lld "
                    "batch requests\n",
                    static_cast<long long>(stats.brownout_entered),
                    static_cast<long long>(stats.brownout_exited),
                    static_cast<long long>(stats.brownout_shed));
    std::printf("lifecycle: generation %llu active (%s), %lld swaps, "
                "%lld rollbacks, %lld canary-routed\n",
                static_cast<unsigned long long>(stats.active_generation),
                service.registry().active_model().c_str(),
                static_cast<long long>(stats.model_swaps),
                static_cast<long long>(stats.model_rollbacks),
                static_cast<long long>(stats.canary_routed));
    if (drained) {
        std::printf("shutdown: %s in %.1f ms — flushed %lld, shed %lld "
                    "(+%lld rejected at admission)\n",
                    drain_report.status.is_ok() ? "drained clean"
                                                : "deadline cut drain "
                                                  "short",
                    drain_report.duration_ms,
                    static_cast<long long>(drain_report.flushed),
                    static_cast<long long>(drain_report.shed),
                    static_cast<long long>(stats.rejected_shutdown));
    }
    const auto generations = service.registry().generations();
    if (generations.size() > 1) {
        std::printf("\nmodel generations:\n");
        std::printf("  %-4s %-14s %-12s %s\n", "gen", "model", "state",
                    "detail");
        for (const GenerationInfo &generation : generations)
            std::printf("  %-4llu %-14s %-12s %s\n",
                        static_cast<unsigned long long>(generation.id),
                        generation.model_name.c_str(),
                        to_string(generation.state),
                        generation.detail.c_str());
    }
    std::printf("\nreplica pool:\n");
    std::printf("  %-3s %-4s %-12s %7s %8s %8s %6s  %s\n", "id", "gen",
                "state", "penalty", "served", "failures", "opens",
                "last fault");
    for (const ReplicaSnapshot &replica : service.pool().snapshot())
        std::printf("  %-3zu %-4llu %-12s %7.2f %8lld %8lld %6lld  %s\n",
                    replica.id,
                    static_cast<unsigned long long>(replica.generation),
                    to_string(replica.state),
                    replica.health_penalty,
                    static_cast<long long>(replica.served),
                    static_cast<long long>(replica.failures),
                    static_cast<long long>(replica.breaker_opens),
                    replica.last_fault.empty() ? "-"
                                               : replica.last_fault.c_str());
    if (cli.guard) {
        std::printf("guard: %lld requests stopped on confirmed "
                    "corruption (never served wrong data)\n",
                    static_cast<long long>(stats.data_corruption));
        print_kernel_health();
    }
    service.stop();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    try {
        const CliOptions cli = parse_options(argc, argv, 2);
        if (cli.no_simd)
            force_disable_simd(true);
        if (command == "list")
            return cmd_list();
        if (command == "info")
            return cmd_info(cli);
        if (command == "run")
            return cmd_run(cli);
        if (command == "compare")
            return cmd_compare(cli);
        if (command == "convert")
            return cmd_convert(cli);
        if (command == "quantize")
            return cmd_quantize(cli);
        if (command == "serve")
            return cmd_serve(cli);
        return usage();
    } catch (const std::exception &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
