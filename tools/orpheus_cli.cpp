/**
 * @file
 * orpheus — command-line front end to the framework.
 *
 * Subcommands:
 *   list                          zoo models, personalities, kernels
 *   info    <model>               plan summary + footprint
 *   run     <model> [options]     timed inference
 *   compare <model> [options]     all framework personalities
 *   convert <model> <out.onnx>    export a zoo model to ONNX
 *   quantize <model> <out.onnx>   int8 PTQ, then export
 *
 * <model> is a zoo name (resnet-18, ...) or a path to an .onnx file.
 * Common options:
 *   --personality <p>   orpheus | tvm | pytorch | darknet | tflite
 *   --threads <n>       inference threads (default 1, the paper setup)
 *   --runs <n>          timed repetitions (default 5)
 *   --profile           print the per-layer profile after running
 *   --autotune          measure every kernel candidate per node
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/threadpool.hpp"
#include "eval/experiment.hpp"
#include "eval/layer_bench.hpp"
#include "eval/personalities.hpp"
#include "models/model_zoo.hpp"
#include "onnx/exporter.hpp"
#include "graph/text_format.hpp"
#include "onnx/importer.hpp"
#include "quant/quantizer.hpp"
#include "runtime/engine.hpp"

namespace {

using namespace orpheus;

struct CliOptions {
    std::string personality = "orpheus";
    int threads = 1;
    int runs = 5;
    bool profile = false;
    bool autotune = false;
    std::vector<std::string> positional;
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: orpheus <list|info|run|compare|convert|quantize> "
        "[<model>] [args]\n"
        "  options: --personality <p> --threads <n> --runs <n> "
        "--profile --autotune\n");
    return 2;
}

CliOptions
parse_options(int argc, char **argv, int first)
{
    CliOptions options;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next_value = [&](const char *flag) {
            ORPHEUS_CHECK(i + 1 < argc, "missing value for " << flag);
            return std::string(argv[++i]);
        };
        if (arg == "--personality")
            options.personality = next_value("--personality");
        else if (arg == "--threads")
            options.threads = std::stoi(next_value("--threads"));
        else if (arg == "--runs")
            options.runs = std::stoi(next_value("--runs"));
        else if (arg == "--profile")
            options.profile = true;
        else if (arg == "--autotune")
            options.autotune = true;
        else
            options.positional.push_back(arg);
    }
    return options;
}

bool
has_suffix(const std::string &value, const std::string &suffix)
{
    return value.size() > suffix.size() &&
           value.compare(value.size() - suffix.size(), suffix.size(),
                         suffix) == 0;
}

/** Loads a model by zoo name, ONNX path or .orpht text path. */
Graph
load_model(const std::string &spec)
{
    Graph graph;
    if (has_suffix(spec, ".onnx")) {
        import_onnx_file(spec, graph).throw_if_error();
        return graph;
    }
    if (has_suffix(spec, ".orpht")) {
        load_text_file(spec, graph).throw_if_error();
        return graph;
    }
    return models::by_name(spec);
}

/** Writes @p graph to @p path by extension (.onnx or .orpht). */
void
save_model(const Graph &graph, const std::string &path)
{
    if (has_suffix(path, ".orpht"))
        save_text_file(graph, path).throw_if_error();
    else
        export_onnx_file(graph, path).throw_if_error();
}

EngineOptions
engine_options(const CliOptions &cli, bool profiling)
{
    EngineOptions options = personality_by_name(cli.personality).options;
    options.enable_profiling = profiling;
    if (cli.autotune)
        options.selection = SelectionStrategy::kAutoTune;
    return options;
}

int
cmd_list()
{
    std::printf("zoo models:\n");
    for (const std::string &name : models::zoo_names())
        std::printf("  %s\n", name.c_str());
    std::printf("  tiny-cnn\n  tiny-mlp\n");

    std::printf("\nframework personalities:\n");
    for (const char *name :
         {"orpheus", "tvm", "pytorch", "darknet", "tflite"}) {
        const FrameworkPersonality p = personality_by_name(name);
        std::printf("  %-10s %s\n", name, p.notes.c_str());
    }

    std::printf("\nregistered kernels:\n");
    KernelRegistry &registry = KernelRegistry::instance();
    for (const std::string &op : registry.op_types()) {
        std::printf("  %-22s", op.c_str());
        for (const KernelDef *def : registry.kernels(op))
            std::printf(" %s(%d)", def->impl_name.c_str(), def->priority);
        std::printf("\n");
    }
    return 0;
}

int
cmd_info(const CliOptions &cli)
{
    ORPHEUS_CHECK(!cli.positional.empty(), "info: missing model");
    Graph graph = load_model(cli.positional[0]);

    std::size_t weight_bytes = 0;
    std::int64_t parameters = 0;
    for (const auto &[name, tensor] : graph.initializers()) {
        (void)name;
        weight_bytes += tensor.byte_size();
        parameters += tensor.numel();
    }
    std::printf("model: %s\n", graph.name().c_str());
    std::printf("  nodes: %zu   initializers: %zu   parameters: %lld "
                "(%.2f MiB)\n",
                graph.nodes().size(), graph.initializers().size(),
                static_cast<long long>(parameters),
                static_cast<double>(weight_bytes) / (1024 * 1024));

    Engine engine(std::move(graph), engine_options(cli, false));
    std::printf("  plan steps after simplification: %zu\n",
                engine.steps().size());
    std::printf("  activation arena: %.2f MiB (no reuse: %.2f MiB)\n\n",
                static_cast<double>(engine.arena_bytes()) / (1024 * 1024),
                static_cast<double>(engine.naive_arena_bytes()) /
                    (1024 * 1024));
    std::printf("%s", engine.plan_summary().c_str());
    return 0;
}

int
cmd_run(const CliOptions &cli)
{
    ORPHEUS_CHECK(!cli.positional.empty(), "run: missing model");
    const FrameworkPersonality personality =
        personality_by_name(cli.personality);
    set_global_num_threads(personality.effective_threads(cli.threads));

    Engine engine(load_model(cli.positional[0]),
                  engine_options(cli, cli.profile));
    ExperimentConfig config;
    config.timed_runs = cli.runs;
    const ExperimentResult result = time_inference(engine, config);
    std::printf("%s under %s (%d threads requested): %s\n",
                engine.graph().name().c_str(), personality.name.c_str(),
                cli.threads, result.stats.to_string().c_str());

    if (cli.profile) {
        const auto timings = profile_layers(engine, cli.runs);
        std::printf("\n%s",
                    layer_timings_to_string(timings, 25).c_str());
    }
    return 0;
}

int
cmd_compare(const CliOptions &cli)
{
    ORPHEUS_CHECK(!cli.positional.empty(), "compare: missing model");
    const Graph graph = load_model(cli.positional[0]);

    std::printf("%-16s %12s %12s\n", "personality", "mean ms",
                "median ms");
    std::printf("%s\n", std::string(42, '-').c_str());
    for (const FrameworkPersonality &p : figure2_personalities()) {
        set_global_num_threads(p.effective_threads(cli.threads));
        Engine engine{Graph(graph), p.options};
        ExperimentConfig config;
        config.timed_runs = cli.runs;
        const ExperimentResult result = time_inference(engine, config);
        std::printf("%-16s %12.2f %12.2f\n", p.name.c_str(),
                    result.stats.mean, result.stats.median);
    }
    set_global_num_threads(1);
    return 0;
}

int
cmd_convert(const CliOptions &cli)
{
    ORPHEUS_CHECK(cli.positional.size() >= 2,
                  "convert: need <model> <out.onnx|out.orpht>");
    const Graph graph = load_model(cli.positional[0]);
    save_model(graph, cli.positional[1]);
    std::printf("wrote %s\n", cli.positional[1].c_str());
    return 0;
}

int
cmd_quantize(const CliOptions &cli)
{
    ORPHEUS_CHECK(cli.positional.size() >= 2,
                  "quantize: need <model> <out.onnx>");
    QuantizationReport report;
    Graph quantized =
        quantize_model(load_model(cli.positional[0]), {}, &report);
    std::printf("quantized %d convs (%d skipped, %d Q/DQ pairs removed)\n",
                report.quantized_convs, report.skipped_convs,
                report.removed_quant_pairs);
    save_model(quantized, cli.positional[1]);
    std::printf("wrote %s\n", cli.positional[1].c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    try {
        const CliOptions cli = parse_options(argc, argv, 2);
        if (command == "list")
            return cmd_list();
        if (command == "info")
            return cmd_info(cli);
        if (command == "run")
            return cmd_run(cli);
        if (command == "compare")
            return cmd_compare(cli);
        if (command == "convert")
            return cmd_convert(cli);
        if (command == "quantize")
            return cmd_quantize(cli);
        return usage();
    } catch (const std::exception &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
