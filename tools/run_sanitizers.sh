#!/usr/bin/env bash
# Builds Orpheus with AddressSanitizer + UndefinedBehaviorSanitizer and
# runs the full test suite plus a fuzz smoke under instrumentation,
# then rebuilds with ThreadSanitizer (which cannot be combined with
# ASan) and runs the concurrency-sensitive suites. Any sanitizer report
# fails the run (-fno-sanitize-recover=all turns UBSan findings into
# aborts; halt_on_error does the same for ASan and TSan).
#
# Usage: tools/run_sanitizers.sh [build-dir] [fuzz-iterations] [tsan-build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-sanitize}"
FUZZ_ITERATIONS="${2:-10000}"
TSAN_BUILD_DIR="${3:-${REPO_ROOT}/build-tsan}"

# The suites that exercise threads: the pool itself, the serving layer,
# and the engine paths that drive parallel kernels.
TSAN_TESTS="test_threadpool|test_service|test_engine_pool|test_fault_injection|test_engine"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:abort_on_error=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

echo "== configure (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DORPHEUS_SANITIZE=address,undefined \
    -DORPHEUS_BUILD_BENCHMARKS=OFF \
    -DORPHEUS_BUILD_EXAMPLES=OFF

echo "== build =="
cmake --build "${BUILD_DIR}" -j"$(nproc)"

echo "== ctest under ASan/UBSan =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j"$(nproc)"

echo "== corpus replay under ASan/UBSan =="
"${BUILD_DIR}/tools/orpheus_fuzz" --corpus "${REPO_ROOT}/tests/corpus"

echo "== fuzz smoke (${FUZZ_ITERATIONS} iterations) under ASan/UBSan =="
"${BUILD_DIR}/tools/orpheus_fuzz" --iterations "${FUZZ_ITERATIONS}"

export TSAN_OPTIONS="halt_on_error=1:abort_on_error=1"

echo "== configure TSan (${TSAN_BUILD_DIR}) =="
cmake -B "${TSAN_BUILD_DIR}" -S "${REPO_ROOT}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DORPHEUS_SANITIZE=thread \
    -DORPHEUS_BUILD_BENCHMARKS=OFF \
    -DORPHEUS_BUILD_EXAMPLES=OFF

echo "== build TSan =="
cmake --build "${TSAN_BUILD_DIR}" -j"$(nproc)"

echo "== concurrency suites under TSan =="
ctest --test-dir "${TSAN_BUILD_DIR}" --output-on-failure \
    -R "^(${TSAN_TESTS})\$"

echo "== sanitizer run clean =="
