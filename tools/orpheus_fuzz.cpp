/**
 * @file
 * Deterministic mutation fuzzer for the ONNX import path.
 *
 * The importer is the single place where untrusted bytes enter Orpheus,
 * so it carries a hard contract: for ANY input it either imports
 * successfully or returns a typed Status — never an uncaught exception,
 * abort, hang, or out-of-bounds access (run under ASan/UBSan via
 * tools/run_sanitizers.sh to check the latter).
 *
 * The harness seeds from exporter-produced model-zoo bytes (so mutants
 * start structurally close to real models and reach deep into the
 * parser), applies RNG-driven mutations — truncation, bit flips,
 * length/varint corruption, dim inflation, splices — and checks the
 * contract on every mutant. Inputs that break the contract are written
 * to --save-crashes for triage; tests/corpus/ holds the regression set
 * replayed by test_malformed_onnx and by --corpus.
 *
 * Everything is seeded (xoshiro256**), so a run is reproducible from
 * its --seed.
 */
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/status.hpp"
#include "models/model_zoo.hpp"
#include "onnx/exporter.hpp"
#include "onnx/importer.hpp"

namespace {

using orpheus::ImportLimits;
using orpheus::Rng;
using orpheus::Status;
using orpheus::StatusCode;

struct FuzzOptions {
    std::uint64_t iterations = 50000;
    std::uint64_t seed = 0xf0220ed;
    std::string corpus_dir;       // replay-only mode when set
    std::string save_crashes_dir; // where contract violations land
    bool verbose = false;
};

/** Limits used while fuzzing: small enough that a mutant which smuggles
 *  a structurally valid huge tensor through is rejected instead of
 *  stalling the run on a gigabyte allocation. */
ImportLimits
fuzz_limits()
{
    ImportLimits limits;
    limits.max_model_bytes = std::size_t{64} << 20;  // 64 MiB
    limits.max_tensor_bytes = std::size_t{16} << 20; // 16 MiB
    limits.max_nodes = 4096;
    limits.max_initializers = 4096;
    limits.max_attributes = 64;
    limits.max_nesting_depth = 32;
    return limits;
}

std::vector<std::vector<std::uint8_t>>
build_seeds()
{
    std::vector<std::vector<std::uint8_t>> seeds;
    seeds.push_back(orpheus::export_onnx(orpheus::models::tiny_cnn()));
    seeds.push_back(orpheus::export_onnx(orpheus::models::tiny_mlp()));
    return seeds;
}

/** One mutation operator applied in place. */
void
mutate_once(std::vector<std::uint8_t> &bytes, Rng &rng)
{
    if (bytes.empty()) {
        bytes.push_back(static_cast<std::uint8_t>(rng.next_u64()));
        return;
    }
    const std::size_t size = bytes.size();
    switch (rng.uniform_int(0, 7)) {
      case 0: { // Truncate the tail.
        bytes.resize(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(size) - 1)));
        break;
      }
      case 1: { // Flip 1..16 random bits.
        const int flips = static_cast<int>(rng.uniform_int(1, 16));
        for (int i = 0; i < flips; ++i) {
            const std::size_t at = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
            bytes[at] ^= static_cast<std::uint8_t>(
                1u << rng.uniform_int(0, 7));
        }
        break;
      }
      case 2: { // Overwrite a short range with random bytes.
        const std::size_t at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
        const std::size_t len = std::min(
            size - at,
            static_cast<std::size_t>(rng.uniform_int(1, 32)));
        for (std::size_t i = 0; i < len; ++i)
            bytes[at + i] = static_cast<std::uint8_t>(rng.next_u64());
        break;
      }
      case 3: { // Insert random bytes.
        const std::size_t at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(size)));
        const int len = static_cast<int>(rng.uniform_int(1, 64));
        std::vector<std::uint8_t> chunk;
        chunk.reserve(static_cast<std::size_t>(len));
        for (int i = 0; i < len; ++i)
            chunk.push_back(static_cast<std::uint8_t>(rng.next_u64()));
        bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                     chunk.begin(), chunk.end());
        break;
      }
      case 4: { // Delete a range.
        const std::size_t at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
        const std::size_t len = std::min(
            size - at,
            static_cast<std::size_t>(rng.uniform_int(1, 64)));
        bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                    bytes.begin() + static_cast<std::ptrdiff_t>(at + len));
        break;
      }
      case 5: { // Varint/length corruption: a run of continuation bytes.
        const std::size_t at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
        const std::size_t len =
            std::min(size - at,
                     static_cast<std::size_t>(rng.uniform_int(1, 12)));
        for (std::size_t i = 0; i < len; ++i)
            bytes[at + i] = 0xFF; // dim inflation / overlong varints
        break;
      }
      case 6: { // Zero a range (kills tags and lengths).
        const std::size_t at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
        const std::size_t len = std::min(
            size - at,
            static_cast<std::size_t>(rng.uniform_int(1, 32)));
        std::memset(bytes.data() + at, 0, len);
        break;
      }
      default: { // Splice one region over another.
        const std::size_t src = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
        const std::size_t dst = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
        const std::size_t len = std::min(
            {size - src, size - dst,
             static_cast<std::size_t>(rng.uniform_int(1, 128))});
        std::memmove(bytes.data() + dst, bytes.data() + src, len);
        break;
      }
    }
}

/**
 * The contract under test. Returns true when the importer handled
 * @p bytes cleanly (success or typed Status); false when an exception
 * escaped — a contract violation.
 */
bool
check_import_contract(const std::vector<std::uint8_t> &bytes,
                      const ImportLimits &limits, Status &status_out,
                      std::string &violation_out)
{
    try {
        orpheus::Graph graph;
        status_out = orpheus::import_onnx(bytes.data(), bytes.size(), graph,
                                          nullptr, limits);
        return true;
    } catch (const std::exception &e) {
        violation_out = std::string("exception escaped import_onnx: ") +
                        e.what();
        return false;
    } catch (...) {
        violation_out = "non-std exception escaped import_onnx";
        return false;
    }
}

void
save_crash(const std::string &dir, std::uint64_t iteration,
           const std::vector<std::uint8_t> &bytes)
{
    std::filesystem::create_directories(dir);
    const std::string path =
        dir + "/crash-" + std::to_string(iteration) + ".onnx";
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    std::fprintf(stderr, "  crasher written to %s\n", path.c_str());
}

int
replay_corpus(const std::string &dir, const ImportLimits &limits)
{
    if (!std::filesystem::is_directory(dir)) {
        std::fprintf(stderr, "corpus directory not found: %s\n",
                     dir.c_str());
        return 2;
    }
    std::size_t files = 0, violations = 0;
    std::vector<std::filesystem::path> paths;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        if (entry.is_regular_file())
            paths.push_back(entry.path());
    std::sort(paths.begin(), paths.end());
    for (const auto &path : paths) {
        std::ifstream in(path, std::ios::binary);
        std::vector<std::uint8_t> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        ++files;
        Status status;
        std::string violation;
        if (!check_import_contract(bytes, limits, status, violation)) {
            ++violations;
            std::fprintf(stderr, "VIOLATION %s: %s\n", path.c_str(),
                         violation.c_str());
        } else {
            std::printf("%-40s -> %s\n", path.filename().c_str(),
                        status.to_string().c_str());
        }
    }
    std::printf("replayed %zu corpus files, %zu contract violations\n",
                files, violations);
    return violations == 0 ? 0 : 1;
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--iterations N] [--seed S] [--corpus DIR]\n"
        "          [--save-crashes DIR] [--verbose]\n"
        "\n"
        "Mutation-fuzzes the ONNX importer from model-zoo seeds. With\n"
        "--corpus, replays a directory of regression inputs instead.\n"
        "Exits non-zero if any input violates the import contract\n"
        "(exception escapes / crash) — typed Status rejections are the\n"
        "expected outcome for malformed bytes.\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    FuzzOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--iterations") {
            opts.iterations = std::stoull(next("--iterations"));
        } else if (arg == "--seed") {
            opts.seed = std::stoull(next("--seed"));
        } else if (arg == "--corpus") {
            opts.corpus_dir = next("--corpus");
        } else if (arg == "--save-crashes") {
            opts.save_crashes_dir = next("--save-crashes");
        } else if (arg == "--verbose") {
            opts.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    const ImportLimits limits = fuzz_limits();
    if (!opts.corpus_dir.empty())
        return replay_corpus(opts.corpus_dir, limits);

    const auto seeds = build_seeds();
    std::printf("fuzzing ONNX importer: %llu iterations, %zu seeds, "
                "seed 0x%llx\n",
                static_cast<unsigned long long>(opts.iterations),
                seeds.size(),
                static_cast<unsigned long long>(opts.seed));

    // Sanity: every unmutated seed must import cleanly.
    for (std::size_t s = 0; s < seeds.size(); ++s) {
        Status status;
        std::string violation;
        if (!check_import_contract(seeds[s], limits, status, violation) ||
            !status.is_ok()) {
            std::fprintf(stderr, "seed %zu does not import cleanly: %s\n",
                         s,
                         violation.empty() ? status.to_string().c_str()
                                           : violation.c_str());
            return 2;
        }
    }

    Rng rng(opts.seed);
    std::uint64_t violations = 0;
    std::uint64_t accepted = 0;
    std::map<std::string, std::uint64_t> rejections;

    for (std::uint64_t iter = 0; iter < opts.iterations; ++iter) {
        std::vector<std::uint8_t> mutant =
            seeds[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(seeds.size()) - 1))];
        const int rounds = static_cast<int>(rng.uniform_int(1, 4));
        for (int r = 0; r < rounds; ++r)
            mutate_once(mutant, rng);

        Status status;
        std::string violation;
        if (!check_import_contract(mutant, limits, status, violation)) {
            ++violations;
            std::fprintf(stderr, "iteration %llu: %s\n",
                         static_cast<unsigned long long>(iter),
                         violation.c_str());
            if (!opts.save_crashes_dir.empty())
                save_crash(opts.save_crashes_dir, iter, mutant);
            continue;
        }
        if (status.is_ok()) {
            ++accepted;
        } else {
            ++rejections[orpheus::to_string(status.code())];
            if (opts.verbose)
                std::printf("iteration %llu: %s\n",
                            static_cast<unsigned long long>(iter),
                            status.to_string().c_str());
        }
    }

    std::printf("done: %llu mutants — %llu imported, %llu rejected, "
                "%llu contract violations\n",
                static_cast<unsigned long long>(opts.iterations),
                static_cast<unsigned long long>(accepted),
                static_cast<unsigned long long>(opts.iterations - accepted -
                                                violations),
                static_cast<unsigned long long>(violations));
    for (const auto &[code, count] : rejections)
        std::printf("  %-18s %llu\n", code.c_str(),
                    static_cast<unsigned long long>(count));
    return violations == 0 ? 0 : 1;
}
