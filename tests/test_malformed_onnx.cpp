/**
 * @file
 * Malformed / adversarial ONNX ingestion tests.
 *
 * Model bytes are untrusted input; the import contract is that ANY byte
 * sequence either imports successfully or is rejected with a typed
 * Status — kParseError for structurally broken input, kOutOfRange for
 * input exceeding ImportLimits — and never aborts, throws past the API
 * boundary, or triggers an undersized allocation. Each test here crafts
 * one hostile pattern with the wire-format Writer (or raw bytes) and
 * asserts the expected StatusCode; merely completing without a crash is
 * half the assertion.
 */
#include "onnx/importer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "core/rng.hpp"
#include "models/model_zoo.hpp"
#include "onnx/exporter.hpp"
#include "onnx/proto.hpp"
#include "onnx/schema.hpp"

namespace orpheus {
namespace {

namespace schema = onnx_schema;

Status
import_bytes(const std::vector<std::uint8_t> &bytes,
             const ImportLimits &limits = {})
{
    Graph graph;
    return import_onnx(bytes.data(), bytes.size(), graph, nullptr, limits);
}

/** Wraps a serialised GraphProto in a minimal ModelProto. */
std::vector<std::uint8_t>
model_with_graph(const proto::Writer &graph)
{
    proto::Writer model;
    model.write_varint_field(schema::kModelIrVersion, 7);
    model.write_message_field(schema::kModelGraph, graph);
    return model.bytes();
}

/** ValueInfoProto for a fp32 tensor with the given dims. */
proto::Writer
value_info(const std::string &name, const std::vector<std::int64_t> &dims)
{
    proto::Writer info;
    info.write_string_field(schema::kValueInfoName, name);
    proto::Writer shape;
    for (std::int64_t d : dims) {
        proto::Writer dim;
        dim.write_int64_field(schema::kDimValue, d);
        shape.write_message_field(schema::kShapeDim, dim);
    }
    proto::Writer tensor_type;
    tensor_type.write_varint_field(
        schema::kTensorTypeElemType,
        static_cast<std::uint64_t>(schema::TensorDataType::kFloat));
    tensor_type.write_message_field(schema::kTensorTypeShape, shape);
    proto::Writer type;
    type.write_message_field(schema::kTypeTensorType, tensor_type);
    info.write_message_field(schema::kValueInfoType, type);
    return info;
}

/** TensorProto with explicit dims, fp32 dtype and raw data bytes. */
proto::Writer
raw_tensor(const std::string &name, const std::vector<std::int64_t> &dims,
           const std::vector<std::uint8_t> &raw)
{
    proto::Writer tensor;
    for (std::int64_t d : dims)
        tensor.write_int64_field(schema::kTensorDims, d);
    tensor.write_varint_field(
        schema::kTensorDataType,
        static_cast<std::uint64_t>(schema::TensorDataType::kFloat));
    tensor.write_string_field(schema::kTensorName, name);
    tensor.write_bytes_field(schema::kTensorRawData, raw.data(), raw.size());
    return tensor;
}

/** NodeProto. */
proto::Writer
node(const std::string &op_type, const std::vector<std::string> &inputs,
     const std::vector<std::string> &outputs)
{
    proto::Writer n;
    for (const std::string &in : inputs)
        n.write_string_field(schema::kNodeInput, in);
    for (const std::string &out : outputs)
        n.write_string_field(schema::kNodeOutput, out);
    n.write_string_field(schema::kNodeOpType, op_type);
    return n;
}

/** A well-formed single-Relu model the limit tests tighten around. */
std::vector<std::uint8_t>
valid_relu_model()
{
    proto::Writer graph;
    graph.write_string_field(schema::kGraphName, "m");
    graph.write_message_field(schema::kGraphNode,
                              node("Relu", {"x"}, {"y"}));
    graph.write_message_field(schema::kGraphInput, value_info("x", {1, 4}));
    graph.write_message_field(schema::kGraphOutput, value_info("y", {1, 4}));
    return model_with_graph(graph);
}

// --- Wire-level corruption ------------------------------------------------

TEST(MalformedOnnx, TruncatedVarint)
{
    const std::vector<std::uint8_t> bytes = {0x80};
    EXPECT_EQ(import_bytes(bytes).code(), StatusCode::kParseError);
}

TEST(MalformedOnnx, OverlongVarint)
{
    // Field 1, varint wire type, 11 continuation bytes (> 64 bits).
    std::vector<std::uint8_t> bytes = {0x08};
    bytes.insert(bytes.end(), 11, 0xFF);
    EXPECT_EQ(import_bytes(bytes).code(), StatusCode::kParseError);
}

TEST(MalformedOnnx, BadWireType)
{
    // Field 1 with (unsupported, deprecated group) wire type 3.
    const std::vector<std::uint8_t> bytes = {0x0B};
    EXPECT_EQ(import_bytes(bytes).code(), StatusCode::kParseError);
}

TEST(MalformedOnnx, LengthDelimitedFieldOverrunsBuffer)
{
    // kModelGraph claims a 2^60-byte payload with nothing behind it.
    std::vector<std::uint8_t> bytes = {
        static_cast<std::uint8_t>((schema::kModelGraph << 3) | 2)};
    for (int i = 0; i < 8; ++i)
        bytes.push_back(0x80 | 0x7F);
    bytes.push_back(0x10);
    EXPECT_EQ(import_bytes(bytes).code(), StatusCode::kParseError);
}

TEST(MalformedOnnx, EmptyInputHasNoGraph)
{
    EXPECT_EQ(import_bytes({}).code(), StatusCode::kParseError);
}

// --- Hostile tensor shapes ------------------------------------------------

TEST(MalformedOnnx, NegativeInitializerDim)
{
    proto::Writer graph;
    graph.write_message_field(schema::kGraphInitializer,
                              raw_tensor("w", {-1, 4}, {}));
    EXPECT_EQ(import_bytes(model_with_graph(graph)).code(),
              StatusCode::kParseError);
}

TEST(MalformedOnnx, DimProductOverflowsInt64)
{
    // (2^40)^3 = 2^120 overflows; the seed importer would have computed
    // a wrapped element count and sized the allocation from it.
    const std::int64_t big = std::int64_t{1} << 40;
    proto::Writer graph;
    graph.write_message_field(schema::kGraphInitializer,
                              raw_tensor("w", {big, big, big}, {}));
    EXPECT_EQ(import_bytes(model_with_graph(graph)).code(),
              StatusCode::kOutOfRange);
}

TEST(MalformedOnnx, DimProductWrapsToZero)
{
    // 2^32 * 2^32 wraps to exactly 0 in unchecked int64 arithmetic: the
    // nastiest case, because a wrapped "empty" tensor sails through
    // size checks while claiming a 10^19-element shape.
    const std::int64_t big = std::int64_t{1} << 32;
    proto::Writer graph;
    graph.write_message_field(schema::kGraphInitializer,
                              raw_tensor("w", {big, big}, {}));
    EXPECT_EQ(import_bytes(model_with_graph(graph)).code(),
              StatusCode::kOutOfRange);
}

TEST(MalformedOnnx, TensorBytesBeyondLimit)
{
    ImportLimits limits;
    limits.max_tensor_bytes = 1024;
    proto::Writer graph;
    // 1024 floats = 4096 bytes > the 1024-byte cap.
    graph.write_message_field(
        schema::kGraphInitializer,
        raw_tensor("w", {1024}, std::vector<std::uint8_t>(4096, 0)));
    EXPECT_EQ(import_bytes(model_with_graph(graph), limits).code(),
              StatusCode::kOutOfRange);
}

TEST(MalformedOnnx, RawDataSizeMismatch)
{
    proto::Writer graph;
    graph.write_message_field(schema::kGraphInitializer,
                              raw_tensor("w", {2, 2}, {0xAA, 0xBB, 0xCC}));
    EXPECT_EQ(import_bytes(model_with_graph(graph)).code(),
              StatusCode::kParseError);
}

TEST(MalformedOnnx, HugeGraphInputShape)
{
    const std::int64_t big = std::int64_t{1} << 40;
    proto::Writer graph;
    graph.write_message_field(schema::kGraphNode, node("Relu", {"x"}, {"y"}));
    graph.write_message_field(schema::kGraphInput,
                              value_info("x", {big, big}));
    graph.write_message_field(schema::kGraphOutput,
                              value_info("y", {big, big}));
    EXPECT_EQ(import_bytes(model_with_graph(graph)).code(),
              StatusCode::kOutOfRange);
}

TEST(MalformedOnnx, SymbolicGraphInputShapeRejected)
{
    proto::Writer graph;
    graph.write_message_field(schema::kGraphNode, node("Relu", {"x"}, {"y"}));
    graph.write_message_field(schema::kGraphInput, value_info("x", {1, 0}));
    graph.write_message_field(schema::kGraphOutput, value_info("y", {1, 0}));
    EXPECT_EQ(import_bytes(model_with_graph(graph)).code(),
              StatusCode::kParseError);
}

// --- Graph-structure corruption -------------------------------------------

TEST(MalformedOnnx, DanglingNodeInput)
{
    proto::Writer graph;
    graph.write_message_field(schema::kGraphNode,
                              node("Relu", {"not_a_value"}, {"y"}));
    graph.write_message_field(schema::kGraphOutput, value_info("y", {1, 4}));
    EXPECT_EQ(import_bytes(model_with_graph(graph)).code(),
              StatusCode::kParseError);
}

TEST(MalformedOnnx, DuplicateInitializer)
{
    const std::vector<std::uint8_t> four_floats(16, 0);
    proto::Writer graph;
    graph.write_message_field(schema::kGraphInitializer,
                              raw_tensor("w", {4}, four_floats));
    graph.write_message_field(schema::kGraphInitializer,
                              raw_tensor("w", {4}, four_floats));
    EXPECT_EQ(import_bytes(model_with_graph(graph)).code(),
              StatusCode::kParseError);
}

TEST(MalformedOnnx, NodeWithoutOpType)
{
    proto::Writer bad_node;
    bad_node.write_string_field(schema::kNodeInput, "x");
    bad_node.write_string_field(schema::kNodeOutput, "y");
    proto::Writer graph;
    graph.write_message_field(schema::kGraphNode, bad_node);
    EXPECT_EQ(import_bytes(model_with_graph(graph)).code(),
              StatusCode::kParseError);
}

TEST(MalformedOnnx, AttributeWithoutName)
{
    proto::Writer attr;
    attr.write_varint_field(
        schema::kAttrType,
        static_cast<std::uint64_t>(schema::AttrType::kInt));
    attr.write_varint_field(schema::kAttrInt, 1);
    proto::Writer bad_node = node("Relu", {"x"}, {"y"});
    bad_node.write_message_field(schema::kNodeAttribute, attr);
    proto::Writer graph;
    graph.write_message_field(schema::kGraphNode, bad_node);
    graph.write_message_field(schema::kGraphInput, value_info("x", {1, 4}));
    graph.write_message_field(schema::kGraphOutput, value_info("y", {1, 4}));
    EXPECT_EQ(import_bytes(model_with_graph(graph)).code(),
              StatusCode::kParseError);
}

TEST(MalformedOnnx, UnsupportedTensorDtype)
{
    proto::Writer tensor;
    tensor.write_int64_field(schema::kTensorDims, 1);
    tensor.write_varint_field(schema::kTensorDataType, 999);
    tensor.write_string_field(schema::kTensorName, "w");
    proto::Writer graph;
    graph.write_message_field(schema::kGraphInitializer, tensor);
    EXPECT_EQ(import_bytes(model_with_graph(graph)).code(),
              StatusCode::kParseError);
}

// --- ImportLimits enforcement ---------------------------------------------

TEST(MalformedOnnx, ModelBytesBeyondLimit)
{
    ImportLimits limits;
    limits.max_model_bytes = 8;
    const Status status = import_bytes(valid_relu_model(), limits);
    EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
}

TEST(MalformedOnnx, NodeCountBeyondLimit)
{
    ImportLimits limits;
    limits.max_nodes = 1;
    proto::Writer graph;
    graph.write_message_field(schema::kGraphNode, node("Relu", {"x"}, {"t"}));
    graph.write_message_field(schema::kGraphNode, node("Relu", {"t"}, {"y"}));
    graph.write_message_field(schema::kGraphInput, value_info("x", {1, 4}));
    graph.write_message_field(schema::kGraphOutput, value_info("y", {1, 4}));
    EXPECT_EQ(import_bytes(model_with_graph(graph), limits).code(),
              StatusCode::kOutOfRange);
}

TEST(MalformedOnnx, AttributeCountBeyondLimit)
{
    ImportLimits limits;
    limits.max_attributes = 1;
    proto::Writer n = node("Relu", {"x"}, {"y"});
    for (int i = 0; i < 2; ++i) {
        proto::Writer attr;
        attr.write_string_field(schema::kAttrName, "a" + std::to_string(i));
        attr.write_varint_field(
            schema::kAttrType,
            static_cast<std::uint64_t>(schema::AttrType::kInt));
        attr.write_varint_field(schema::kAttrInt, 1);
        n.write_message_field(schema::kNodeAttribute, attr);
    }
    proto::Writer graph;
    graph.write_message_field(schema::kGraphNode, n);
    graph.write_message_field(schema::kGraphInput, value_info("x", {1, 4}));
    graph.write_message_field(schema::kGraphOutput, value_info("y", {1, 4}));
    EXPECT_EQ(import_bytes(model_with_graph(graph), limits).code(),
              StatusCode::kOutOfRange);
}

TEST(MalformedOnnx, NestingDepthBeyondLimit)
{
    ImportLimits limits;
    limits.max_nesting_depth = 1; // graph is depth 1; its nodes are 2.
    EXPECT_EQ(import_bytes(valid_relu_model(), limits).code(),
              StatusCode::kOutOfRange);
}

TEST(MalformedOnnx, DefaultLimitsAcceptZooModels)
{
    Graph graph;
    const Status status =
        import_onnx(export_onnx(models::tiny_cnn()), graph);
    EXPECT_TRUE(status.is_ok()) << status.to_string();
}

// --- Reader depth guard (unit) --------------------------------------------

TEST(MalformedOnnx, ReaderSubReaderDepthGuard)
{
    proto::Writer inner;
    inner.write_varint_field(1, 42);
    proto::Writer outer;
    outer.write_message_field(1, inner);

    proto::Reader reader(outer.bytes().data(), outer.bytes().size(),
                         /*max_depth=*/0);
    proto::WireType wire;
    reader.read_tag(wire);
    EXPECT_THROW(reader.sub_reader(), LimitError);
}

// --- Regression corpus ----------------------------------------------------

/** Every committed corpus file must be rejected with a typed Status —
 *  no exception may escape and no abort may fire. */
TEST(MalformedOnnx, RegressionCorpusRejectsCleanly)
{
    const std::filesystem::path dir = ORPHEUS_TEST_CORPUS_DIR;
    ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
    std::size_t files = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".onnx")
            continue;
        ++files;
        std::ifstream in(entry.path(), std::ios::binary);
        std::vector<std::uint8_t> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        Status status;
        ASSERT_NO_THROW(status = import_bytes(bytes)) << entry.path();
        EXPECT_FALSE(status.is_ok()) << entry.path();
    }
    EXPECT_GT(files, 0u) << "corpus directory is empty";
}

// --- Deterministic mini-fuzz ----------------------------------------------

/** A small in-test slice of what tools/orpheus_fuzz does at scale:
 *  every mutant must import or be rejected via Status, never throw. */
TEST(MalformedOnnx, MutatedZooModelsNeverEscapeStatus)
{
    const std::vector<std::uint8_t> seed =
        export_onnx(models::tiny_mlp());
    Rng rng(0xbadc0de);
    for (int iter = 0; iter < 500; ++iter) {
        std::vector<std::uint8_t> mutant = seed;
        const int flips = static_cast<int>(rng.uniform_int(1, 12));
        for (int i = 0; i < flips; ++i) {
            const auto at = static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(mutant.size()) - 1));
            mutant[at] ^=
                static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
        }
        if (rng.uniform_int(0, 3) == 0)
            mutant.resize(static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(mutant.size()) - 1)));
        EXPECT_NO_THROW((void)import_bytes(mutant)) << "iteration " << iter;
    }
}

} // namespace
} // namespace orpheus
