/**
 * @file
 * Fault-injection tests for the engine's kernel-fallback policy.
 *
 * A FaultInjector makes an optimised kernel throw exactly where a
 * misbehaving backend would; the engine must degrade the step to the
 * reference implementation and keep producing correct results. Because
 * every kernel is deterministic, a degraded run must match a run pinned
 * to the reference kernel bit for bit — not merely within tolerance.
 */
#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "core/rng.hpp"
#include "models/model_zoo.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::expect_close;
using testing::make_random;

// --- FaultInjector semantics ----------------------------------------------

TEST(FaultInjector, UnarmedNeverFails)
{
    FaultInjector injector;
    EXPECT_FALSE(injector.should_fail("conv1", "im2col_gemm"));
    EXPECT_EQ(injector.calls_seen(), 0);
    EXPECT_EQ(injector.faults_injected(), 0);
}

TEST(FaultInjector, MatchesNodeAndImplPatterns)
{
    FaultInjector injector;
    injector.arm("conv1", "im2col_gemm");
    EXPECT_FALSE(injector.should_fail("conv2", "im2col_gemm"));
    EXPECT_FALSE(injector.should_fail("conv1", "direct"));
    EXPECT_TRUE(injector.should_fail("conv1", "im2col_gemm"));
    EXPECT_EQ(injector.calls_seen(), 1);
    EXPECT_EQ(injector.faults_injected(), 1);
}

TEST(FaultInjector, FailFromCallSkipsEarlierInvocations)
{
    FaultInjector injector;
    injector.arm("", "", /*fail_from_call=*/2);
    EXPECT_FALSE(injector.should_fail("n", "a"));
    EXPECT_FALSE(injector.should_fail("n", "a"));
    EXPECT_TRUE(injector.should_fail("n", "a"));
    EXPECT_EQ(injector.calls_seen(), 3);
    EXPECT_EQ(injector.faults_injected(), 1);
}

TEST(FaultInjector, MaxFaultsCapsInjections)
{
    FaultInjector injector;
    injector.arm("", "", 0, /*max_faults=*/1);
    EXPECT_TRUE(injector.should_fail("n", "a"));
    EXPECT_FALSE(injector.should_fail("n", "a"));
    EXPECT_EQ(injector.faults_injected(), 1);
}

TEST(FaultInjector, ResetDisarms)
{
    FaultInjector injector;
    injector.arm("", "");
    EXPECT_TRUE(injector.should_fail("n", "a"));
    injector.reset();
    EXPECT_FALSE(injector.should_fail("n", "a"));
    EXPECT_EQ(injector.calls_seen(), 0);
    EXPECT_EQ(injector.faults_injected(), 0);
}

// --- Delay (slow/hung kernel) injection -----------------------------------

TEST(FaultInjector, DelayUnarmedReturnsZero)
{
    FaultInjector injector;
    EXPECT_EQ(injector.delay_ms("conv1", "im2col_gemm"), 0.0);
    EXPECT_EQ(injector.delay_calls_seen(), 0);
    EXPECT_EQ(injector.delays_injected(), 0);
}

TEST(FaultInjector, DelayMatchesPatternsIndependentlyOfFaults)
{
    FaultInjector injector;
    injector.arm_delay("conv1", "im2col_gemm", 25.0);
    EXPECT_EQ(injector.delay_ms("conv2", "im2col_gemm"), 0.0);
    EXPECT_EQ(injector.delay_ms("conv1", "direct"), 0.0);
    EXPECT_EQ(injector.delay_ms("conv1", "im2col_gemm"), 25.0);
    EXPECT_EQ(injector.delay_calls_seen(), 1);
    EXPECT_EQ(injector.delays_injected(), 1);
    // Delay arming does not fault anything.
    EXPECT_FALSE(injector.should_fail("conv1", "im2col_gemm"));
}

TEST(FaultInjector, DelayFromCallAndCapHonoured)
{
    FaultInjector injector;
    injector.arm_delay("", "", 10.0, /*delay_from_call=*/1,
                       /*max_delays=*/1);
    EXPECT_EQ(injector.delay_ms("n", "a"), 0.0);  // ordinal 0: skipped
    EXPECT_EQ(injector.delay_ms("n", "a"), 10.0); // ordinal 1: delayed
    EXPECT_EQ(injector.delay_ms("n", "a"), 0.0);  // cap reached
    EXPECT_EQ(injector.delays_injected(), 1);
    injector.reset();
    EXPECT_EQ(injector.delay_ms("n", "a"), 0.0);
    EXPECT_EQ(injector.delay_calls_seen(), 0);
}

/** An injected delay slows the step but the run still completes and
 *  stays bitwise-correct when no deadline is attached. */
TEST(EngineFaultTolerance, InjectedDelayCompletesWithoutDeadline)
{
    EngineOptions options;
    options.fault_injector = std::make_shared<FaultInjector>();
    options.fault_injector->arm_delay("", "", 30.0, 0, /*max_delays=*/1);
    Engine delayed(models::tiny_cnn(), options);
    Engine reference(models::tiny_cnn(), {});

    Tensor input = make_random(Shape({1, 3, 8, 8}), 0xfa0a);
    const auto started = std::chrono::steady_clock::now();
    const Tensor slow = delayed.run(input);
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - started;

    EXPECT_GE(elapsed.count(), 30.0);
    EXPECT_EQ(options.fault_injector->delays_injected(), 1);
    EXPECT_EQ(max_abs_diff(slow, reference.run(input)), 0.0f);
    // No step degraded: a slow kernel is not a faulty kernel.
    for (const PlanStep &step : delayed.steps()) {
        EXPECT_FALSE(step.degraded) << step.node_name;
    }
}

// --- Engine fallback: bitwise-identical degradation -----------------------

/** Every Conv kernel fails -> every conv degrades to "direct"; the run
 *  must match an engine pinned to Conv="direct" exactly. */
TEST(EngineFaultTolerance, ConvFallsBackToReferenceBitwise)
{
    EngineOptions injected_options;
    injected_options.backend.forced_impl["Conv"] = "im2col_gemm";
    injected_options.fault_injector = std::make_shared<FaultInjector>();
    injected_options.fault_injector->arm("", "im2col_gemm");
    Engine injected(models::tiny_cnn(), injected_options);

    EngineOptions reference_options;
    reference_options.backend.forced_impl["Conv"] = "direct";
    Engine reference(models::tiny_cnn(), reference_options);

    Tensor input = make_random(Shape({1, 3, 8, 8}), 0xfa01);
    const Tensor degraded = injected.run(input);
    const Tensor expected = reference.run(input);

    EXPECT_EQ(max_abs_diff(degraded, expected), 0.0f);
    EXPECT_GE(injected_options.fault_injector->faults_injected(), 2);

    int degraded_convs = 0;
    for (const PlanStep &step : injected.steps()) {
        if (step.op_type != op_names::kConv)
            continue;
        EXPECT_TRUE(step.degraded) << step.node_name;
        EXPECT_EQ(step.layer->impl_name(), "direct") << step.node_name;
        ++degraded_convs;
    }
    EXPECT_GE(degraded_convs, 2);
}

/** The degraded step keeps its fallback kernel: a second run re-uses it
 *  without new faults and still matches the reference bitwise. */
TEST(EngineFaultTolerance, DegradationPersistsAcrossRuns)
{
    EngineOptions options;
    options.backend.forced_impl["Conv"] = "im2col_gemm";
    options.fault_injector = std::make_shared<FaultInjector>();
    options.fault_injector->arm("", "im2col_gemm");
    Engine engine(models::tiny_cnn(), options);

    Tensor input = make_random(Shape({1, 3, 8, 8}), 0xfa02);
    const Tensor first = engine.run(input);
    const std::int64_t faults_after_first =
        options.fault_injector->faults_injected();
    const Tensor second = engine.run(input);

    EXPECT_EQ(max_abs_diff(first, second), 0.0f);
    // The fallback kernels are named "direct", so the armed pattern no
    // longer matches anything.
    EXPECT_EQ(options.fault_injector->faults_injected(),
              faults_after_first);
}

Graph
matmul_graph()
{
    Graph graph("mm");
    graph.add_input("x", Shape({4, 8}));
    Rng rng(0xfa03);
    graph.add_initializer("w", random_tensor(Shape({8, 5}), rng));
    graph.add_node(op_names::kMatMul, {"x", "w"}, {"y"});
    graph.add_output("y");
    return graph;
}

/** The third-party (minnl) MatMul backend fails -> reference fallback,
 *  again bitwise-identical to an engine pinned to the reference. */
TEST(EngineFaultTolerance, ThirdPartyMatMulFallsBackToReferenceBitwise)
{
    EngineOptions injected_options;
    injected_options.backend.forced_impl["MatMul"] = "minnl";
    injected_options.fault_injector = std::make_shared<FaultInjector>();
    injected_options.fault_injector->arm("", "minnl");
    Engine injected(matmul_graph(), injected_options);

    EngineOptions reference_options;
    reference_options.backend.forced_impl["MatMul"] = "reference";
    Engine reference(matmul_graph(), reference_options);

    Tensor input = make_random(Shape({4, 8}), 0xfa04);
    const Tensor degraded = injected.run(input);
    const Tensor expected = reference.run(input);

    EXPECT_EQ(max_abs_diff(degraded, expected), 0.0f);
    EXPECT_EQ(injected_options.fault_injector->faults_injected(), 1);
    ASSERT_EQ(injected.steps().size(), 1u);
    EXPECT_TRUE(injected.steps().front().degraded);
    EXPECT_EQ(injected.steps().front().layer->impl_name(), "reference");
}

/** Every registered non-reference Conv backend, forced and then failed,
 *  must land on the same reference result bit for bit. */
TEST(EngineFaultTolerance, EveryConvBackendFallsBackToReferenceBitwise)
{
    EngineOptions reference_options;
    reference_options.backend.forced_impl["Conv"] = "direct";
    Engine reference(models::tiny_cnn(), reference_options);
    Tensor input = make_random(Shape({1, 3, 8, 8}), 0xfa09);
    const Tensor expected = reference.run(input);

    for (const std::string impl :
         {"im2col_gemm", "spatial_pack", "winograd", "minnl"}) {
        EngineOptions options;
        options.backend.allow_winograd = true; // 3x3/s1 convs qualify.
        options.backend.forced_impl["Conv"] = impl;
        options.fault_injector = std::make_shared<FaultInjector>();
        options.fault_injector->arm("", impl);
        Engine injected(models::tiny_cnn(), options);

        const Tensor degraded = injected.run(input);
        EXPECT_EQ(max_abs_diff(degraded, expected), 0.0f) << impl;
        EXPECT_GE(options.fault_injector->faults_injected(), 1) << impl;
        for (const PlanStep &step : injected.steps()) {
            if (step.op_type == op_names::kConv) {
                EXPECT_EQ(step.layer->impl_name(), "direct") << impl;
            }
        }
    }
}

/** A fault striking mid-run (second conv only) still completes with a
 *  numerically valid result. */
TEST(EngineFaultTolerance, MidRunFaultDegradesOnlyTheFailingStep)
{
    EngineOptions options;
    options.backend.forced_impl["Conv"] = "im2col_gemm";
    options.fault_injector = std::make_shared<FaultInjector>();
    options.fault_injector->arm("", "im2col_gemm", /*fail_from_call=*/1,
                                /*max_faults=*/1);
    Engine injected(models::tiny_cnn(), options);

    EngineOptions clean_options;
    clean_options.backend.forced_impl["Conv"] = "im2col_gemm";
    Engine clean(models::tiny_cnn(), clean_options);

    Tensor input = make_random(Shape({1, 3, 8, 8}), 0xfa05);
    const Tensor degraded = injected.run(input);
    expect_close(degraded, clean.run(input), 1e-4f, 1e-3f);

    int degraded_steps = 0;
    for (const PlanStep &step : injected.steps())
        degraded_steps += step.degraded ? 1 : 0;
    EXPECT_EQ(degraded_steps, 1);
}

// --- Policy off / no fallback available -----------------------------------

TEST(EngineFaultTolerance, FallbackDisabledPropagatesKernelFault)
{
    EngineOptions options;
    options.fallback_on_kernel_fault = false;
    options.fault_injector = std::make_shared<FaultInjector>();
    options.fault_injector->arm("", "");
    Engine engine(models::tiny_cnn(), options);

    Tensor input = make_random(Shape({1, 3, 8, 8}), 0xfa06);
    EXPECT_THROW(engine.run(input), KernelFault);
}

/** With the SIMD tier disabled, Gemm has only the reference
 *  implementation registered, so a fault there has nowhere to fall
 *  back to and must surface as an Error. */
TEST(EngineFaultTolerance, NoFallbackAvailableRaisesError)
{
    auto injector = std::make_shared<FaultInjector>();
    EngineOptions options;
    options.backend.allow_simd = false;
    options.fault_injector = injector;
    Engine engine(models::tiny_mlp(), options);

    std::string gemm_node;
    for (const PlanStep &step : engine.steps()) {
        if (step.op_type == op_names::kGemm) {
            gemm_node = step.node_name;
            break;
        }
    }
    ASSERT_FALSE(gemm_node.empty()) << engine.plan_summary();
    injector->arm(gemm_node, "");

    Tensor input = make_random(Shape({1, 32}), 0xfa07);
    EXPECT_THROW(engine.run(input), Error);

    // The non-throwing boundary reports the same failure as kInternal.
    injector->reset();
    injector->arm(gemm_node, "");
    std::map<std::string, Tensor> outputs;
    const Status status = engine.try_run({{"input", input}}, outputs);
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_TRUE(outputs.empty());
}

// --- try_run / validate_inputs --------------------------------------------

TEST(EngineTryRun, MissingInputIsInvalidArgumentNamingTheInput)
{
    Engine engine(models::tiny_cnn());
    std::map<std::string, Tensor> outputs;
    const Status status = engine.try_run({}, outputs);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("input"), std::string::npos)
        << status.to_string();
}

TEST(EngineTryRun, WrongShapeIsInvalidArgument)
{
    Engine engine(models::tiny_cnn());
    std::map<std::string, Tensor> outputs;
    const Status status = engine.try_run(
        {{"input", make_random(Shape({1, 3, 9, 9}))}}, outputs);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("shape"), std::string::npos)
        << status.to_string();
}

TEST(EngineTryRun, WrongDtypeIsInvalidArgument)
{
    Engine engine(models::tiny_cnn());
    std::map<std::string, Tensor> outputs;
    const Status status = engine.try_run(
        {{"input", Tensor(Shape({1, 3, 8, 8}), DataType::kInt32)}},
        outputs);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("dtype"), std::string::npos)
        << status.to_string();
}

TEST(EngineTryRun, SucceedsAndMatchesThrowingRun)
{
    Engine engine(models::tiny_cnn());
    Tensor input = make_random(Shape({1, 3, 8, 8}), 0xfa08);
    std::map<std::string, Tensor> outputs;
    const Status status = engine.try_run({{"input", input}}, outputs);
    ASSERT_TRUE(status.is_ok()) << status.to_string();
    ASSERT_EQ(outputs.size(), 1u);
    EXPECT_EQ(max_abs_diff(outputs.begin()->second, engine.run(input)),
              0.0f);
}

TEST(EngineTryRun, ValidateInputsAcceptsDeclaredSignature)
{
    Engine engine(models::tiny_cnn());
    const Status status = engine.validate_inputs(
        {{"input", make_random(Shape({1, 3, 8, 8}))}});
    EXPECT_TRUE(status.is_ok()) << status.to_string();
}

} // namespace
} // namespace orpheus
