/** @file Unit tests for the Graph IR. */
#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace orpheus {
namespace {

Graph
linear_graph()
{
    Graph graph("linear");
    graph.add_input("x", Shape({1, 4}));
    graph.add_node(op_names::kRelu, {"x"}, {"a"});
    graph.add_node(op_names::kRelu, {"a"}, {"b"});
    graph.add_output("b", Shape({1, 4}));
    return graph;
}

TEST(Graph, BasicConstruction)
{
    Graph graph = linear_graph();
    EXPECT_EQ(graph.inputs().size(), 1u);
    EXPECT_EQ(graph.outputs().size(), 1u);
    EXPECT_EQ(graph.nodes().size(), 2u);
    EXPECT_NO_THROW(graph.validate());
    EXPECT_TRUE(graph.is_graph_input("x"));
    EXPECT_FALSE(graph.is_graph_input("a"));
    EXPECT_TRUE(graph.is_graph_output("b"));
}

TEST(Graph, AutoNamesAreUnique)
{
    Graph graph("g");
    graph.add_input("x", Shape({1}));
    Node &n1 = graph.add_node(op_names::kRelu, {"x"}, {"a"});
    const std::string name1 = n1.name();
    Node &n2 = graph.add_node(op_names::kRelu, {"a"}, {"b"});
    EXPECT_NE(name1, n2.name());
}

TEST(Graph, DuplicateNamesRejected)
{
    Graph graph("g");
    graph.add_input("x", Shape({1}));
    EXPECT_THROW(graph.add_input("x", Shape({2})), Error);
    graph.add_initializer("w", Tensor(Shape({1})));
    EXPECT_THROW(graph.add_initializer("w", Tensor(Shape({1}))), Error);
    graph.add_output("y");
    EXPECT_THROW(graph.add_output("y"), Error);
}

TEST(Graph, InitializerAccess)
{
    Graph graph("g");
    graph.add_initializer("w", Tensor::from_values(Shape({2}), {1, 2}));
    EXPECT_TRUE(graph.has_initializer("w"));
    EXPECT_EQ(graph.initializer("w").numel(), 2);
    EXPECT_THROW(graph.initializer("v"), Error);
    graph.remove_initializer("w");
    EXPECT_FALSE(graph.has_initializer("w"));
}

TEST(Graph, ProducerAndConsumers)
{
    Graph graph = linear_graph();
    auto producer_a = graph.producer("a");
    ASSERT_TRUE(producer_a.has_value());
    EXPECT_EQ(*producer_a, 0u);
    EXPECT_FALSE(graph.producer("x").has_value());

    const auto consumers_a = graph.consumers("a");
    ASSERT_EQ(consumers_a.size(), 1u);
    EXPECT_EQ(consumers_a[0], 1u);
    EXPECT_TRUE(graph.consumers("b").empty());
}

TEST(Graph, TopologicalOrderOnDiamond)
{
    // x -> a; a -> l, a -> r; (l, r) -> out. Insert in scrambled order.
    Graph graph("diamond");
    graph.add_input("x", Shape({1}));
    graph.add_node(op_names::kAdd, {"l", "r"}, {"out"}, {}, "join");
    graph.add_node(op_names::kRelu, {"a"}, {"l"}, {}, "left");
    graph.add_node(op_names::kRelu, {"x"}, {"a"}, {}, "head");
    graph.add_node(op_names::kRelu, {"a"}, {"r"}, {}, "right");
    graph.add_output("out");

    const auto order = graph.topological_order();
    ASSERT_EQ(order.size(), 4u);
    std::vector<std::size_t> position(4);
    for (std::size_t i = 0; i < order.size(); ++i)
        position[order[i]] = i;
    // head(2) before left(1)/right(3), both before join(0).
    EXPECT_LT(position[2], position[1]);
    EXPECT_LT(position[2], position[3]);
    EXPECT_LT(position[1], position[0]);
    EXPECT_LT(position[3], position[0]);
}

TEST(Graph, CycleDetected)
{
    Graph graph("cycle");
    graph.add_input("x", Shape({1}));
    graph.add_node(op_names::kAdd, {"x", "b"}, {"a"});
    graph.add_node(op_names::kRelu, {"a"}, {"b"});
    graph.add_output("b");
    EXPECT_THROW(graph.topological_order(), Error);
    EXPECT_THROW(graph.validate(), Error);
}

TEST(Graph, ValidateCatchesUndefinedInput)
{
    Graph graph("bad");
    graph.add_input("x", Shape({1}));
    graph.add_node(op_names::kRelu, {"ghost"}, {"y"});
    graph.add_output("y");
    EXPECT_THROW(graph.validate(), Error);
}

TEST(Graph, ValidateCatchesDoubleProduction)
{
    Graph graph("bad");
    graph.add_input("x", Shape({1}));
    graph.add_node(op_names::kRelu, {"x"}, {"y"});
    graph.add_node(op_names::kRelu, {"x"}, {"y"});
    graph.add_output("y");
    EXPECT_THROW(graph.validate(), Error);
}

TEST(Graph, ValidateCatchesMissingOutput)
{
    Graph graph("bad");
    graph.add_input("x", Shape({1}));
    graph.add_node(op_names::kRelu, {"x"}, {"y"});
    graph.add_output("z");
    EXPECT_THROW(graph.validate(), Error);
}

TEST(Graph, ValidateAllowsOptionalEmptyInput)
{
    Graph graph("optional");
    graph.add_input("x", Shape({1, 1, 4, 4}));
    graph.add_initializer("w", Tensor(Shape({1, 1, 3, 3})));
    AttributeMap attrs;
    attrs.set("kernel_shape", std::vector<std::int64_t>{3, 3});
    // Conv with explicit inputs (x, w) and no bias entry at all.
    graph.add_node(op_names::kConv, {"x", "w"}, {"y"}, std::move(attrs));
    graph.add_output("y");
    EXPECT_NO_THROW(graph.validate());
}

TEST(Graph, ReplaceAllUsesRewritesInputsAndOutputs)
{
    Graph graph = linear_graph();
    graph.replace_all_uses("a", "x");
    EXPECT_EQ(graph.nodes()[1].input(0), "x");
    graph.replace_all_uses("b", "a");
    EXPECT_TRUE(graph.is_graph_output("a"));
}

TEST(Graph, RemoveNodes)
{
    Graph graph = linear_graph();
    graph.remove_nodes({0});
    ASSERT_EQ(graph.nodes().size(), 1u);
    EXPECT_EQ(graph.nodes()[0].output(0), "b");
    graph.remove_nodes({});
    EXPECT_EQ(graph.nodes().size(), 1u);
}

TEST(Graph, UniqueValueNames)
{
    Graph graph("g");
    const std::string a = graph.unique_value_name("tmp");
    const std::string b = graph.unique_value_name("tmp");
    EXPECT_NE(a, b);
}

TEST(Node, AccessorsAndToString)
{
    Node node(op_names::kConv, "c1", {"x", "w", ""}, {"y"});
    EXPECT_TRUE(node.has_input(0));
    EXPECT_FALSE(node.has_input(2));
    EXPECT_FALSE(node.has_input(9));
    EXPECT_EQ(node.input(5), "");
    EXPECT_EQ(node.output(0), "y");
    EXPECT_THROW(node.output(1), Error);
    EXPECT_EQ(node.to_string(), "Conv(c1: x, w, _ -> y)");
}

} // namespace
} // namespace orpheus
