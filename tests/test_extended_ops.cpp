/** @file Tests for the extended operator set (Sub/Div, unary math,
 *  GlobalMaxPool, ArgMax) and the CSE pass. */
#include <cmath>

#include <gtest/gtest.h>

#include "graph/passes/pass.hpp"
#include "graph/shape_inference.hpp"
#include "ops/eltwise.hpp"
#include "ops/pool.hpp"
#include "ops/reduce.hpp"
#include "ops/unary.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::expect_close;
using testing::make_random;

TEST(EltwiseExtended, SubAndDiv)
{
    Tensor a = Tensor::from_values(Shape({4}), {10, 20, 30, 40});
    Tensor b = Tensor::from_values(Shape({4}), {1, 2, 3, 4});
    Tensor out(Shape({4}));
    eltwise(EltwiseOp::kSub, a, b, out);
    EXPECT_FLOAT_EQ(out.data<float>()[2], 27.0f);
    eltwise(EltwiseOp::kDiv, a, b, out);
    EXPECT_FLOAT_EQ(out.data<float>()[3], 10.0f);
}

TEST(EltwiseExtended, SubBroadcastIsOrdered)
{
    // a - b with broadcasting must subtract b, not a (order matters,
    // unlike Add/Mul).
    Tensor a = make_random(Shape({2, 3}), 0xe0);
    Tensor b = Tensor::from_values(Shape({3}), {1, 2, 3});
    Tensor out(Shape({2, 3}));
    eltwise(EltwiseOp::kSub, a, b, out);
    EXPECT_FLOAT_EQ(out.data<float>()[4], a.data<float>()[4] - 2.0f);
}

TEST(Unary, AllKinds)
{
    Tensor input = Tensor::from_values(Shape({4}), {-2.0f, 0.0f, 1.0f, 4.0f});
    Tensor out(Shape({4}));

    unary(UnaryOp::kNeg, input, out);
    EXPECT_FLOAT_EQ(out.data<float>()[0], 2.0f);
    EXPECT_FLOAT_EQ(out.data<float>()[3], -4.0f);

    unary(UnaryOp::kExp, input, out);
    EXPECT_NEAR(out.data<float>()[1], 1.0f, 1e-6f);
    EXPECT_NEAR(out.data<float>()[2], std::exp(1.0f), 1e-5f);

    unary(UnaryOp::kSqrt, input, out);
    EXPECT_FLOAT_EQ(out.data<float>()[3], 2.0f);
    EXPECT_TRUE(std::isnan(out.data<float>()[0]));

    unary(UnaryOp::kAbs, input, out);
    EXPECT_FLOAT_EQ(out.data<float>()[0], 2.0f);
    EXPECT_FLOAT_EQ(out.data<float>()[1], 0.0f);
}

TEST(Unary, ShapeMismatchRejected)
{
    Tensor input = make_random(Shape({4}));
    Tensor wrong(Shape({5}));
    EXPECT_THROW(unary(UnaryOp::kNeg, input, wrong), Error);
}

TEST(GlobalMaxPool, PicksPlaneMaximum)
{
    Tensor input = Tensor::from_values(Shape({1, 2, 2, 2}),
                                       {1, 9, 3, 4, -5, -2, -8, -1});
    Tensor out(Shape({1, 2, 1, 1}));
    global_max_pool(input, out);
    EXPECT_FLOAT_EQ(out.data<float>()[0], 9.0f);
    EXPECT_FLOAT_EQ(out.data<float>()[1], -1.0f);
}

TEST(ArgMax, LastAxisAndKeepdims)
{
    Tensor input = Tensor::from_values(Shape({2, 4}),
                                       {1, 7, 3, 2, 9, 0, 9, 1});
    Tensor out(Shape({2}), DataType::kInt64);
    argmax(input, -1, out);
    EXPECT_EQ(out.data<std::int64_t>()[0], 1);
    EXPECT_EQ(out.data<std::int64_t>()[1], 0) << "first occurrence wins";
}

TEST(ArgMax, MiddleAxis)
{
    Tensor input = Tensor::from_values(Shape({2, 2, 2}),
                                       {1, 2, 3, 4, 8, 7, 6, 5});
    Tensor out(Shape({2, 2}), DataType::kInt64);
    argmax(input, 1, out);
    // Slice [0,:,0] = {1,3} -> 1; [0,:,1] = {2,4} -> 1.
    EXPECT_EQ(out.data<std::int64_t>()[0], 1);
    EXPECT_EQ(out.data<std::int64_t>()[1], 1);
    // Slice [1,:,0] = {8,6} -> 0.
    EXPECT_EQ(out.data<std::int64_t>()[2], 0);
}

TEST(ExtendedOps, EndToEndThroughEngine)
{
    // (|x| - sqrt(exp(0) broadcast)) / 2 ... exercised via the engine.
    Graph graph("extended");
    graph.add_input("x", Shape({1, 8}));
    graph.add_initializer("half", Tensor::from_values(Shape({1}), {2.0f}));
    graph.add_node(op_names::kAbs, {"x"}, {"a"});
    graph.add_node(op_names::kDiv, {"a", "half"}, {"d"});
    graph.add_node(op_names::kNeg, {"d"}, {"n"});
    graph.add_node(op_names::kSub, {"a", "n"}, {"y"});
    graph.add_output("y");

    Engine engine(std::move(graph));
    Tensor input = Tensor::from_values(
        Shape({1, 8}), {-4, -3, -2, -1, 1, 2, 3, 4});
    const Tensor output = engine.run(input);
    // y = |x| - (-|x|/2) = 1.5 * |x|.
    for (int i = 0; i < 8; ++i)
        EXPECT_FLOAT_EQ(output.data<float>()[i],
                        1.5f * std::fabs(input.data<float>()[i]));
}

TEST(ExtendedOps, ArgMaxClassifierHead)
{
    Graph graph("classifier");
    graph.add_input("logits", Shape({1, 10}));
    AttributeMap softmax_attrs;
    softmax_attrs.set("axis", std::int64_t{-1});
    graph.add_node(op_names::kSoftmax, {"logits"}, {"probs"},
                   std::move(softmax_attrs));
    AttributeMap argmax_attrs;
    argmax_attrs.set("axis", std::int64_t{1});
    argmax_attrs.set("keepdims", std::int64_t{0});
    graph.add_node(op_names::kArgMax, {"probs"}, {"label"},
                   std::move(argmax_attrs));
    graph.add_output("label", Shape({1}), DataType::kInt64);

    Engine engine(std::move(graph));
    Tensor logits = make_random(Shape({1, 10}), 0xe2, -2.0f, 2.0f);
    const auto outputs = engine.run({{"logits", logits}});
    const std::int64_t label =
        outputs.at("label").data<std::int64_t>()[0];
    int expected = 0;
    for (int i = 1; i < 10; ++i) {
        if (logits.data<float>()[i] > logits.data<float>()[expected])
            expected = i;
    }
    EXPECT_EQ(label, expected);
}

TEST(Cse, MergesDuplicatePureNodes)
{
    Graph graph("dup");
    graph.add_input("x", Shape({1, 4}));
    graph.add_node(op_names::kRelu, {"x"}, {"a"});
    graph.add_node(op_names::kRelu, {"x"}, {"b"}); // duplicate of a
    graph.add_node(op_names::kAdd, {"a", "b"}, {"y"});
    graph.add_output("y");

    auto pass = make_eliminate_common_subexpressions_pass();
    EXPECT_TRUE(pass->run(graph));
    EXPECT_EQ(graph.nodes().size(), 2u);
    EXPECT_NO_THROW(graph.validate());
    const Node &add = graph.nodes().back();
    EXPECT_EQ(add.input(0), add.input(1));
    EXPECT_FALSE(pass->run(graph));
}

TEST(Cse, RespectsDifferentAttributes)
{
    Graph graph("attrs");
    graph.add_input("x", Shape({1, 4}));
    AttributeMap leaky_a, leaky_b;
    leaky_a.set("alpha", 0.1f);
    leaky_b.set("alpha", 0.2f);
    graph.add_node(op_names::kLeakyRelu, {"x"}, {"a"}, std::move(leaky_a));
    graph.add_node(op_names::kLeakyRelu, {"x"}, {"b"}, std::move(leaky_b));
    graph.add_node(op_names::kAdd, {"a", "b"}, {"y"});
    graph.add_output("y");

    EXPECT_FALSE(make_eliminate_common_subexpressions_pass()->run(graph));
    EXPECT_EQ(graph.nodes().size(), 3u);
}

TEST(Cse, CascadesAcrossLevels)
{
    // Two identical two-level chains collapse completely.
    Graph graph("chain");
    graph.add_input("x", Shape({1, 4}));
    graph.add_node(op_names::kRelu, {"x"}, {"a1"});
    graph.add_node(op_names::kRelu, {"x"}, {"a2"});
    graph.add_node(op_names::kNeg, {"a1"}, {"b1"});
    graph.add_node(op_names::kNeg, {"a2"}, {"b2"});
    graph.add_node(op_names::kAdd, {"b1", "b2"}, {"y"});
    graph.add_output("y");

    auto pass = make_eliminate_common_subexpressions_pass();
    EXPECT_TRUE(pass->run(graph));
    EXPECT_EQ(graph.nodes().size(), 3u)
        << "both levels of duplication must merge in a single run";
}

TEST(Cse, PreservesNumerics)
{
    Graph graph("numeric");
    graph.add_input("x", Shape({1, 6}));
    graph.add_node(op_names::kSqrt, {"x"}, {"s1"});
    graph.add_node(op_names::kSqrt, {"x"}, {"s2"});
    graph.add_node(op_names::kMul, {"s1", "s2"}, {"y"});
    graph.add_output("y");

    EngineOptions raw;
    raw.apply_simplifications = false;
    Engine engine_raw{Graph(graph), raw};
    Engine engine_simplified{std::move(graph)};
    EXPECT_LT(engine_simplified.steps().size(), 3u + 0u + 1u);

    Tensor input = make_random(Shape({1, 6}), 0xe3, 0.1f, 4.0f);
    expect_close(engine_simplified.run(input), engine_raw.run(input),
                 1e-6f, 1e-6f);
}

} // namespace
} // namespace orpheus
