/** @file Runtime extras: cached Winograd transforms, batched inference
 *  and engine reuse under varied inputs. */
#include <gtest/gtest.h>

#include "models/builder.hpp"
#include "ops/conv/conv.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::expect_close;
using testing::make_random;

TEST(WinogradCache, PretransformedMatchesOnTheFly)
{
    const std::int64_t in_c = 5, out_c = 7, hw = 9;
    Tensor input = make_random(Shape({1, in_c, hw, hw}), 0xca0);
    Tensor weight = make_random(Shape({out_c, in_c, 3, 3}), 0xca1);

    Conv2dParams p;
    p.kernel_h = p.kernel_w = 3;
    p.pad_top = p.pad_left = p.pad_bottom = p.pad_right = 1;

    Conv2dArgs args;
    args.input = input.data<float>();
    args.batch = 1;
    args.in_c = in_c;
    args.in_h = args.in_w = hw;
    args.weight = weight.data<float>();
    args.out_c = out_c;
    args.out_h = args.out_w = hw;
    args.params = p;

    Tensor expected(Shape({1, out_c, hw, hw}));
    args.output = expected.data<float>();
    conv2d_winograd(args);

    const std::vector<float> cached_u =
        winograd_transform_weights(weight.data<float>(), out_c, in_c);
    Tensor actual(Shape({1, out_c, hw, hw}));
    args.output = actual.data<float>();
    conv2d_winograd_pretransformed(args, cached_u.data());

    EXPECT_EQ(max_abs_diff(actual, expected), 0.0f)
        << "cached and on-the-fly transforms must be identical";
}

TEST(WinogradCache, EngineLayerUsesCacheAndStaysCorrect)
{
    // An engine with Winograd enabled must match the default engine
    // across repeated runs (the cache is reused every run).
    EngineOptions winograd_options;
    winograd_options.backend.allow_winograd = true;

    GraphBuilder b("wino", 0xca2);
    std::string x = b.input("input", Shape({1, 4, 12, 12}));
    x = b.cbr(x, 8, 3, 1, 1);
    x = b.cbr(x, 8, 3, 1, 1);
    b.output(x);
    Graph graph = b.take();

    Engine reference{Graph(graph)};
    Engine winograd_engine(std::move(graph), winograd_options);

    bool used_winograd = false;
    for (const PlanStep &step : winograd_engine.steps())
        used_winograd |= step.layer->impl_name() == "winograd";
    ASSERT_TRUE(used_winograd);

    for (int run = 0; run < 3; ++run) {
        Tensor input = make_random(Shape({1, 4, 12, 12}),
                                   0xca3 + static_cast<std::uint64_t>(run));
        expect_close(winograd_engine.run(input), reference.run(input),
                     1e-3f, 2e-3f);
    }
}

/** Small CNN with a parameterisable batch, fixed weights via seed. */
Graph
batched_cnn(std::int64_t batch)
{
    GraphBuilder b("batched", 0xca4);
    std::string x = b.input("input", Shape({batch, 3, 10, 10}));
    x = b.cbr(x, 6, 3, 1, 1);
    x = b.maxpool(x, 2, 2);
    x = b.cbr(x, 12, 3, 1, 1);
    x = b.global_average_pool(x);
    x = b.flatten(x);
    x = b.dense(x, 4);
    b.output(b.softmax(x));
    return b.take();
}

TEST(BatchedInference, Batch2MatchesTwoSingleRuns)
{
    Engine single(batched_cnn(1));
    Engine batched(batched_cnn(2));

    Tensor sample_a = make_random(Shape({1, 3, 10, 10}), 0xca5);
    Tensor sample_b = make_random(Shape({1, 3, 10, 10}), 0xca6);

    Tensor batch(Shape({2, 3, 10, 10}));
    std::memcpy(batch.data<float>(), sample_a.data<float>(),
                sample_a.byte_size());
    std::memcpy(batch.data<float>() + sample_a.numel(),
                sample_b.data<float>(), sample_b.byte_size());

    const Tensor batch_out = batched.run(batch);
    ASSERT_EQ(batch_out.shape(), Shape({2, 4}));
    const Tensor out_a = single.run(sample_a);
    const Tensor out_b = single.run(sample_b);

    for (int c = 0; c < 4; ++c) {
        EXPECT_NEAR(batch_out.data<float>()[c], out_a.data<float>()[c],
                    1e-5f)
            << "sample 0, class " << c;
        EXPECT_NEAR(batch_out.data<float>()[4 + c],
                    out_b.data<float>()[c], 1e-5f)
            << "sample 1, class " << c;
    }
}

TEST(BatchedInference, EveryConvAlgoHandlesBatch)
{
    const Graph graph = batched_cnn(3);
    Tensor input = make_random(Shape({3, 3, 10, 10}), 0xca7);

    Engine reference{Graph(graph)};
    const Tensor expected = reference.run(input);

    for (const char *impl : {"direct", "spatial_pack", "im2col_gemm"}) {
        EngineOptions options;
        options.backend.forced_impl[op_names::kConv] = impl;
        Engine engine{Graph(graph), options};
        expect_close(engine.run(input), expected, 1e-3f, 1e-3f);
    }
}

TEST(EngineReuse, ManyRunsWithVaryingInputsStayIndependent)
{
    // Results must depend only on the current input — no state leaks
    // between runs through arena reuse or layer scratch buffers.
    Engine engine(batched_cnn(1));
    Tensor probe = make_random(Shape({1, 3, 10, 10}), 0xca8);
    const Tensor baseline = engine.run(probe);

    for (int run = 0; run < 5; ++run) {
        Tensor noise = make_random(Shape({1, 3, 10, 10}),
                                   0xca9 + static_cast<std::uint64_t>(run),
                                   -10.0f, 10.0f);
        (void)engine.run(noise);
    }
    EXPECT_EQ(max_abs_diff(engine.run(probe), baseline), 0.0f)
        << "re-running the same input after other inputs must be "
           "bit-identical";
}

} // namespace
} // namespace orpheus
