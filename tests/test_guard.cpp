/**
 * @file
 * Guarded-execution tests: silent-corruption detection, the per-step
 * circuit breaker, and recovery probes.
 *
 * The central property under test: with the guard enabled, a run whose
 * kernel produced corrupted data NEVER returns that data — it either
 * fails with kDataCorruption or serves the reference re-execution.
 * All corruption here is injected deterministically (FaultInjector::
 * arm_corruption), so every breaker transition is reproducible.
 */
#include "runtime/guard.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>

#include "core/rng.hpp"
#include "models/model_zoo.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::make_random;

constexpr float kQuietNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

// --- scan_floats / ulp_distance (core helpers) ----------------------------

TEST(FloatScan, CleanTensorIsAllFinite)
{
    const Tensor t = Tensor::from_values(Shape({4}), {1.0f, -2.5f, 0.0f, 3e8f});
    const FloatScan scan = scan_floats(t);
    EXPECT_TRUE(scan.all_finite());
    EXPECT_FLOAT_EQ(scan.max_abs, 3e8f);
    EXPECT_EQ(scan.first_non_finite, -1);
}

TEST(FloatScan, FindsFirstNaN)
{
    const Tensor t =
        Tensor::from_values(Shape({4}), {1.0f, kQuietNaN, kInf, 2.0f});
    const FloatScan scan = scan_floats(t);
    EXPECT_TRUE(scan.has_nan);
    EXPECT_TRUE(scan.has_inf);
    EXPECT_EQ(scan.first_non_finite, 1);
}

TEST(FloatScan, DenormalsNegativeZeroAndExactZeroAreClean)
{
    // fp32 edge cases: a denormal, -0.0 and exact zero are legitimate
    // values, not corruption.
    const Tensor t =
        Tensor::from_values(Shape({3}), {1e-42f, -0.0f, 0.0f});
    const FloatScan scan = scan_floats(t);
    EXPECT_TRUE(scan.all_finite());
    EXPECT_FLOAT_EQ(scan.max_abs, 1e-42f);
}

TEST(FloatScan, NonFloatTensorsPassTrivially)
{
    const Tensor t(Shape({4}), DataType::kInt32);
    EXPECT_TRUE(scan_floats(t).all_finite());
}

TEST(UlpDistance, AdjacentFloatsAreOneUlpApart)
{
    const float one = 1.0f;
    const float next = std::nextafter(one, 2.0f);
    EXPECT_EQ(ulp_distance(one, next), 1);
    EXPECT_EQ(ulp_distance(one, one), 0);
}

TEST(UlpDistance, SignedZerosAreZeroApart)
{
    EXPECT_EQ(ulp_distance(0.0f, -0.0f), 0);
}

TEST(UlpDistance, CrossesZeroMonotonically)
{
    const float pos = std::nextafter(0.0f, 1.0f);  // Smallest denormal.
    const float neg = std::nextafter(0.0f, -1.0f); // Its negative twin.
    EXPECT_EQ(ulp_distance(neg, pos), 2);
}

TEST(UlpDistance, NaNIsInfinitelyFar)
{
    EXPECT_GT(ulp_distance(kQuietNaN, 1.0f),
              std::int64_t{1} << 60);
}

// --- scan_output ----------------------------------------------------------

GuardPolicy
enabled_policy()
{
    GuardPolicy policy;
    policy.enabled = true;
    // Keep breakers from auto-recovering mid-test unless a test says so.
    policy.cooldown_ms = 1e9;
    return policy;
}

TEST(ScanOutput, CleanOutputPasses)
{
    const Tensor t = Tensor::from_values(Shape({3}), {1.0f, -1.0f, 0.5f});
    EXPECT_TRUE(scan_output(t, enabled_policy()).ok());
}

TEST(ScanOutput, NaNTripsNonFinite)
{
    const Tensor t = Tensor::from_values(Shape({3}), {1.0f, kQuietNaN, 2.0f});
    const GuardVerdict verdict = scan_output(t, enabled_policy());
    EXPECT_EQ(verdict.trip, GuardTrip::kNonFinite);
    EXPECT_EQ(verdict.element_index, 1);
}

TEST(ScanOutput, NonFiniteCheckCanBeDisabled)
{
    GuardPolicy policy = enabled_policy();
    policy.check_non_finite = false;
    const Tensor t = Tensor::from_values(Shape({1}), {kInf});
    EXPECT_TRUE(scan_output(t, policy).ok());
}

TEST(ScanOutput, MagnitudeLimitTripsOnFiniteBlowUp)
{
    GuardPolicy policy = enabled_policy();
    policy.magnitude_limit = 1e6f;
    const Tensor t = Tensor::from_values(Shape({2}), {3.0f, 1e30f});
    const GuardVerdict verdict = scan_output(t, policy);
    EXPECT_EQ(verdict.trip, GuardTrip::kMagnitude);
    // Zero limit disables the check entirely.
    policy.magnitude_limit = 0.0f;
    EXPECT_TRUE(scan_output(t, policy).ok());
}

// --- compare_shadow -------------------------------------------------------

TEST(CompareShadow, IdenticalTensorsPass)
{
    const Tensor a = make_random(Shape({16}), 0x6a01);
    EXPECT_FALSE(compare_shadow(a, a, enabled_policy()).diverged);
}

TEST(CompareShadow, MatchingNaNsAndInfinitiesPass)
{
    // A legitimately overflowing model produces the same non-finite
    // values on both kernels; bitwise equality must short-circuit.
    const Tensor a =
        Tensor::from_values(Shape({3}), {kQuietNaN, kInf, -kInf});
    EXPECT_FALSE(compare_shadow(a, a.clone(), enabled_policy()).diverged);
}

TEST(CompareShadow, ExactZeroReferenceUsesAbsoluteToleranceOnly)
{
    // rtol * |ref| is zero here; the multiply-form tolerance must not
    // divide and must still pass values within atol.
    const Tensor fast = Tensor::from_values(Shape({2}), {5e-6f, -0.0f});
    const Tensor ref = Tensor::from_values(Shape({2}), {0.0f, 0.0f});
    EXPECT_FALSE(compare_shadow(fast, ref, enabled_policy()).diverged);
}

TEST(CompareShadow, DenormalDifferencePassesWithinUlps)
{
    const float denorm = std::nextafter(0.0f, 1.0f);
    const Tensor fast = Tensor::from_values(Shape({1}), {denorm});
    const Tensor ref = Tensor::from_values(Shape({1}), {denorm * 4});
    EXPECT_FALSE(compare_shadow(fast, ref, enabled_policy()).diverged);
}

TEST(CompareShadow, RealDivergenceIsFlaggedWithLocation)
{
    const Tensor fast = Tensor::from_values(Shape({3}), {1.0f, 1.5f, 2.0f});
    const Tensor ref = Tensor::from_values(Shape({3}), {1.0f, 1.0f, 2.0f});
    const ShadowComparison cmp =
        compare_shadow(fast, ref, enabled_policy());
    EXPECT_TRUE(cmp.diverged);
    EXPECT_EQ(cmp.element_index, 1);
    EXPECT_FLOAT_EQ(cmp.fast_value, 1.5f);
    EXPECT_FLOAT_EQ(cmp.reference_value, 1.0f);
}

TEST(CompareShadow, NaNOnlyInFastDiverges)
{
    const Tensor fast = Tensor::from_values(Shape({1}), {kQuietNaN});
    const Tensor ref = Tensor::from_values(Shape({1}), {1.0f});
    EXPECT_TRUE(compare_shadow(fast, ref, enabled_policy()).diverged);
}

// --- FaultInjector corruption matcher -------------------------------------

TEST(CorruptionInjection, AppliesEachKindDeterministically)
{
    Tensor t = Tensor::from_values(Shape({5}), {1.f, 2.f, 3.f, 4.f, 5.f});
    apply_corruption(CorruptionKind::kNaNPoke, t);
    EXPECT_TRUE(std::isnan(t.data<float>()[0]));

    t = Tensor::from_values(Shape({5}), {1.f, 2.f, 3.f, 4.f, 5.f});
    apply_corruption(CorruptionKind::kBitFlip, t);
    // Middle element flipped to a different but finite value.
    EXPECT_TRUE(std::isfinite(t.data<float>()[2]));
    EXPECT_NE(t.data<float>()[2], 3.0f);

    t = Tensor::from_values(Shape({5}), {1.f, 2.f, 3.f, 4.f, 5.f});
    apply_corruption(CorruptionKind::kMagnitudeSpike, t);
    EXPECT_FLOAT_EQ(t.data<float>()[0], 1e30f);
}

TEST(CorruptionInjection, MatcherHonoursOrdinalAndCap)
{
    FaultInjector injector;
    injector.arm_corruption("n", "impl", CorruptionKind::kNaNPoke,
                            /*corrupt_from_call=*/1, /*max_corruptions=*/1);
    EXPECT_EQ(injector.corruption("n", "other"), CorruptionKind::kNone);
    EXPECT_EQ(injector.corruption("n", "impl"), CorruptionKind::kNone);
    EXPECT_EQ(injector.corruption("n", "impl"), CorruptionKind::kNaNPoke);
    EXPECT_EQ(injector.corruption("n", "impl"), CorruptionKind::kNone);
    EXPECT_EQ(injector.corruptions_injected(), 1);
    EXPECT_EQ(injector.corruption_calls_seen(), 3);
    injector.reset();
    EXPECT_EQ(injector.corruption("n", "impl"), CorruptionKind::kNone);
}

// --- Engine: guarded execution end to end ---------------------------------

std::size_t
first_step_of(const Engine &engine, const std::string &op_type)
{
    for (std::size_t i = 0; i < engine.steps().size(); ++i) {
        if (engine.steps()[i].op_type == op_type)
            return i;
    }
    ADD_FAILURE() << "no step with op " << op_type << "\n"
                  << engine.plan_summary();
    return 0;
}

Graph
matmul_graph()
{
    Graph graph("mm");
    graph.add_input("x", Shape({4, 8}));
    Rng rng(0x6a03);
    graph.add_initializer("w", random_tensor(Shape({8, 5}), rng));
    graph.add_node(op_names::kMatMul, {"x", "w"}, {"y"});
    graph.add_output("y");
    return graph;
}

/** Documents the gap the guard closes: without it, injected NaN
 *  corruption flows straight to the caller as a successful run. */
TEST(GuardedEngine, UnguardedRunServesCorruptedDataSilently)
{
    EngineOptions options;
    options.backend.forced_impl["MatMul"] = "minnl";
    options.fault_injector = std::make_shared<FaultInjector>();
    options.fault_injector->arm_corruption("", "minnl",
                                           CorruptionKind::kNaNPoke);
    Engine engine(matmul_graph(), options);

    const Tensor out = engine.run(make_random(Shape({4, 8}), 0x6a04));
    EXPECT_TRUE(std::isnan(out.data<float>()[0]))
        << "corruption injection should have poisoned the output";
}

TEST(GuardedEngine, NaNCorruptionSurfacesAsDataCorruption)
{
    EngineOptions options;
    options.backend.forced_impl["MatMul"] = "minnl";
    options.guard = enabled_policy();
    options.fault_injector = std::make_shared<FaultInjector>();
    options.fault_injector->arm_corruption("", "minnl",
                                           CorruptionKind::kNaNPoke);
    Engine engine(matmul_graph(), options);

    Tensor input = make_random(Shape({4, 8}), 0x6a05);
    EXPECT_THROW(engine.run(input), DataCorruptionError);

    std::map<std::string, Tensor> outputs;
    const Status status = engine.try_run({{"x", input}}, outputs);
    EXPECT_EQ(status.code(), StatusCode::kDataCorruption);
    EXPECT_TRUE(outputs.empty());
    EXPECT_GE(engine.steps().front().health.trips_total, 1);
}

/** fail_on_corruption=false: the request succeeds and serves the
 *  reference re-execution, bitwise-identical to a reference-pinned
 *  engine — corrupted data still never escapes. */
TEST(GuardedEngine, AvailabilityModeServesReferenceResult)
{
    EngineOptions options;
    options.backend.forced_impl["MatMul"] = "minnl";
    options.guard = enabled_policy();
    options.guard.fail_on_corruption = false;
    options.fault_injector = std::make_shared<FaultInjector>();
    options.fault_injector->arm_corruption("", "minnl",
                                           CorruptionKind::kNaNPoke);
    Engine engine(matmul_graph(), options);

    EngineOptions reference_options;
    reference_options.backend.forced_impl["MatMul"] = "reference";
    Engine reference(matmul_graph(), reference_options);

    Tensor input = make_random(Shape({4, 8}), 0x6a06);
    const Tensor guarded = engine.run(input);
    EXPECT_EQ(max_abs_diff(guarded, reference.run(input)), 0.0f);
    EXPECT_GE(engine.steps().front().health.trips_total, 1);
}

TEST(GuardedEngine, BreakerOpensAfterRepeatedTripsAndRoutesToReference)
{
    auto injector = std::make_shared<FaultInjector>();
    EngineOptions options;
    options.backend.forced_impl["Conv"] = "im2col_gemm";
    options.guard = enabled_policy();
    options.fault_injector = injector;
    Engine engine(models::tiny_cnn(), options);

    const std::size_t conv = first_step_of(engine, op_names::kConv);
    const std::string conv_node = engine.steps()[conv].node_name;
    injector->arm_corruption(conv_node, "im2col_gemm",
                             CorruptionKind::kNaNPoke);

    Tensor input = make_random(Shape({1, 3, 8, 8}), 0x6a07);
    std::map<std::string, Tensor> outputs;

    // Two confirmed trips (open_after_trips default) open the breaker.
    for (int i = 0; i < 2; ++i) {
        const Status status = engine.try_run({{"input", input}}, outputs);
        EXPECT_EQ(status.code(), StatusCode::kDataCorruption) << i;
    }
    EXPECT_EQ(engine.steps()[conv].health.state, BreakerState::kOpen);
    EXPECT_TRUE(engine.steps()[conv].degraded);
    EXPECT_EQ(engine.steps()[conv].health.opens_total, 1);

    // Open breaker: the step runs on the reference kernel, the armed
    // corruption no longer matches, and the result is bitwise equal to
    // an engine pinned to the reference for exactly that node.
    const Status routed = engine.try_run({{"input", input}}, outputs);
    ASSERT_TRUE(routed.is_ok()) << routed.to_string();

    EngineOptions pinned_options;
    pinned_options.backend.forced_impl["Conv"] = "im2col_gemm";
    pinned_options.backend.node_impl[conv_node] =
        engine.steps()[conv].reference_impl;
    Engine pinned(models::tiny_cnn(), pinned_options);
    EXPECT_EQ(max_abs_diff(outputs.begin()->second, pinned.run(input)),
              0.0f);
    // The fast layer is still in place, only routed around.
    EXPECT_EQ(engine.steps()[conv].layer->impl_name(), "im2col_gemm");
}

TEST(GuardedEngine, HalfOpenProbeRestoresFastKernelAfterCorruptionStops)
{
    auto injector = std::make_shared<FaultInjector>();
    EngineOptions options;
    options.backend.forced_impl["Conv"] = "im2col_gemm";
    options.guard = enabled_policy();
    // Conv impls differ by more than the strict default tolerance;
    // the probe's shadow comparison is about catching corruption, not
    // cross-kernel rounding.
    options.guard.shadow_atol = 1e-3f;
    options.guard.shadow_rtol = 1e-2f;
    options.fault_injector = injector;
    Engine engine(models::tiny_cnn(), options);

    const std::size_t conv = first_step_of(engine, op_names::kConv);
    const std::string conv_node = engine.steps()[conv].node_name;
    // Exactly two corruptions: enough to open the breaker, then gone —
    // a transient miscompile/bit-rot episode.
    injector->arm_corruption(conv_node, "im2col_gemm",
                             CorruptionKind::kNaNPoke, 0,
                             /*max_corruptions=*/2);

    Tensor input = make_random(Shape({1, 3, 8, 8}), 0x6a08);
    std::map<std::string, Tensor> outputs;
    for (int i = 0; i < 2; ++i)
        EXPECT_EQ(engine.try_run({{"input", input}}, outputs).code(),
                  StatusCode::kDataCorruption);
    ASSERT_EQ(engine.steps()[conv].health.state, BreakerState::kOpen);

    // Let the breaker cool down instantly; the next run probes.
    GuardPolicy recovered = options.guard;
    recovered.cooldown_ms = 0;
    engine.set_guard_policy(recovered);

    const Status probe = engine.try_run({{"input", input}}, outputs);
    ASSERT_TRUE(probe.is_ok()) << probe.to_string();
    EXPECT_EQ(engine.steps()[conv].health.state, BreakerState::kClosed);
    EXPECT_FALSE(engine.steps()[conv].degraded);
    EXPECT_EQ(engine.steps()[conv].health.recoveries_total, 1);
    // The probe was shadow-verified, not waved through.
    EXPECT_GE(engine.steps()[conv].health.shadow_runs, 1);

    // Fully recovered: matches a clean im2col engine bitwise.
    EngineOptions clean_options;
    clean_options.backend.forced_impl["Conv"] = "im2col_gemm";
    Engine clean(models::tiny_cnn(), clean_options);
    const Status after = engine.try_run({{"input", input}}, outputs);
    ASSERT_TRUE(after.is_ok());
    EXPECT_EQ(max_abs_diff(outputs.begin()->second, clean.run(input)),
              0.0f);
}

TEST(GuardedEngine, AllowRecoveryFalseKeepsBreakerOpenForever)
{
    auto injector = std::make_shared<FaultInjector>();
    EngineOptions options;
    options.backend.forced_impl["Conv"] = "im2col_gemm";
    options.guard = enabled_policy();
    options.guard.cooldown_ms = 0;
    options.guard.allow_recovery = false;
    options.fault_injector = injector;
    Engine engine(models::tiny_cnn(), options);

    const std::size_t conv = first_step_of(engine, op_names::kConv);
    injector->arm_corruption(engine.steps()[conv].node_name, "im2col_gemm",
                             CorruptionKind::kNaNPoke, 0, 2);

    Tensor input = make_random(Shape({1, 3, 8, 8}), 0x6a09);
    std::map<std::string, Tensor> outputs;
    for (int i = 0; i < 2; ++i)
        engine.try_run({{"input", input}}, outputs);
    ASSERT_EQ(engine.steps()[conv].health.state, BreakerState::kOpen);

    // Even with an elapsed cool-down, no probe happens.
    ASSERT_TRUE(engine.try_run({{"input", input}}, outputs).is_ok());
    EXPECT_EQ(engine.steps()[conv].health.state, BreakerState::kOpen);
    EXPECT_EQ(engine.steps()[conv].health.recoveries_total, 0);
}

/** A bit-flip is finite and plausible — only shadow execution sees it. */
TEST(GuardedEngine, BitFlipIsInvisibleToScanButCaughtByShadow)
{
    const auto build = [](int shadow_every_n) {
        EngineOptions options;
        options.backend.forced_impl["MatMul"] = "minnl";
        options.guard = enabled_policy();
        options.guard.shadow_every_n = shadow_every_n;
        // ULP-dominated tolerance: legitimate accumulation-order
        // differences are a few ULPs at any magnitude, while a mantissa
        // bit-flip moves the value millions of ULPs.
        options.guard.shadow_atol = 1e-6f;
        options.guard.shadow_rtol = 0.0f;
        options.fault_injector = std::make_shared<FaultInjector>();
        options.fault_injector->arm_corruption("", "minnl",
                                               CorruptionKind::kBitFlip);
        return options;
    };

    Tensor input = make_random(Shape({4, 8}), 0x6a0a);
    std::map<std::string, Tensor> outputs;

    // No shadowing: the scan alone cannot catch a finite wrong value.
    Engine unshadowed(matmul_graph(), build(0));
    EXPECT_TRUE(
        unshadowed.try_run({{"x", input}}, outputs).is_ok());

    // Shadow every invocation: the divergence is confirmed corruption.
    Engine shadowed(matmul_graph(), build(1));
    const Status status = shadowed.try_run({{"x", input}}, outputs);
    EXPECT_EQ(status.code(), StatusCode::kDataCorruption);
    EXPECT_GE(shadowed.steps().front().health.shadow_runs, 1);
}

TEST(GuardedEngine, MagnitudeSpikeCaughtByLimit)
{
    EngineOptions options;
    options.backend.forced_impl["MatMul"] = "minnl";
    options.guard = enabled_policy();
    options.guard.magnitude_limit = 1e6f;
    options.fault_injector = std::make_shared<FaultInjector>();
    options.fault_injector->arm_corruption("", "minnl",
                                           CorruptionKind::kMagnitudeSpike);
    Engine engine(matmul_graph(), options);

    std::map<std::string, Tensor> outputs;
    const Status status =
        engine.try_run({{"x", make_random(Shape({4, 8}), 0x6a0b)}},
                       outputs);
    EXPECT_EQ(status.code(), StatusCode::kDataCorruption);
}

/** A model that legitimately overflows to Inf on EVERY kernel must run
 *  guarded: the reference reproduces the Inf, so it is the model's true
 *  answer, not corruption. */
TEST(GuardedEngine, LegitimateAllInfOutputRunsGuarded)
{
    Graph graph("overflow");
    graph.add_input("x", Shape({1, 1, 4, 4}));
    Tensor weights(Shape({2, 1, 3, 3}));
    weights.fill(1e38f); // Accumulating 9 of these overflows fp32.
    graph.add_initializer("w", std::move(weights));
    AttributeMap attrs;
    attrs.set("kernel_shape", std::vector<std::int64_t>{3, 3});
    attrs.set("pads", std::vector<std::int64_t>{1, 1, 1, 1});
    graph.add_node(op_names::kConv, {"x", "w"}, {"y"}, std::move(attrs));
    graph.add_output("y");

    EngineOptions options;
    options.backend.forced_impl["Conv"] = "im2col_gemm";
    options.guard = enabled_policy();
    options.guard.shadow_every_n = 1;
    Engine engine(std::move(graph), options);

    Tensor input(Shape({1, 1, 4, 4}));
    input.fill(1.0f);
    std::map<std::string, Tensor> outputs;
    const Status status = engine.try_run({{"x", input}}, outputs);
    ASSERT_TRUE(status.is_ok()) << status.to_string();
    const Tensor &y = outputs.at("y");
    // The interior of the output really is Inf (the overflow is real).
    EXPECT_TRUE(std::isinf(y.data<float>()[5]));
    // And the guard never tripped: this is the model's true answer.
    EXPECT_EQ(engine.steps().front().health.trips_total, 0);
    EXPECT_EQ(engine.steps().front().health.state, BreakerState::kClosed);
}

/** Gemm has only the reference implementation: with no second opinion
 *  the policy decides whether to trust or flag the only kernel. */
TEST(GuardedEngine, ReferenceOnlyKernelFollowsFlagPolicy)
{
    const auto build = [](bool flag_reference_outputs) {
        EngineOptions options;
        // Keep the SIMD packed-GEMM tier out so Gemm really has a single
        // implementation — the premise this test is about.
        options.backend.allow_simd = false;
        options.guard = enabled_policy();
        options.guard.flag_reference_outputs = flag_reference_outputs;
        options.fault_injector = std::make_shared<FaultInjector>();
        return options;
    };

    Tensor input = make_random(Shape({1, 32}), 0x6a0c);
    std::map<std::string, Tensor> outputs;

    // Default: the only implementation is the trusted root; its NaN
    // output is served (exactly like an unguarded reference engine).
    {
        EngineOptions options = build(false);
        Engine engine(models::tiny_mlp(), options);
        const std::size_t gemm = first_step_of(engine, op_names::kGemm);
        ASSERT_TRUE(engine.steps()[gemm].reference_impl.empty())
            << "test premise: Gemm must have no fallback";
        options.fault_injector->arm_corruption(
            engine.steps()[gemm].node_name, "",
            CorruptionKind::kNaNPoke);
        EXPECT_TRUE(engine.try_run({{"input", input}}, outputs).is_ok());
    }

    // Fail-stop deployments can flag even the reference kernel.
    {
        EngineOptions options = build(true);
        Engine engine(models::tiny_mlp(), options);
        const std::size_t gemm = first_step_of(engine, op_names::kGemm);
        options.fault_injector->arm_corruption(
            engine.steps()[gemm].node_name, "",
            CorruptionKind::kNaNPoke);
        EXPECT_EQ(engine.try_run({{"input", input}}, outputs).code(),
                  StatusCode::kDataCorruption);
    }
}

/** Kernel faults route through the same breaker in guard mode, so a
 *  watchdog demotion is recoverable instead of permanent. */
TEST(GuardedEngine, DemoteStepOpensBreakerAndRestoreStepCloses)
{
    EngineOptions options;
    options.backend.forced_impl["Conv"] = "im2col_gemm";
    options.guard = enabled_policy();
    Engine engine(models::tiny_cnn(), options);
    const std::size_t conv = first_step_of(engine, op_names::kConv);
    const std::string conv_node = engine.steps()[conv].node_name;

    engine.demote_step(conv, "watchdog: step hung");
    EXPECT_EQ(engine.steps()[conv].health.state, BreakerState::kOpen);
    EXPECT_TRUE(engine.steps()[conv].degraded);
    EXPECT_GE(engine.steps()[conv].health.faults_total, 1);

    // Demoted: routed to the reference kernel for that node.
    Tensor input = make_random(Shape({1, 3, 8, 8}), 0x6a0d);
    EngineOptions pinned_options;
    pinned_options.backend.forced_impl["Conv"] = "im2col_gemm";
    pinned_options.backend.node_impl[conv_node] =
        engine.steps()[conv].reference_impl;
    Engine pinned(models::tiny_cnn(), pinned_options);
    EXPECT_EQ(max_abs_diff(engine.run(input), pinned.run(input)), 0.0f);

    // Manual operator restore: back on the fast kernel.
    engine.restore_step(conv);
    EXPECT_EQ(engine.steps()[conv].health.state, BreakerState::kClosed);
    EXPECT_FALSE(engine.steps()[conv].degraded);
    EngineOptions clean_options;
    clean_options.backend.forced_impl["Conv"] = "im2col_gemm";
    Engine clean(models::tiny_cnn(), clean_options);
    EXPECT_EQ(max_abs_diff(engine.run(input), clean.run(input)), 0.0f);
}

/** restore_step also reverses the legacy (guard-off) permanent
 *  degradation, fixing the old one-way demotion. */
TEST(GuardedEngine, RestoreStepReversesLegacyDegradation)
{
    auto injector = std::make_shared<FaultInjector>();
    EngineOptions options;
    options.backend.forced_impl["Conv"] = "im2col_gemm";
    options.fault_injector = injector;
    Engine engine(models::tiny_cnn(), options);
    injector->arm("", "im2col_gemm");

    Tensor input = make_random(Shape({1, 3, 8, 8}), 0x6a0e);
    engine.run(input); // Every conv degrades to the reference.
    injector->reset();

    for (std::size_t i = 0; i < engine.steps().size(); ++i) {
        if (engine.steps()[i].op_type != op_names::kConv)
            continue;
        ASSERT_TRUE(engine.steps()[i].degraded);
        engine.restore_step(i);
        EXPECT_FALSE(engine.steps()[i].degraded);
        EXPECT_EQ(engine.steps()[i].layer->impl_name(), "im2col_gemm");
    }

    EngineOptions clean_options;
    clean_options.backend.forced_impl["Conv"] = "im2col_gemm";
    Engine clean(models::tiny_cnn(), clean_options);
    EXPECT_EQ(max_abs_diff(engine.run(input), clean.run(input)), 0.0f);
}

TEST(GuardedEngine, CleanGuardedRunMatchesUnguardedBitwise)
{
    EngineOptions guarded_options;
    guarded_options.guard = enabled_policy();
    guarded_options.guard.shadow_every_n = 1;
    guarded_options.guard.shadow_atol = 1e-3f;
    guarded_options.guard.shadow_rtol = 1e-2f;
    Engine guarded(models::tiny_cnn(), guarded_options);
    Engine plain(models::tiny_cnn(), {});

    Tensor input = make_random(Shape({1, 3, 8, 8}), 0x6a0f);
    EXPECT_EQ(max_abs_diff(guarded.run(input), plain.run(input)), 0.0f);
    for (const PlanStep &step : guarded.steps()) {
        EXPECT_EQ(step.health.trips_total, 0) << step.node_name;
        EXPECT_EQ(step.health.state, BreakerState::kClosed)
            << step.node_name;
    }
}

// --- Kernel health ledger -------------------------------------------------

TEST(KernelHealthLedger, AccumulatesAcrossEngines)
{
    KernelHealthLedger &ledger = KernelRegistry::instance().health();
    ledger.reset();

    auto injector = std::make_shared<FaultInjector>();
    EngineOptions options;
    options.backend.forced_impl["MatMul"] = "minnl";
    options.guard = enabled_policy();
    options.fault_injector = injector;
    injector->arm_corruption("", "minnl", CorruptionKind::kNaNPoke);
    Engine engine(matmul_graph(), options);

    Tensor input = make_random(Shape({4, 8}), 0x6a10);
    std::map<std::string, Tensor> outputs;
    for (int i = 0; i < 2; ++i)
        engine.try_run({{"x", input}}, outputs);

    const KernelHealthRecord record = ledger.record("MatMul.minnl");
    EXPECT_EQ(record.guard_trips, 2);
    EXPECT_EQ(record.breaker_opens, 1);
    EXPECT_EQ(kernel_health_id("MatMul", "minnl"), "MatMul.minnl");
    EXPECT_EQ(ledger.record("MatMul.never_seen").guard_trips, 0);
    ledger.reset();
    EXPECT_TRUE(ledger.snapshot().empty());
}

TEST(GuardToStrings, AreStable)
{
    EXPECT_STREQ(to_string(GuardTrip::kNonFinite), "non-finite output");
    EXPECT_STREQ(to_string(GuardTrip::kShadowDiverged),
                 "shadow divergence");
    EXPECT_STREQ(to_string(BreakerState::kClosed), "closed");
    EXPECT_STREQ(to_string(BreakerState::kHalfOpen), "half-open");
    EXPECT_STREQ(to_string(CorruptionKind::kBitFlip), "bit-flip");
}

} // namespace
} // namespace orpheus
