/** @file Unit tests for typed environment-variable access. */
#include "core/env.hpp"

#include <cstdlib>

#include <gtest/gtest.h>

namespace orpheus {
namespace {

class EnvTest : public ::testing::Test
{
  protected:
    void TearDown() override { unsetenv("ORPHEUS_TEST_VAR"); }

    void set(const char *value) { setenv("ORPHEUS_TEST_VAR", value, 1); }
};

TEST_F(EnvTest, StringFallsBackWhenUnset)
{
    EXPECT_EQ(env_string("ORPHEUS_TEST_VAR", "fallback"), "fallback");
}

TEST_F(EnvTest, StringReadsValue)
{
    set("hello");
    EXPECT_EQ(env_string("ORPHEUS_TEST_VAR", "fallback"), "hello");
}

TEST_F(EnvTest, IntParsesAndValidates)
{
    EXPECT_EQ(env_int("ORPHEUS_TEST_VAR", 7), 7);
    set("42");
    EXPECT_EQ(env_int("ORPHEUS_TEST_VAR", 7), 42);
    set("-3");
    EXPECT_EQ(env_int("ORPHEUS_TEST_VAR", 7), -3);
    set("12abc");
    EXPECT_EQ(env_int("ORPHEUS_TEST_VAR", 7), 7) << "trailing junk rejected";
    set("");
    EXPECT_EQ(env_int("ORPHEUS_TEST_VAR", 7), 7);
}

TEST_F(EnvTest, DoubleParsesAndValidates)
{
    EXPECT_DOUBLE_EQ(env_double("ORPHEUS_TEST_VAR", 1.5), 1.5);
    set("2.25");
    EXPECT_DOUBLE_EQ(env_double("ORPHEUS_TEST_VAR", 1.5), 2.25);
    set("nope");
    EXPECT_DOUBLE_EQ(env_double("ORPHEUS_TEST_VAR", 1.5), 1.5);
}

TEST_F(EnvTest, FlagAcceptsCommonTrueSpellings)
{
    EXPECT_FALSE(env_flag("ORPHEUS_TEST_VAR", false));
    EXPECT_TRUE(env_flag("ORPHEUS_TEST_VAR", true));
    for (const char *value : {"1", "true", "yes", "on"}) {
        set(value);
        EXPECT_TRUE(env_flag("ORPHEUS_TEST_VAR", false)) << value;
    }
    for (const char *value : {"0", "false", "no", "off", "junk"}) {
        set(value);
        EXPECT_FALSE(env_flag("ORPHEUS_TEST_VAR", true)) << value;
    }
}

} // namespace
} // namespace orpheus
