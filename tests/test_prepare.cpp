/**
 * @file
 * Tests for the plan-time kernel-preparation stage (backend/layer.hpp):
 * prepared engines must match unprepared ones bit for bit, grouped and
 * depthwise convolutions must stay correct on every backend after
 * preparation, prepared state must be engine-private (the old
 * thread_local caches made cross-engine contamination untestable), the
 * workspace segment must be counted in the request footprint, and the
 * steady-state kernel path must not touch the heap.
 */
#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "models/builder.hpp"
#include "models/model_zoo.hpp"
#include "quant/quantizer.hpp"
#include "test_util.hpp"

// --- Allocation counting ----------------------------------------------------
// Replaces the global allocation functions for this test binary: when
// counting is armed, every operator new is tallied. The steady-state
// zero-allocation guarantee is verified by arming the counter around
// run_step() on kernel-bearing steps.

namespace {
std::atomic<std::int64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void *
counted_alloc(std::size_t size)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *ptr = std::malloc(size == 0 ? 1 : size);
    if (ptr == nullptr)
        throw std::bad_alloc();
    return ptr;
}
} // namespace

// The full replacement family: omitting the nothrow/aligned variants
// would pair the default operator new with our free()-based delete (an
// alloc-dealloc mismatch under sanitizers).
void *
operator new(std::size_t size)
{
    return counted_alloc(size);
}

void *
operator new[](std::size_t size)
{
    return counted_alloc(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    if (g_counting.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size == 0 ? 1 : size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return operator new(size, std::nothrow);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    const std::size_t alignment = static_cast<std::size_t>(align);
    void *ptr = std::aligned_alloc(
        alignment, (size + alignment - 1) / alignment * alignment);
    if (ptr == nullptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return operator new(size, align);
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t, std::align_val_t) noexcept
{
    std::free(ptr);
}

namespace orpheus {
namespace {

using testing::expect_close;
using testing::make_random;

/** A small conv network: two 3x3 convs, pooling head, dense classifier.
 *  @p group applies to the second conv (1 = dense conv, in_c = depthwise,
 *  other divisors = grouped). */
Graph
conv_net(std::int64_t channels, std::int64_t hw, std::int64_t group,
         std::uint64_t seed)
{
    GraphBuilder b("prep-net", seed);
    std::string x = b.input("input", Shape({1, 3, hw, hw}));
    x = b.cbr(x, channels, 3, 1, 1);
    x = b.conv_k(x, channels, 3, 1, 1, group, /*bias=*/true);
    x = b.relu(x);
    x = b.global_average_pool(x);
    x = b.flatten(x);
    x = b.dense(x, 10);
    b.output(b.softmax(x));
    return b.take();
}

EngineOptions
pinned(const std::string &conv_impl, bool prepare = true)
{
    EngineOptions options;
    options.prepare_kernels = prepare;
    if (!conv_impl.empty())
        options.backend.forced_impl[op_names::kConv] = conv_impl;
    return options;
}

// --- Correctness across backends after preparation --------------------------

TEST(Prepare, GroupedConvBackendsMatchReferenceWhenPrepared)
{
    set_global_num_threads(1);
    // channels = 8, group = 4: a grouped conv none of the fast paths may
    // silently mishandle once their weight caches are prepacked.
    Graph graph = conv_net(8, 12, /*group=*/4, /*seed=*/0x91);
    const Tensor input = make_random(Shape({1, 3, 12, 12}), 0xa1);

    Engine reference(Graph(graph), pinned("direct"));
    const Tensor expected = reference.run(input);

    for (const char *impl : {"im2col_gemm", "spatial_pack"}) {
        Engine engine(Graph(graph), pinned(impl));
        expect_close(engine.run(input), expected, 1e-3f, 1e-3f);
    }
}

TEST(Prepare, DepthwiseConvBackendsMatchReferenceWhenPrepared)
{
    set_global_num_threads(1);
    // A purely depthwise graph (group == in_c == out_c) so every conv
    // node supports the pinned depthwise kernel.
    GraphBuilder b("depthwise-net", 0x92);
    std::string x = b.input("input", Shape({1, 8, 12, 12}));
    x = b.conv_k(x, 8, 3, 1, 1, /*group=*/8, /*bias=*/true);
    x = b.relu(x);
    x = b.conv_k(x, 8, 3, 1, 1, /*group=*/8, /*bias=*/true);
    b.output(x);
    Graph graph = b.take();
    const Tensor input = make_random(Shape({1, 8, 12, 12}), 0xa2);

    Engine reference(Graph(graph), pinned("direct"));
    const Tensor expected = reference.run(input);

    for (const char *impl :
         {"im2col_gemm", "spatial_pack", "depthwise_direct"}) {
        Engine engine(Graph(graph), pinned(impl));
        expect_close(engine.run(input), expected, 1e-3f, 1e-3f);
    }
}

TEST(Prepare, WinogradMatchesReferenceWhenPrepared)
{
    set_global_num_threads(1);
    Graph graph = conv_net(8, 12, /*group=*/1, /*seed=*/0x93);
    const Tensor input = make_random(Shape({1, 3, 12, 12}), 0xa3);

    Engine reference(Graph(graph), pinned("direct"));
    const Tensor expected = reference.run(input);

    EngineOptions options = pinned("winograd");
    options.backend.allow_winograd = true;
    Engine engine(Graph(graph), options);
    expect_close(engine.run(input), expected, 1e-3f, 1e-3f);
}

// --- Prepared == unprepared, bit for bit ------------------------------------

TEST(Prepare, PreparedMatchesUnpreparedBitwise)
{
    set_global_num_threads(1);
    // Preparation hoists work to plan time but must not change the
    // arithmetic: identical kernels on identical data -> identical bits.
    for (const char *impl : {"im2col_gemm", "spatial_pack", "direct"}) {
        Graph graph = conv_net(8, 12, /*group=*/2, /*seed=*/0x94);
        const Tensor input = make_random(Shape({1, 3, 12, 12}), 0xa4);

        Engine prepared(Graph(graph), pinned(impl, true));
        Engine unprepared(Graph(graph), pinned(impl, false));
        EXPECT_EQ(max_abs_diff(prepared.run(input), unprepared.run(input)),
                  0.0f)
            << "impl " << impl;
    }
}

TEST(Prepare, WinogradPreparedMatchesUnpreparedBitwise)
{
    set_global_num_threads(1);
    Graph graph = conv_net(8, 12, /*group=*/1, /*seed=*/0x95);
    const Tensor input = make_random(Shape({1, 3, 12, 12}), 0xa5);

    EngineOptions prepared_options = pinned("winograd", true);
    prepared_options.backend.allow_winograd = true;
    EngineOptions unprepared_options = pinned("winograd", false);
    unprepared_options.backend.allow_winograd = true;

    // The prepared engine caches U = G g G^T at plan time; the
    // unprepared one recomputes it per run. Same formula, same bits.
    Engine prepared(Graph(graph), prepared_options);
    Engine unprepared(Graph(graph), unprepared_options);
    EXPECT_EQ(max_abs_diff(prepared.run(input), unprepared.run(input)),
              0.0f);
}

TEST(Prepare, QuantizedPreparedMatchesUnpreparedBitwise)
{
    set_global_num_threads(1);
    Graph quantized = quantize_model(models::tiny_cnn());
    const Tensor input =
        make_random(Shape({1, 3, 8, 8}), 0xa6);

    EngineOptions prepared_options;
    EngineOptions unprepared_options;
    unprepared_options.prepare_kernels = false;
    Engine prepared(Graph(quantized), prepared_options);
    Engine unprepared(Graph(quantized), unprepared_options);
    EXPECT_EQ(max_abs_diff(prepared.run(input), unprepared.run(input)),
              0.0f);
}

// --- Engine-private prepared state ------------------------------------------

TEST(Prepare, TwoEnginesOnOnePoolDoNotCrossContaminate)
{
    set_global_num_threads(1);
    // Different channel counts, spatial sizes and weights: if prepared
    // caches or workspace segments were shared (as the old thread_local
    // scratch was), interleaved runs would read each other's state.
    Graph graph_a = conv_net(8, 16, /*group=*/1, /*seed=*/0x21);
    Graph graph_b = conv_net(12, 12, /*group=*/1, /*seed=*/0x22);
    const Tensor input_a = make_random(Shape({1, 3, 16, 16}), 0xb1);
    const Tensor input_b = make_random(Shape({1, 3, 12, 12}), 0xb2);

    // Ground truth from engines that never interleave.
    const Tensor expected_a =
        Engine(Graph(graph_a), pinned("spatial_pack")).run(input_a);
    const Tensor expected_b =
        Engine(Graph(graph_b), pinned("spatial_pack")).run(input_b);

    Engine engine_a(Graph(graph_a), pinned("spatial_pack"));
    Engine engine_b(Graph(graph_b), pinned("spatial_pack"));
    for (int round = 0; round < 3; ++round) {
        EXPECT_EQ(max_abs_diff(engine_a.run(input_a), expected_a), 0.0f)
            << "round " << round;
        EXPECT_EQ(max_abs_diff(engine_b.run(input_b), expected_b), 0.0f)
            << "round " << round;
    }
}

// --- Workspace accounting ---------------------------------------------------

TEST(Prepare, WorkspaceIsCountedInRequestFootprint)
{
    set_global_num_threads(1);
    Graph graph = models::tiny_cnn();

    EngineOptions unprepared_options;
    unprepared_options.prepare_kernels = false;
    Engine unprepared(Graph(graph), unprepared_options);
    Engine prepared(Graph(graph), EngineOptions{});

    EXPECT_EQ(unprepared.workspace_bytes(), 0u);
    EXPECT_GT(prepared.workspace_bytes(), 0u);
    // The only footprint difference preparation makes is the workspace
    // segment itself.
    EXPECT_EQ(prepared.request_footprint_bytes(),
              unprepared.request_footprint_bytes() +
                  prepared.workspace_bytes());
}

// --- Demotion / restore with prepared state ---------------------------------

TEST(Prepare, DemoteAndRestoreKeepPreparedStepsCorrect)
{
    set_global_num_threads(1);
    Graph graph = conv_net(8, 12, /*group=*/1, /*seed=*/0x96);
    const Tensor input = make_random(Shape({1, 3, 12, 12}), 0xa7);

    Engine engine(Graph(graph), pinned("spatial_pack"));
    const Tensor baseline = engine.run(input);

    std::size_t conv_step = engine.steps().size();
    for (std::size_t i = 0; i < engine.steps().size(); ++i) {
        if (engine.steps()[i].op_type == op_names::kConv) {
            conv_step = i;
            break;
        }
    }
    ASSERT_LT(conv_step, engine.steps().size());

    // The fallback layer is instantiated and prepared on demotion; its
    // result only needs numerical agreement (different algorithm).
    engine.demote_step(conv_step, "test demotion");
    expect_close(engine.run(input), baseline, 1e-3f, 1e-3f);

    // Restoring re-instantiates and re-prepares the plan-time kernel:
    // bitwise identical to the original prepared run.
    engine.restore_step(conv_step);
    EXPECT_EQ(max_abs_diff(engine.run(input), baseline), 0.0f);
}

// --- Zero allocations in the steady state -----------------------------------

TEST(Prepare, SteadyStateKernelStepsDoNotAllocate)
{
    set_global_num_threads(1);
    Engine engine(models::tiny_cnn());
    const Tensor input = make_random(Shape({1, 3, 8, 8}), 0xa8);
    (void)engine.run(input); // Warm-up: populates every step's tensors.

    for (std::size_t i = 0; i < engine.steps().size(); ++i) {
        const PlanStep &step = engine.steps()[i];
        if (step.op_type != op_names::kConv &&
            step.op_type != op_names::kGemm &&
            step.op_type != op_names::kMatMul)
            continue;
        g_alloc_count.store(0);
        g_counting.store(true);
        engine.run_step(i);
        g_counting.store(false);
        EXPECT_EQ(g_alloc_count.load(), 0)
            << "step " << i << " (" << step.op_type << " via "
            << step.node_name << ") allocated in the steady state";
    }
}

TEST(Prepare, SteadyStateQuantizedConvDoesNotAllocate)
{
    set_global_num_threads(1);
    Engine engine(quantize_model(models::tiny_cnn()));
    const Tensor input = make_random(Shape({1, 3, 8, 8}), 0xa9);
    (void)engine.run(input);

    bool saw_qconv = false;
    for (std::size_t i = 0; i < engine.steps().size(); ++i) {
        const PlanStep &step = engine.steps()[i];
        if (step.op_type != op_names::kQLinearConv)
            continue;
        saw_qconv = true;
        g_alloc_count.store(0);
        g_counting.store(true);
        engine.run_step(i);
        g_counting.store(false);
        EXPECT_EQ(g_alloc_count.load(), 0)
            << "QLinearConv step " << i << " allocated in the steady state";
    }
    EXPECT_TRUE(saw_qconv) << "quantized model contains no QLinearConv";
}

} // namespace
} // namespace orpheus
