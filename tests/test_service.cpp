/**
 * @file
 * Tests for the resource-governed InferenceService: admission control
 * (bounded queue, memory budget), deadline propagation (pre-dispatch
 * shedding and mid-kernel cooperative cancellation), the hang watchdog
 * with backend demotion, and concurrent-caller correctness.
 *
 * Timing-dependent cases use injected delays that are an order of
 * magnitude larger than the thresholds they must cross, so the
 * assertions hold on slow CI machines.
 */
#include "runtime/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/threadpool.hpp"
#include "models/model_zoo.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::make_random;

std::map<std::string, Tensor>
cnn_inputs(std::uint64_t seed)
{
    return {{"input", make_random(Shape({1, 3, 8, 8}), seed)}};
}

/** Spin until the worker has dequeued everything (requests may still
 *  be executing). */
void
wait_for_empty_queue(const InferenceService &service)
{
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (service.queue_depth() > 0 &&
           std::chrono::steady_clock::now() < give_up)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(service.queue_depth(), 0u);
}

// --- Basic serving --------------------------------------------------------

TEST(InferenceService, ServesRequestsBitwiseIdenticalToEngine)
{
    Engine reference(models::tiny_cnn(), {});
    const auto expected = reference.run(cnn_inputs(0x5e01));

    InferenceService service(models::tiny_cnn());
    const InferenceResponse response = service.run(cnn_inputs(0x5e01));

    ASSERT_TRUE(response.status.is_ok()) << response.status.to_string();
    ASSERT_EQ(response.outputs.size(), expected.size());
    for (const auto &[name, tensor] : expected)
        EXPECT_EQ(max_abs_diff(response.outputs.at(name), tensor), 0.0f)
            << name;

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 1);
    EXPECT_EQ(stats.accepted, 1);
    EXPECT_EQ(stats.completed_ok, 1);
}

TEST(InferenceService, InvalidInputSurfacesAsInvalidArgument)
{
    InferenceService service(models::tiny_cnn());
    const InferenceResponse response =
        service.run({{"wrong_name", make_random(Shape({1, 3, 8, 8}))}});
    EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(service.stats().failed, 1);
}

// --- Admission control ----------------------------------------------------

TEST(InferenceService, QueueSaturationReturnsResourceExhausted)
{
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // Stall the first dispatched request long enough to fill the queue
    // behind it deterministically.
    engine_options.fault_injector->arm_delay("", "", /*delay_ms=*/500,
                                             /*delay_from_call=*/0,
                                             /*max_delays=*/1);

    ServiceOptions options;
    options.workers = 1;
    options.max_queue_depth = 1;
    options.enable_watchdog = false;

    InferenceService service(models::tiny_cnn(), engine_options, options);

    auto in_flight = service.submit(cnn_inputs(0x5e10));
    wait_for_empty_queue(service); // The worker is now inside the delay.

    auto queued = service.submit(cnn_inputs(0x5e11));
    auto shed = service.submit(cnn_inputs(0x5e12));

    const InferenceResponse shed_response = shed.get();
    EXPECT_EQ(shed_response.status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(shed_response.run_ms, 0.0);

    EXPECT_TRUE(in_flight.get().status.is_ok());
    EXPECT_TRUE(queued.get().status.is_ok());

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 3);
    EXPECT_EQ(stats.accepted, 2);
    EXPECT_EQ(stats.rejected_queue_full, 1);
    EXPECT_EQ(stats.completed_ok, 2);
}

TEST(InferenceService, MemoryBudgetRejectsOversizedRequestUpFront)
{
    ServiceOptions options;
    options.memory_budget_bytes = 1; // Far below any real footprint.
    InferenceService tight(models::tiny_cnn(), {}, options);
    EXPECT_GT(tight.request_footprint_bytes(), 1u);

    const InferenceResponse response = tight.run(cnn_inputs(0x5e20));
    EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(tight.stats().rejected_memory, 1);

    // A generous budget admits the same request.
    InferenceService roomy(models::tiny_cnn());
    EXPECT_TRUE(roomy
                    .submit(cnn_inputs(0x5e20), DeadlineToken(),
                            /*memory_budget_bytes=*/1u << 30)
                    .get()
                    .status.is_ok());
    // ... and a per-request override can still reject.
    EXPECT_EQ(roomy.submit(cnn_inputs(0x5e20), DeadlineToken(),
                           /*memory_budget_bytes=*/1)
                  .get()
                  .status.code(),
              StatusCode::kResourceExhausted);
}

TEST(InferenceService, StoppedServiceRejectsSubmissions)
{
    InferenceService service(models::tiny_cnn());
    service.stop();
    const InferenceResponse response = service.run(cnn_inputs(0x5e30));
    EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
}

// --- Deadlines ------------------------------------------------------------

TEST(InferenceService, ExpiredDeadlineRejectedBeforeDispatch)
{
    InferenceService service(models::tiny_cnn());
    const InferenceResponse response =
        service.run(cnn_inputs(0x5e40), DeadlineToken::after_ms(0));
    EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(response.run_ms, 0.0);
    EXPECT_EQ(service.stats().deadline_exceeded, 1);
}

TEST(InferenceService, DeadlineExpiringInQueueShedsWithoutExecution)
{
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    engine_options.fault_injector->arm_delay("", "", 500, 0, 1);

    ServiceOptions options;
    options.workers = 1;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), engine_options, options);

    auto in_flight = service.submit(cnn_inputs(0x5e50));
    wait_for_empty_queue(service);
    // Queued behind a 500 ms stall with a 50 ms budget: must be shed at
    // dispatch, not executed.
    auto doomed =
        service.submit(cnn_inputs(0x5e51), DeadlineToken::after_ms(50));

    const InferenceResponse response = doomed.get();
    EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(response.run_ms, 0.0);
    EXPECT_TRUE(in_flight.get().status.is_ok());
}

TEST(InferenceService, MidExecutionDeadlineCancelsInjectedDelay)
{
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // A 10 s stall against a 50 ms deadline: the cancellation-aware
    // delay must abort within its ~1 ms slice granularity, so anything
    // close to the full stall means cancellation failed.
    engine_options.fault_injector->arm_delay("", "", 10'000, 0, 1);

    ServiceOptions options;
    options.workers = 1;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), engine_options, options);

    const auto started = std::chrono::steady_clock::now();
    const InferenceResponse response =
        service.run(cnn_inputs(0x5e60), DeadlineToken::after_ms(50));
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - started;

    EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_LT(elapsed.count(), 5'000.0);
    EXPECT_EQ(engine_options.fault_injector->delays_injected(), 1);
}

TEST(Engine, TryRunMapsExpiredDeadlineToStatus)
{
    Engine engine(models::tiny_cnn(), {});
    std::map<std::string, Tensor> outputs;
    const Status status = engine.try_run(cnn_inputs(0x5e70), outputs,
                                         DeadlineToken::after_ms(0));
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(outputs.empty());
}

// --- Watchdog -------------------------------------------------------------

TEST(InferenceService, WatchdogCancelsHungStepAndDemotesBackend)
{
    EngineOptions engine_options;
    engine_options.backend.forced_impl["Conv"] = "im2col_gemm";
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // Wedge the first im2col_gemm invocation for 10 s; only the
    // watchdog can unblock it (the request has no deadline).
    engine_options.fault_injector->arm_delay("", "im2col_gemm", 10'000, 0,
                                             1);

    ServiceOptions options;
    options.workers = 1;
    options.hang_threshold_ms = 50;
    options.watchdog_poll_ms = 5;

    InferenceService service(models::tiny_cnn(), engine_options, options);

    const auto started = std::chrono::steady_clock::now();
    const InferenceResponse hung = service.run(cnn_inputs(0x5e80));
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - started;

    // The wedged request was cancelled well before the 10 s stall.
    EXPECT_EQ(hung.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_LT(elapsed.count(), 5'000.0);

    // The next request runs on the demoted (reference) kernel.
    const InferenceResponse next = service.run(cnn_inputs(0x5e81));
    ASSERT_TRUE(next.status.is_ok()) << next.status.to_string();

    const ServiceStats stats = service.stats();
    EXPECT_GE(stats.watchdog_hangs, 1);
    EXPECT_GE(stats.demotions, 1);

    bool saw_demoted_conv = false;
    for (const PlanStep &step : service.engine().steps()) {
        if (step.op_type == "Conv" && step.degraded) {
            saw_demoted_conv = true;
            EXPECT_NE(step.layer->impl_name(), "im2col_gemm");
        }
    }
    EXPECT_TRUE(saw_demoted_conv);
}

// --- Guarded serving ------------------------------------------------------

TEST(InferenceService, GuardStopsCorruptedRequestsThenBreakerRecoversService)
{
    EngineOptions engine_options;
    engine_options.backend.forced_impl["Conv"] = "im2col_gemm";
    engine_options.guard.enabled = true;
    engine_options.guard.open_after_trips = 2;
    engine_options.guard.cooldown_ms = 1e9; // Breaker stays open.
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // Poison the first two im2col_gemm invocations; with
    // fail_on_corruption the first two requests each die at the first
    // conv, so exactly two requests observe corruption.
    engine_options.fault_injector->arm_corruption(
        "", "im2col_gemm", CorruptionKind::kNaNPoke, 0, 2);

    ServiceOptions options;
    options.workers = 1;

    InferenceService service(models::tiny_cnn(), engine_options, options);

    const InferenceResponse first = service.run(cnn_inputs(0x9a01));
    EXPECT_EQ(first.status.code(), StatusCode::kDataCorruption)
        << first.status.to_string();
    EXPECT_TRUE(first.outputs.empty())
        << "corrupted data must never be served";

    const InferenceResponse second = service.run(cnn_inputs(0x9a02));
    EXPECT_EQ(second.status.code(), StatusCode::kDataCorruption);

    // The breaker is now open and routes the poisoned kernel to the
    // reference implementation: the service heals without restart.
    const InferenceResponse healed = service.run(cnn_inputs(0x9a03));
    ASSERT_TRUE(healed.status.is_ok()) << healed.status.to_string();
    ASSERT_EQ(healed.outputs.size(), 1u);

    Engine reference(models::tiny_cnn(), {});
    const auto expected = reference.run(cnn_inputs(0x9a03));
    testing::expect_close(healed.outputs.begin()->second,
                          expected.begin()->second, 1e-4f, 1e-3f);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.data_corruption, 2);
    EXPECT_GE(stats.completed_ok, 1);
    EXPECT_EQ(engine_options.fault_injector->corruptions_injected(), 2);
}

// --- Concurrency ----------------------------------------------------------

TEST(InferenceService, ConcurrentCallersMatchSerialEngineBitwise)
{
    constexpr int kRequests = 16;

    // Kernel-level parallelism on the shared global pool at the same
    // time as request-level parallelism across workers.
    set_global_num_threads(2);

    Engine reference(models::tiny_cnn(), {});
    std::vector<std::map<std::string, Tensor>> expected;
    expected.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i)
        expected.push_back(
            reference.run(cnn_inputs(0x6000 + static_cast<unsigned>(i))));

    ServiceOptions options;
    options.workers = 4;
    options.max_queue_depth = kRequests;
    InferenceService service(models::tiny_cnn(), {}, options);

    std::vector<std::future<InferenceResponse>> futures;
    futures.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(service.submit(
            cnn_inputs(0x6000 + static_cast<unsigned>(i))));

    for (int i = 0; i < kRequests; ++i) {
        const InferenceResponse response = futures[static_cast<std::size_t>(
            i)].get();
        ASSERT_TRUE(response.status.is_ok())
            << i << ": " << response.status.to_string();
        for (const auto &[name, tensor] :
             expected[static_cast<std::size_t>(i)])
            EXPECT_EQ(max_abs_diff(response.outputs.at(name), tensor),
                      0.0f)
                << "request " << i << ", output " << name;
    }
    EXPECT_EQ(service.stats().completed_ok, kRequests);

    set_global_num_threads(1);
}

TEST(InferenceService, StopFailsQueuedRequests)
{
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    engine_options.fault_injector->arm_delay("", "", 200, 0, 1);

    ServiceOptions options;
    options.workers = 1;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), engine_options, options);

    auto in_flight = service.submit(cnn_inputs(0x5e90));
    wait_for_empty_queue(service);
    auto queued = service.submit(cnn_inputs(0x5e91));

    service.stop();

    // The in-flight request completes; the queued one is failed.
    EXPECT_TRUE(in_flight.get().status.is_ok());
    EXPECT_EQ(queued.get().status.code(),
              StatusCode::kFailedPrecondition);
}

} // namespace
} // namespace orpheus
