/**
 * @file
 * Tests for the resource-governed InferenceService: admission control
 * (bounded queue, memory budget), deadline propagation (pre-dispatch
 * shedding and mid-kernel cooperative cancellation), the hang watchdog
 * with backend demotion, and concurrent-caller correctness.
 *
 * Timing-dependent cases use injected delays that are an order of
 * magnitude larger than the thresholds they must cross, so the
 * assertions hold on slow CI machines.
 */
#include "runtime/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/threadpool.hpp"
#include "graph/node.hpp"
#include "models/model_zoo.hpp"
#include "quant/quantizer.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::make_random;

std::map<std::string, Tensor>
cnn_inputs(std::uint64_t seed)
{
    return {{"input", make_random(Shape({1, 3, 8, 8}), seed)}};
}

/** Spin until the worker has dequeued everything (requests may still
 *  be executing). */
void
wait_for_empty_queue(const InferenceService &service)
{
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (service.queue_depth() > 0 &&
           std::chrono::steady_clock::now() < give_up)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(service.queue_depth(), 0u);
}

// --- Basic serving --------------------------------------------------------

TEST(InferenceService, ServesRequestsBitwiseIdenticalToEngine)
{
    Engine reference(models::tiny_cnn(), {});
    const auto expected = reference.run(cnn_inputs(0x5e01));

    InferenceService service(models::tiny_cnn());
    const InferenceResponse response = service.run(cnn_inputs(0x5e01));

    ASSERT_TRUE(response.status.is_ok()) << response.status.to_string();
    ASSERT_EQ(response.outputs.size(), expected.size());
    for (const auto &[name, tensor] : expected)
        EXPECT_EQ(max_abs_diff(response.outputs.at(name), tensor), 0.0f)
            << name;

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 1);
    EXPECT_EQ(stats.accepted, 1);
    EXPECT_EQ(stats.completed_ok, 1);
}

TEST(InferenceService, InvalidInputSurfacesAsInvalidArgument)
{
    InferenceService service(models::tiny_cnn());
    const InferenceResponse response =
        service.run({{"wrong_name", make_random(Shape({1, 3, 8, 8}))}});
    EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(service.stats().failed, 1);
}

// --- Admission control ----------------------------------------------------

TEST(InferenceService, QueueSaturationReturnsResourceExhausted)
{
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // Stall the first dispatched request long enough to fill the queue
    // behind it deterministically.
    engine_options.fault_injector->arm_delay("", "", /*delay_ms=*/500,
                                             /*delay_from_call=*/0,
                                             /*max_delays=*/1);

    ServiceOptions options;
    options.workers = 1;
    options.max_queue_depth = 1;
    options.enable_watchdog = false;

    InferenceService service(models::tiny_cnn(), engine_options, options);

    auto in_flight = service.submit(cnn_inputs(0x5e10));
    wait_for_empty_queue(service); // The worker is now inside the delay.

    auto queued = service.submit(cnn_inputs(0x5e11));
    auto shed = service.submit(cnn_inputs(0x5e12));

    const InferenceResponse shed_response = shed.get();
    EXPECT_EQ(shed_response.status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(shed_response.run_ms, 0.0);

    EXPECT_TRUE(in_flight.get().status.is_ok());
    EXPECT_TRUE(queued.get().status.is_ok());

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 3);
    EXPECT_EQ(stats.accepted, 2);
    EXPECT_EQ(stats.rejected_queue_full, 1);
    EXPECT_EQ(stats.completed_ok, 2);
}

TEST(InferenceService, MemoryBudgetRejectsOversizedRequestUpFront)
{
    ServiceOptions options;
    options.memory_budget_bytes = 1; // Far below any real footprint.
    InferenceService tight(models::tiny_cnn(), {}, options);
    EXPECT_GT(tight.request_footprint_bytes(), 1u);

    const InferenceResponse response = tight.run(cnn_inputs(0x5e20));
    EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(tight.stats().rejected_memory, 1);

    // A generous budget admits the same request.
    InferenceService roomy(models::tiny_cnn());
    EXPECT_TRUE(roomy
                    .submit(cnn_inputs(0x5e20), DeadlineToken(),
                            /*memory_budget_bytes=*/1u << 30)
                    .get()
                    .status.is_ok());
    // ... and a per-request override can still reject.
    EXPECT_EQ(roomy.submit(cnn_inputs(0x5e20), DeadlineToken(),
                           /*memory_budget_bytes=*/1)
                  .get()
                  .status.code(),
              StatusCode::kResourceExhausted);
}

TEST(InferenceService, StoppedServiceRejectsSubmissions)
{
    InferenceService service(models::tiny_cnn());
    service.stop();
    const InferenceResponse response = service.run(cnn_inputs(0x5e30));
    EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
}

// --- Deadlines ------------------------------------------------------------

TEST(InferenceService, ExpiredDeadlineRejectedBeforeDispatch)
{
    InferenceService service(models::tiny_cnn());
    const InferenceResponse response =
        service.run(cnn_inputs(0x5e40), DeadlineToken::after_ms(0));
    EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(response.run_ms, 0.0);
    EXPECT_EQ(service.stats().deadline_exceeded, 1);
}

TEST(InferenceService, DeadlineExpiringInQueueShedsWithoutExecution)
{
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    engine_options.fault_injector->arm_delay("", "", 500, 0, 1);

    ServiceOptions options;
    options.workers = 1;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), engine_options, options);

    auto in_flight = service.submit(cnn_inputs(0x5e50));
    wait_for_empty_queue(service);
    // Queued behind a 500 ms stall with a 50 ms budget: must be shed at
    // dispatch, not executed.
    auto doomed =
        service.submit(cnn_inputs(0x5e51), DeadlineToken::after_ms(50));

    const InferenceResponse response = doomed.get();
    EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(response.run_ms, 0.0);
    EXPECT_TRUE(in_flight.get().status.is_ok());
}

TEST(InferenceService, MidExecutionDeadlineCancelsInjectedDelay)
{
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // A 10 s stall against a 50 ms deadline: the cancellation-aware
    // delay must abort within its ~1 ms slice granularity, so anything
    // close to the full stall means cancellation failed.
    engine_options.fault_injector->arm_delay("", "", 10'000, 0, 1);

    ServiceOptions options;
    options.workers = 1;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), engine_options, options);

    const auto started = std::chrono::steady_clock::now();
    const InferenceResponse response =
        service.run(cnn_inputs(0x5e60), DeadlineToken::after_ms(50));
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - started;

    EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_LT(elapsed.count(), 5'000.0);
    EXPECT_EQ(engine_options.fault_injector->delays_injected(), 1);
}

TEST(Engine, TryRunMapsExpiredDeadlineToStatus)
{
    Engine engine(models::tiny_cnn(), {});
    std::map<std::string, Tensor> outputs;
    const Status status = engine.try_run(cnn_inputs(0x5e70), outputs,
                                         DeadlineToken::after_ms(0));
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(outputs.empty());
}

// --- Watchdog -------------------------------------------------------------

TEST(InferenceService, WatchdogCancelsHungStepAndDemotesBackend)
{
    EngineOptions engine_options;
    engine_options.backend.forced_impl["Conv"] = "im2col_gemm";
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // Wedge the first im2col_gemm invocation for 10 s; only the
    // watchdog can unblock it (the request has no deadline).
    engine_options.fault_injector->arm_delay("", "im2col_gemm", 10'000, 0,
                                             1);

    ServiceOptions options;
    options.workers = 1;
    options.hang_threshold_ms = 50;
    options.watchdog_poll_ms = 5;

    InferenceService service(models::tiny_cnn(), engine_options, options);

    const auto started = std::chrono::steady_clock::now();
    const InferenceResponse hung = service.run(cnn_inputs(0x5e80));
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - started;

    // The wedged request was cancelled well before the 10 s stall.
    EXPECT_EQ(hung.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_LT(elapsed.count(), 5'000.0);

    // The next request runs on the demoted (reference) kernel.
    const InferenceResponse next = service.run(cnn_inputs(0x5e81));
    ASSERT_TRUE(next.status.is_ok()) << next.status.to_string();

    const ServiceStats stats = service.stats();
    EXPECT_GE(stats.watchdog_hangs, 1);
    EXPECT_GE(stats.demotions, 1);

    bool saw_demoted_conv = false;
    for (const PlanStep &step : service.engine().steps()) {
        if (step.op_type == "Conv" && step.degraded) {
            saw_demoted_conv = true;
            EXPECT_NE(step.layer->impl_name(), "im2col_gemm");
        }
    }
    EXPECT_TRUE(saw_demoted_conv);
}

// --- Guarded serving ------------------------------------------------------

TEST(InferenceService, GuardStopsCorruptedRequestsThenBreakerRecoversService)
{
    EngineOptions engine_options;
    engine_options.backend.forced_impl["Conv"] = "im2col_gemm";
    engine_options.guard.enabled = true;
    engine_options.guard.open_after_trips = 2;
    engine_options.guard.cooldown_ms = 1e9; // Breaker stays open.
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // Poison the first two im2col_gemm invocations; with
    // fail_on_corruption the first two requests each die at the first
    // conv, so exactly two requests observe corruption.
    engine_options.fault_injector->arm_corruption(
        "", "im2col_gemm", CorruptionKind::kNaNPoke, 0, 2);

    ServiceOptions options;
    options.workers = 1;

    InferenceService service(models::tiny_cnn(), engine_options, options);

    const InferenceResponse first = service.run(cnn_inputs(0x9a01));
    EXPECT_EQ(first.status.code(), StatusCode::kDataCorruption)
        << first.status.to_string();
    EXPECT_TRUE(first.outputs.empty())
        << "corrupted data must never be served";

    const InferenceResponse second = service.run(cnn_inputs(0x9a02));
    EXPECT_EQ(second.status.code(), StatusCode::kDataCorruption);

    // The breaker is now open and routes the poisoned kernel to the
    // reference implementation: the service heals without restart.
    const InferenceResponse healed = service.run(cnn_inputs(0x9a03));
    ASSERT_TRUE(healed.status.is_ok()) << healed.status.to_string();
    ASSERT_EQ(healed.outputs.size(), 1u);

    Engine reference(models::tiny_cnn(), {});
    const auto expected = reference.run(cnn_inputs(0x9a03));
    testing::expect_close(healed.outputs.begin()->second,
                          expected.begin()->second, 1e-4f, 1e-3f);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.data_corruption, 2);
    EXPECT_GE(stats.completed_ok, 1);
    EXPECT_EQ(engine_options.fault_injector->corruptions_injected(), 2);
}

// --- Concurrency ----------------------------------------------------------

TEST(InferenceService, ConcurrentCallersMatchSerialEngineBitwise)
{
    constexpr int kRequests = 16;

    // Kernel-level parallelism on the shared global pool at the same
    // time as request-level parallelism across workers.
    set_global_num_threads(2);

    Engine reference(models::tiny_cnn(), {});
    std::vector<std::map<std::string, Tensor>> expected;
    expected.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i)
        expected.push_back(
            reference.run(cnn_inputs(0x6000 + static_cast<unsigned>(i))));

    ServiceOptions options;
    options.workers = 4;
    options.max_queue_depth = kRequests;
    InferenceService service(models::tiny_cnn(), {}, options);

    std::vector<std::future<InferenceResponse>> futures;
    futures.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(service.submit(
            cnn_inputs(0x6000 + static_cast<unsigned>(i))));

    for (int i = 0; i < kRequests; ++i) {
        const InferenceResponse response = futures[static_cast<std::size_t>(
            i)].get();
        ASSERT_TRUE(response.status.is_ok())
            << i << ": " << response.status.to_string();
        for (const auto &[name, tensor] :
             expected[static_cast<std::size_t>(i)])
            EXPECT_EQ(max_abs_diff(response.outputs.at(name), tensor),
                      0.0f)
                << "request " << i << ", output " << name;
    }
    EXPECT_EQ(service.stats().completed_ok, kRequests);

    set_global_num_threads(1);
}

// --- Latency classes ------------------------------------------------------

TEST(InferenceService, RealtimeDispatchesBeforeInteractiveAndBatch)
{
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // Every request stalls 200 ms at its first conv, spacing
    // completions far apart relative to scheduling jitter.
    engine_options.fault_injector->arm_delay("Conv_0", "", 200, 0, -1);

    ServiceOptions options;
    options.workers = 1;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), engine_options, options);

    auto stall = service.submit(cnn_inputs(0x7a00));
    wait_for_empty_queue(service); // The worker is inside the stall.

    // Submission order is batch, interactive, real-time; pop order
    // must be class order. Each dispatch runs 200 ms, so "the others
    // are still pending when this one resolves" has a wide margin.
    auto batch = service.submit(cnn_inputs(0x7a01), DeadlineToken(), 0,
                                RequestPriority::kBatch);
    auto interactive = service.submit(cnn_inputs(0x7a02));
    auto realtime = service.submit(cnn_inputs(0x7a03), DeadlineToken(), 0,
                                   RequestPriority::kRealtime);

    EXPECT_TRUE(realtime.get().status.is_ok());
    EXPECT_EQ(interactive.wait_for(std::chrono::seconds(0)),
              std::future_status::timeout);
    EXPECT_EQ(batch.wait_for(std::chrono::seconds(0)),
              std::future_status::timeout);
    EXPECT_TRUE(interactive.get().status.is_ok());
    EXPECT_EQ(batch.wait_for(std::chrono::seconds(0)),
              std::future_status::timeout);
    EXPECT_TRUE(batch.get().status.is_ok());
    EXPECT_TRUE(stall.get().status.is_ok());

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.class_count[priority_index(RequestPriority::kRealtime)],
              1);
    EXPECT_EQ(
        stats.class_count[priority_index(RequestPriority::kInteractive)],
        2);
    EXPECT_EQ(stats.class_count[priority_index(RequestPriority::kBatch)],
              1);
    EXPECT_GT(stats.class_p50_ms[priority_index(RequestPriority::kRealtime)],
              0.0);
}

TEST(InferenceService, AgingCreditPreventsBatchStarvation)
{
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    engine_options.fault_injector->arm_delay("Conv_0", "", 150, 0, -1);

    ServiceOptions options;
    options.workers = 1;
    options.enable_watchdog = false;
    options.aging_credit_limit = 2;
    InferenceService service(models::tiny_cnn(), engine_options, options);

    auto stall = service.submit(cnn_inputs(0x7b00));
    wait_for_empty_queue(service);

    auto batch = service.submit(cnn_inputs(0x7b01), DeadlineToken(), 0,
                                RequestPriority::kBatch);
    auto i1 = service.submit(cnn_inputs(0x7b02));
    auto i2 = service.submit(cnn_inputs(0x7b03));
    auto i3 = service.submit(cnn_inputs(0x7b04));

    // Strict priority pops i1 and i2 first, each bypass earning the
    // batch lane one credit; at the limit of 2 the batch request gets
    // the next pop, overtaking i3.
    EXPECT_TRUE(batch.get().status.is_ok());
    EXPECT_EQ(i3.wait_for(std::chrono::seconds(0)),
              std::future_status::timeout)
        << "the aged batch request must overtake the last interactive one";
    EXPECT_TRUE(i1.get().status.is_ok());
    EXPECT_TRUE(i2.get().status.is_ok());
    EXPECT_TRUE(i3.get().status.is_ok());
    EXPECT_TRUE(stall.get().status.is_ok());
    EXPECT_EQ(
        service.stats().class_count[priority_index(RequestPriority::kBatch)],
        1);
}

TEST(InferenceService, ExpiredDeadlineRejectedAtSubmitWithoutQueueing)
{
    InferenceService service(models::tiny_cnn());

    const auto started = std::chrono::steady_clock::now();
    auto doomed =
        service.submit(cnn_inputs(0x7c00), DeadlineToken::after_ms(0));
    const std::chrono::duration<double, std::milli> submit_ms =
        std::chrono::steady_clock::now() - started;

    // Admission-time rejection: the future is already resolved when
    // submit() returns — no queueing, no dispatch, no worker involved.
    ASSERT_EQ(doomed.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const InferenceResponse response = doomed.get();
    EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(response.queue_ms, 0.0);
    EXPECT_EQ(response.run_ms, 0.0);
    EXPECT_LT(submit_ms.count(), 50.0); // Sub-ms in practice; CI slack.

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.accepted, 0);
    EXPECT_EQ(stats.deadline_exceeded, 1);
    EXPECT_EQ(stats.rejected_infeasible, 1);
    EXPECT_EQ(
        stats.class_infeasible[priority_index(RequestPriority::kInteractive)],
        1);
}

TEST(InferenceService, InfeasibleQueueWaitRejectedAtSubmit)
{
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // Every request stalls ~100 ms at its first conv, so the
    // interactive service-time P50 dwarfs the doomed request's 10 ms
    // budget.
    engine_options.fault_injector->arm_delay("Conv_0", "", 100, 0, -1);

    ServiceOptions options;
    options.workers = 1;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), engine_options, options);

    // Warm the interactive service-time estimate.
    ASSERT_TRUE(service.run(cnn_inputs(0x7d00)).status.is_ok());

    auto in_flight = service.submit(cnn_inputs(0x7d01));
    wait_for_empty_queue(service);
    auto queued = service.submit(cnn_inputs(0x7d02));

    // One queued interactive request ahead (~100 ms estimated wait)
    // against a 10 ms budget: refused at submit, before any dispatch.
    auto doomed =
        service.submit(cnn_inputs(0x7d03), DeadlineToken::after_ms(10));
    ASSERT_EQ(doomed.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(doomed.get().status.code(), StatusCode::kDeadlineExceeded);

    // The real-time lane is empty, so the same budget is feasible
    // there: admitted at submit; the miss (the in-flight stall
    // outlasts it) is charged to the class at dispatch instead.
    auto realtime =
        service.submit(cnn_inputs(0x7d04), DeadlineToken::after_ms(10), 0,
                       RequestPriority::kRealtime);
    const InferenceResponse rt = realtime.get();
    EXPECT_EQ(rt.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(rt.run_ms, 0.0);

    EXPECT_TRUE(in_flight.get().status.is_ok());
    EXPECT_TRUE(queued.get().status.is_ok());

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.rejected_infeasible, 1);
    EXPECT_EQ(
        stats.class_infeasible[priority_index(RequestPriority::kInteractive)],
        1);
    EXPECT_EQ(stats.class_deadline_miss[priority_index(
                  RequestPriority::kRealtime)],
              1);
    EXPECT_EQ(stats.completed_ok, 3);
}

TEST(InferenceService, RetrySkippedWhenBackoffOutlastsDeadline)
{
    EngineOptions engine_options;
    engine_options.guard.enabled = true;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // Corrupt every kernel invocation: the first attempt fails fast
    // with kDataCorruption, which is retryable.
    engine_options.fault_injector->arm_corruption(
        "", "", CorruptionKind::kNaNPoke, 0, -1);

    ServiceOptions options;
    options.workers = 1;
    options.replicas = 2;
    options.max_retries = 3;
    options.retry_budget = 1.0;
    // Backoff >= 200 ms even at minimum jitter, far above the budget.
    options.retry_backoff_ms = 400;
    options.retry_backoff_max_ms = 600;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), engine_options, options);

    const InferenceResponse response =
        service.run(cnn_inputs(0x7e00), DeadlineToken::after_ms(100));

    // The first attempt failed with most of the 100 ms still on the
    // clock, but the smallest possible backoff already outlasts it:
    // the request fails as a deadline miss without burning a retry
    // token or a second replica lease.
    EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(response.retries, 0);
    EXPECT_FALSE(response.retry_denied_by_budget);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.retries, 0);
    EXPECT_EQ(stats.retry_budget_denied, 0);
    EXPECT_EQ(stats.deadline_exceeded, 1);
    EXPECT_EQ(engine_options.fault_injector->corruptions_injected(), 1);
}

TEST(InferenceService, RealtimeRetriesBypassTheTokenBucket)
{
    auto injector = std::make_shared<FaultInjector>();
    EngineOptions engine_options;
    engine_options.guard.enabled = true;
    engine_options.fault_injector = injector;

    ServiceOptions options;
    options.workers = 1;
    options.replicas = 2;
    options.max_retries = 2;
    // The bucket cap clamps to a single token; each dispatched
    // request earns back only 0.001 of one.
    options.retry_budget = 0.001;
    options.retry_backoff_ms = 1;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), engine_options, options);

    // Drain the single token: the first interactive request corrupts
    // once, retries on the other replica, and succeeds.
    injector->arm_corruption("", "", CorruptionKind::kNaNPoke, 0, 1);
    const InferenceResponse drain = service.run(cnn_inputs(0x7f00));
    ASSERT_TRUE(drain.status.is_ok()) << drain.status.to_string();
    EXPECT_EQ(drain.retries, 1);

    // An interactive request now finds the bucket empty: the retry is
    // denied and the corruption surfaces.
    injector->arm_corruption("", "", CorruptionKind::kNaNPoke, 0, 1);
    const InferenceResponse denied = service.run(cnn_inputs(0x7f01));
    EXPECT_EQ(denied.status.code(), StatusCode::kDataCorruption);
    EXPECT_TRUE(denied.retry_denied_by_budget);

    // The same failure on a real-time request retries anyway.
    injector->arm_corruption("", "", CorruptionKind::kNaNPoke, 0, 1);
    const InferenceResponse rt = service.run(
        cnn_inputs(0x7f02), DeadlineToken(), RequestPriority::kRealtime);
    ASSERT_TRUE(rt.status.is_ok()) << rt.status.to_string();
    EXPECT_EQ(rt.retries, 1);
    EXPECT_FALSE(rt.retry_denied_by_budget);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.retries, 2);
    EXPECT_EQ(stats.retry_budget_denied, 1);
}

TEST(InferenceService, BrownoutShedsBatchButServesRealtime)
{
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    engine_options.fault_injector->arm_delay("Conv_0", "", 200, 0, -1);

    ServiceOptions options;
    options.workers = 1;
    options.enable_watchdog = false;
    options.enable_brownout = true;
    options.brownout_high_watermark = 2;
    options.brownout_low_watermark = 1;
    InferenceService service(models::tiny_cnn(), engine_options, options);

    auto stall = service.submit(cnn_inputs(0x8000));
    wait_for_empty_queue(service);

    auto b1 = service.submit(cnn_inputs(0x8001), DeadlineToken(), 0,
                             RequestPriority::kBatch);
    auto b2 = service.submit(cnn_inputs(0x8002), DeadlineToken(), 0,
                             RequestPriority::kBatch);
    auto b3 = service.submit(cnn_inputs(0x8003), DeadlineToken(), 0,
                             RequestPriority::kBatch);
    EXPECT_TRUE(service.browned_out()); // Depth 3 >= high watermark 2.
    auto rt = service.submit(cnn_inputs(0x8004), DeadlineToken(), 0,
                             RequestPriority::kRealtime);

    // Pop order under brownout: the real-time request dispatches
    // (never shed), b1 pops at depth 2 > low and is shed, popping b2
    // drops the queue to the low watermark so brownout exits and b2
    // and b3 run normally.
    EXPECT_TRUE(rt.get().status.is_ok());
    const InferenceResponse shed = b1.get();
    EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(shed.run_ms, 0.0);
    EXPECT_TRUE(b2.get().status.is_ok());
    EXPECT_TRUE(b3.get().status.is_ok());
    EXPECT_TRUE(stall.get().status.is_ok());
    EXPECT_FALSE(service.browned_out());

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.brownout_entered, 1);
    EXPECT_EQ(stats.brownout_exited, 1);
    EXPECT_EQ(stats.brownout_shed, 1);
    EXPECT_EQ(stats.class_shed[priority_index(RequestPriority::kBatch)], 1);
    EXPECT_EQ(stats.class_shed[priority_index(RequestPriority::kRealtime)],
              0);
    EXPECT_EQ(stats.completed_ok, 4);
}

TEST(InferenceService, ConcurrentClassAccountingStaysConsistent)
{
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // A small uniform stall keeps a backlog, so queue-full rejection,
    // feasibility admission and brownout all engage while the stats
    // surfaces are read hot from another thread.
    engine_options.fault_injector->arm_delay("", "", 2, 0, -1);

    ServiceOptions options;
    options.workers = 2;
    options.replicas = 2;
    options.max_queue_depth = 8;
    options.enable_brownout = true;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), engine_options, options);

    constexpr int kPerClass = 40;
    const RequestPriority classes[kPriorityClasses] = {
        RequestPriority::kRealtime, RequestPriority::kInteractive,
        RequestPriority::kBatch};
    std::vector<std::future<InferenceResponse>> futures[kPriorityClasses];
    std::atomic<bool> done{false};

    std::thread reader([&] {
        while (!done.load()) {
            const ServiceStats snapshot = service.stats();
            EXPECT_LE(snapshot.completed_ok, snapshot.accepted);
            (void)service.queue_depth();
            (void)service.queue_depth(RequestPriority::kRealtime);
            (void)service.browned_out();
            std::this_thread::yield();
        }
    });

    std::thread submitters[kPriorityClasses];
    for (std::size_t c = 0; c < kPriorityClasses; ++c) {
        futures[c].reserve(kPerClass);
        submitters[c] = std::thread([&service, &futures, &classes, c] {
            for (int i = 0; i < kPerClass; ++i) {
                // Every fourth request carries a budget that cannot
                // survive a backlog, exercising the infeasible and
                // deadline-miss paths alongside the happy one.
                DeadlineToken token = (i % 4 == 3)
                                          ? DeadlineToken::after_ms(1)
                                          : DeadlineToken();
                futures[c].push_back(service.submit(
                    cnn_inputs(0x8100 + static_cast<unsigned>(i)),
                    std::move(token), 0, classes[c]));
            }
        });
    }
    for (std::thread &submitter : submitters)
        submitter.join();
    for (auto &lane : futures)
        for (auto &future : lane)
            (void)future.get(); // Every promise resolved => counters final.
    done.store(true);
    reader.join();

    const ServiceStats stats = service.stats();
    const std::int64_t total = 3 * kPerClass;
    EXPECT_EQ(stats.submitted, total);
    // Admission partitions submissions exactly.
    EXPECT_EQ(stats.accepted + stats.rejected_queue_full +
                  stats.rejected_infeasible,
              total);
    // Workers account for every accepted request exactly once: it is
    // either finished (per-class histogram) or shed.
    std::int64_t finished = 0, shed = 0, missed = 0, infeasible = 0;
    for (std::size_t c = 0; c < kPriorityClasses; ++c) {
        finished += stats.class_count[c];
        shed += stats.class_shed[c];
        missed += stats.class_deadline_miss[c];
        infeasible += stats.class_infeasible[c];
    }
    EXPECT_EQ(finished + shed, stats.accepted);
    EXPECT_EQ(shed, stats.brownout_shed);
    EXPECT_EQ(infeasible, stats.rejected_infeasible);
    // Finished requests split into successes and SLO misses.
    EXPECT_EQ(stats.failed, 0);
    EXPECT_EQ(stats.data_corruption, 0);
    EXPECT_EQ(finished, stats.completed_ok + missed);
    EXPECT_EQ(stats.deadline_exceeded, stats.rejected_infeasible + missed);
    // Real-time work is never shed.
    EXPECT_EQ(stats.class_shed[priority_index(RequestPriority::kRealtime)],
              0);
}

TEST(InferenceService, StopFailsQueuedRequests)
{
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    engine_options.fault_injector->arm_delay("", "", 200, 0, 1);

    ServiceOptions options;
    options.workers = 1;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), engine_options, options);

    auto in_flight = service.submit(cnn_inputs(0x5e90));
    wait_for_empty_queue(service);
    auto queued = service.submit(cnn_inputs(0x5e91));

    service.stop();

    // The in-flight request completes; the queued one is failed.
    EXPECT_TRUE(in_flight.get().status.is_ok());
    EXPECT_EQ(queued.get().status.code(),
              StatusCode::kFailedPrecondition);
}

// --- Dynamic batching -------------------------------------------------------

std::map<std::string, Tensor>
random_request(const Engine &engine, std::uint64_t seed)
{
    std::map<std::string, Tensor> inputs;
    for (const auto &info : engine.request_inputs())
        inputs[info.name] = make_random(info.shape, seed++);
    return inputs;
}

TEST(EngineBatching, BatchedRunsBitwiseEqualSequentialAcrossBackends)
{
    set_global_num_threads(1);
    // conv-, gemm- and quantized-conv-dominated models: the fused run
    // must reuse the same kernels over the same per-sample layouts, so
    // outputs are bitwise identical to sequential execution.
    std::vector<std::pair<std::string, Graph>> cases;
    cases.emplace_back("conv", models::tiny_cnn());
    cases.emplace_back("gemm", models::tiny_mlp());
    QuantizationOptions quant_options;
    quant_options.calibration_runs = 2;
    cases.emplace_back(
        "qconv", quantize_model(Graph(models::tiny_cnn()), quant_options));

    for (auto &[label, graph] : cases) {
        Engine reference(Graph(graph), {});
        EngineOptions batched_options;
        batched_options.max_batch = 4;
        Engine batched(Graph(graph), batched_options);
        ASSERT_EQ(batched.batch_capacity(), 4)
            << label << ": " << batched.batch_fallback_reason();

        for (const std::size_t n : {std::size_t{1}, std::size_t{3},
                                    std::size_t{4}}) {
            std::vector<std::map<std::string, Tensor>> requests;
            std::vector<const std::map<std::string, Tensor> *> pointers;
            for (std::size_t r = 0; r < n; ++r)
                requests.push_back(random_request(
                    reference, 0xba7c0 + 16 * n + 4 * r));
            for (const auto &request : requests)
                pointers.push_back(&request);

            const auto results = batched.run_batch(pointers);
            ASSERT_EQ(results.size(), n) << label << " n=" << n;
            for (std::size_t r = 0; r < n; ++r) {
                const auto expected = reference.run(requests[r]);
                ASSERT_EQ(results[r].size(), expected.size());
                for (const auto &[name, tensor] : expected)
                    EXPECT_EQ(max_abs_diff(results[r].at(name), tensor),
                              0.0f)
                        << label << " n=" << n << " request " << r
                        << " output " << name;
            }
        }
    }
}

TEST(EngineBatching, SampleMixingOpFallsBackToSingleRequest)
{
    // Softmax over axis 0 mixes samples once requests are stacked
    // along the batch dimension: the engine must refuse to batch and
    // keep serving single requests.
    Graph graph("softmax_axis0");
    graph.add_input("x", Shape({4, 8}));
    AttributeMap attrs;
    attrs.set("axis", std::int64_t{0});
    graph.add_node(op_names::kSoftmax, {"x"}, {"y"}, attrs);
    graph.add_output("y");

    EngineOptions options;
    options.max_batch = 4;
    Engine engine(std::move(graph), options);
    EXPECT_EQ(engine.batch_capacity(), 1);
    EXPECT_FALSE(engine.batch_fallback_reason().empty());

    const auto outputs =
        engine.run({{"x", make_random(Shape({4, 8}), 0xa51)}});
    EXPECT_EQ(outputs.count("y"), 1u);
}

TEST(InferenceService, BatchedServingMatchesEngineAndFormsBatches)
{
    set_global_num_threads(1);
    Engine reference(models::tiny_cnn(), {});

    ServiceOptions options;
    options.workers = 1;
    options.max_batch = 4;
    options.batch_window_ms = 200;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), {}, options);

    std::vector<std::future<InferenceResponse>> futures;
    for (unsigned i = 0; i < 4; ++i)
        futures.push_back(service.submit(cnn_inputs(0xb100 + i)));
    for (unsigned i = 0; i < 4; ++i) {
        const InferenceResponse response = futures[i].get();
        ASSERT_TRUE(response.status.is_ok())
            << response.status.to_string();
        const auto expected = reference.run(cnn_inputs(0xb100 + i));
        for (const auto &[name, tensor] : expected)
            EXPECT_EQ(max_abs_diff(response.outputs.at(name), tensor),
                      0.0f)
                << "request " << i << " output " << name;
    }

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed_ok, 4);
    EXPECT_GE(stats.batches_formed, 1);
    EXPECT_GE(stats.batched_requests, 2);
    EXPECT_LE(stats.batch_max_occupancy, 4);
    EXPECT_GE(stats.batch_mean_occupancy, 2.0);
    EXPECT_EQ(stats.batch_splits, 0);
}

TEST(InferenceService, RealtimeNeverWaitsOnBatchWindow)
{
    ServiceOptions options;
    options.workers = 1;
    options.max_batch = 4;
    options.batch_window_ms = 5000;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), {}, options);

    const auto started = std::chrono::steady_clock::now();
    const InferenceResponse response =
        service.run(cnn_inputs(0xb200), DeadlineToken(),
                    RequestPriority::kRealtime);
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - started;

    ASSERT_TRUE(response.status.is_ok()) << response.status.to_string();
    EXPECT_LT(elapsed.count(), 2500.0)
        << "a lone real-time request must not wait out the batch window";
}

TEST(InferenceService, TightDeadlineLeaderSkipsBatchWindow)
{
    ServiceOptions options;
    options.workers = 1;
    options.max_batch = 4;
    options.batch_window_ms = 5000;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), {}, options);

    // The leader's 500 ms budget cannot cover the 5 s window: the
    // assembler must dispatch immediately instead of holding the
    // request into a guaranteed deadline miss.
    const auto started = std::chrono::steady_clock::now();
    const InferenceResponse response =
        service.run(cnn_inputs(0xb300), DeadlineToken::after_ms(500));
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - started;

    ASSERT_TRUE(response.status.is_ok()) << response.status.to_string();
    EXPECT_LT(elapsed.count(), 2500.0);
}

TEST(InferenceService, MidBatchFaultSplitsAndSparesOtherBatches)
{
    set_global_num_threads(1);
    auto sick = std::make_shared<FaultInjector>();

    EngineOptions engine_options;
    engine_options.guard.enabled = true;

    ServiceOptions options;
    options.workers = 1;
    options.replicas = 2;
    options.max_batch = 3;
    options.batch_window_ms = 500;
    options.enable_watchdog = false;
    options.per_replica_injectors = {sick, nullptr};
    InferenceService service(models::tiny_cnn(), engine_options, options);

    // One corrupted kernel invocation on replica 0: the first fused
    // run fails as a whole, splits, and every member re-dispatches on
    // the clean replica — no corruption surfaces to any caller.
    sick->arm_corruption("", "", CorruptionKind::kNaNPoke, 0, 1);

    std::vector<std::future<InferenceResponse>> first_wave;
    for (unsigned i = 0; i < 3; ++i)
        first_wave.push_back(service.submit(cnn_inputs(0xb400 + i)));
    for (auto &future : first_wave) {
        const InferenceResponse response = future.get();
        ASSERT_TRUE(response.status.is_ok())
            << response.status.to_string();
        EXPECT_TRUE(response.batch_split);
    }

    // A second, clean wave is untouched by the earlier fault.
    std::vector<std::future<InferenceResponse>> second_wave;
    for (unsigned i = 0; i < 3; ++i)
        second_wave.push_back(service.submit(cnn_inputs(0xb410 + i)));
    for (auto &future : second_wave) {
        const InferenceResponse response = future.get();
        ASSERT_TRUE(response.status.is_ok())
            << response.status.to_string();
        EXPECT_FALSE(response.batch_split);
    }

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed_ok, 6);
    EXPECT_EQ(stats.batch_splits, 1);
    EXPECT_EQ(stats.data_corruption, 0)
        << "the mid-batch corruption must not surface to callers";
    EXPECT_EQ(stats.failed, 0);
}

TEST(InferenceService, ConcurrentBatchAssemblyStaysConsistent)
{
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // A small uniform stall keeps a backlog so batches actually form
    // while two workers race over the same lanes. Run under TSan to
    // check the assembler's locking.
    engine_options.fault_injector->arm_delay("", "", 2, 0, -1);

    ServiceOptions options;
    options.workers = 2;
    options.replicas = 2;
    options.max_queue_depth = 8;
    options.max_batch = 4;
    options.batch_window_ms = 2;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), engine_options, options);

    constexpr int kPerClass = 40;
    const RequestPriority classes[kPriorityClasses] = {
        RequestPriority::kRealtime, RequestPriority::kInteractive,
        RequestPriority::kBatch};
    std::vector<std::future<InferenceResponse>> futures[kPriorityClasses];
    std::atomic<bool> done{false};

    std::thread reader([&] {
        while (!done.load()) {
            const ServiceStats snapshot = service.stats();
            EXPECT_LE(snapshot.completed_ok, snapshot.accepted);
            EXPECT_LE(snapshot.batch_max_occupancy, 4);
            std::this_thread::yield();
        }
    });

    std::thread submitters[kPriorityClasses];
    for (std::size_t c = 0; c < kPriorityClasses; ++c) {
        futures[c].reserve(kPerClass);
        submitters[c] = std::thread([&service, &futures, &classes, c] {
            for (int i = 0; i < kPerClass; ++i) {
                DeadlineToken token = (i % 4 == 3)
                                          ? DeadlineToken::after_ms(1)
                                          : DeadlineToken();
                futures[c].push_back(service.submit(
                    cnn_inputs(0xb500 + static_cast<unsigned>(i)),
                    std::move(token), 0, classes[c]));
            }
        });
    }
    for (std::thread &submitter : submitters)
        submitter.join();
    for (auto &lane : futures)
        for (auto &future : lane)
            (void)future.get();
    done.store(true);
    reader.join();

    const ServiceStats stats = service.stats();
    const std::int64_t total = 3 * kPerClass;
    EXPECT_EQ(stats.submitted, total);
    EXPECT_EQ(stats.accepted + stats.rejected_queue_full +
                  stats.rejected_infeasible,
              total);
    // Accepted requests are accounted exactly once even when they ride
    // through fused runs.
    std::int64_t finished = 0, shed = 0;
    for (std::size_t c = 0; c < kPriorityClasses; ++c) {
        finished += stats.class_count[c];
        shed += stats.class_shed[c];
    }
    EXPECT_EQ(finished + shed, stats.accepted);
    EXPECT_EQ(stats.failed, 0);
    EXPECT_EQ(stats.data_corruption, 0);
    // Batching bookkeeping: occupancy is bounded by the capacity, and
    // every counted flush cause corresponds to a formed batch
    // (coalesce-only flushes carry no cause).
    EXPECT_GE(stats.batched_requests, 2 * stats.batches_formed);
    EXPECT_LE(stats.batched_requests, 4 * stats.batches_formed);
    EXPECT_LE(stats.batch_flush_full + stats.batch_flush_window +
                  stats.batch_flush_deadline,
              stats.batches_formed);
}

// --- Bugfix regressions -----------------------------------------------------

TEST(InferenceService, ColdBacklogStillCountsTowardFeasibility)
{
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // Every run stalls ~50 ms so queued work represents real wait.
    engine_options.fault_injector->arm_delay("", "", 50, 0, -1);

    ServiceOptions options;
    options.workers = 1;
    options.rt_queue_depth = 8;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), engine_options, options);

    // Give the interactive lane service history (~50 ms P50); the
    // real-time lane stays cold.
    ASSERT_TRUE(service.run(cnn_inputs(0xb600)).status.is_ok());

    // Occupy the worker, then fill the real-time lane. That lane has
    // no recorded service times — the admission estimate must borrow
    // another lane's P50 instead of pricing the backlog at zero.
    auto stall = service.submit(cnn_inputs(0xb601));
    wait_for_empty_queue(service);
    std::vector<std::future<InferenceResponse>> backlog;
    for (unsigned i = 0; i < 4; ++i)
        backlog.push_back(service.submit(cnn_inputs(0xb610 + i),
                                         DeadlineToken(), 0,
                                         RequestPriority::kRealtime));

    // ~4 x 50 ms of real-time work is ahead of this 60 ms budget: a
    // guaranteed miss, rejected at admission without queue time or a
    // replica lease.
    const InferenceResponse infeasible =
        service.run(cnn_inputs(0xb620), DeadlineToken::after_ms(60),
                    RequestPriority::kBatch);
    EXPECT_EQ(infeasible.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(infeasible.run_ms, 0.0);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.rejected_infeasible, 1);
    EXPECT_EQ(
        stats.class_infeasible[priority_index(RequestPriority::kBatch)],
        1);

    EXPECT_TRUE(stall.get().status.is_ok());
    for (auto &future : backlog)
        EXPECT_TRUE(future.get().status.is_ok());
}

TEST(ServiceRetry, BackoffClampAppliesAfterJitter)
{
    ServiceOptions options;
    options.retry_backoff_ms = 400;
    options.retry_backoff_max_ms = 600;

    // Below the cap the jitter passes through untouched.
    EXPECT_DOUBLE_EQ(retry_backoff_for_attempt_ms(options, 0, 0.5),
                     200.0);
    // Boundary: 400 x 1.5 lands exactly on the cap.
    EXPECT_DOUBLE_EQ(retry_backoff_for_attempt_ms(options, 0, 1.5),
                     600.0);
    // Attempt 1 doubles to 800; clamp-before-jitter used to return
    // 600 x 1.5 = 900, overshooting the configured ceiling.
    EXPECT_DOUBLE_EQ(retry_backoff_for_attempt_ms(options, 1, 1.5),
                     600.0);
    // Deep saturation stays pinned at the cap for any jitter draw.
    for (const double jitter : {0.5, 1.0, 1.4999})
        EXPECT_DOUBLE_EQ(retry_backoff_for_attempt_ms(options, 30, jitter),
                         600.0);
}

} // namespace
} // namespace orpheus
