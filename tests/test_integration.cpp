/** @file End-to-end integration tests: the full Orpheus pipeline from
 *  model construction through ONNX round-trip, simplification, backend
 *  personalities and inference. */
#include <gtest/gtest.h>

#include "core/cpu_features.hpp"
#include "eval/experiment.hpp"
#include "eval/personalities.hpp"
#include "models/model_zoo.hpp"
#include "onnx/exporter.hpp"
#include "onnx/importer.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::expect_close;
using testing::make_random;

/** The full paper workflow on one model: build ("train") -> export to
 *  ONNX -> import -> simplify + compile -> infer. */
TEST(Integration, FullPipelineOnWrn)
{
    const Graph original = models::wrn_40_2();
    const std::vector<std::uint8_t> bytes = export_onnx(original);
    EXPECT_GT(bytes.size(), 1000u);

    Graph imported;
    ASSERT_TRUE(import_onnx(bytes, imported).is_ok());

    Engine engine(std::move(imported));
    Tensor input = make_random(Shape({1, 3, 32, 32}), 0x117e);
    const Tensor output = engine.run(input);
    ASSERT_EQ(output.shape(), Shape({1, 10}));

    // And against the never-serialised graph: identical results.
    Engine direct{Graph(original)};
    expect_close(output, direct.run(input), 1e-5f, 1e-4f);
}

TEST(Integration, AllPersonalitiesAgreeNumerically)
{
    // The framework personalities change *algorithms*, never semantics:
    // every personality must produce the same distribution.
    Graph graph = models::tiny_cnn();
    Tensor input = make_random(Shape({1, 3, 8, 8}), 0x117f);

    Engine reference(Graph(graph), orpheus_personality().options);
    const Tensor expected = reference.run(input);

    for (const FrameworkPersonality &personality :
         {tvm_like_personality(), pytorch_like_personality(),
          darknet_like_personality(), tflite_like_personality()}) {
        Engine engine(Graph(graph), personality.options);
        expect_close(engine.run(input), expected, 1e-3f, 1e-3f);
    }
}

TEST(Integration, PersonalitiesSelectTheirConvKernels)
{
    const Graph graph = models::mobilenet_v1(10, 0.25f);

    const auto conv_impl_set = [](const Engine &engine) {
        std::set<std::string> impls;
        for (const PlanStep &step : engine.steps()) {
            if (step.op_type == op_names::kConv)
                impls.insert(step.layer->impl_name());
        }
        return impls;
    };

    // The Orpheus personality rides the default heuristic, so on a
    // SIMD-capable host it picks the vector variants of its kernels.
    const std::string suffix =
        simd_enabled() ? std::string("_") + simd_isa_compiled() : "";
    Engine orpheus_engine(Graph(graph), orpheus_personality().options);
    const auto orpheus_impls = conv_impl_set(orpheus_engine);
    EXPECT_TRUE(orpheus_impls.count("im2col_gemm" + suffix));
    EXPECT_TRUE(orpheus_impls.count(
        suffix.empty() ? "depthwise_direct" : "depthwise" + suffix));

    Engine tvm_engine(Graph(graph), tvm_like_personality().options);
    EXPECT_EQ(conv_impl_set(tvm_engine),
              std::set<std::string>{"spatial_pack"});

    Engine pytorch_engine(Graph(graph),
                          pytorch_like_personality().options);
    EXPECT_EQ(conv_impl_set(pytorch_engine),
              std::set<std::string>{"im2col_gemm"})
        << "PyTorch personality must not use the depthwise kernel";
}

TEST(Integration, WinogradEngineMatchesDefault)
{
    EngineOptions winograd_options;
    winograd_options.backend.allow_winograd = true;
    Engine winograd_engine(models::tiny_cnn(), winograd_options);

    bool used_winograd = false;
    for (const PlanStep &step : winograd_engine.steps())
        used_winograd |= step.layer->impl_name() == "winograd";
    EXPECT_TRUE(used_winograd);

    Engine default_engine(models::tiny_cnn());
    Tensor input = make_random(Shape({1, 3, 8, 8}), 0x1180);
    expect_close(winograd_engine.run(input), default_engine.run(input),
                 1e-3f, 2e-3f);
}

TEST(Integration, AutotunedWrnMatchesHeuristic)
{
    EngineOptions tuned_options;
    tuned_options.selection = SelectionStrategy::kAutoTune;
    tuned_options.autotune_runs = 1;
    Engine tuned(models::tiny_cnn(), tuned_options);
    Engine heuristic(models::tiny_cnn());

    Tensor input = make_random(Shape({1, 3, 8, 8}), 0x1181);
    expect_close(tuned.run(input), heuristic.run(input), 1e-3f, 1e-3f);
}

TEST(Integration, ExperimentHarnessOverPersonalities)
{
    // A miniature Figure 2: time tiny-cnn under every personality and
    // verify the harness produces sane, complete rows.
    std::vector<ExperimentResult> results;
    ExperimentConfig config;
    config.warmup_runs = 1;
    config.timed_runs = 2;

    for (const FrameworkPersonality &personality :
         figure2_personalities()) {
        Engine engine(models::tiny_cnn(), personality.options);
        ExperimentResult result = time_inference(engine, config);
        result.name = personality.name;
        results.push_back(std::move(result));
    }

    ASSERT_EQ(results.size(), 4u);
    for (const ExperimentResult &result : results)
        EXPECT_GT(result.stats.mean, 0.0) << result.name;
    const std::string csv = results_to_csv(results);
    EXPECT_NE(csv.find("Orpheus"), std::string::npos);
    EXPECT_NE(csv.find("DarkNet-like"), std::string::npos);
}

TEST(Integration, MultiInputGraphThroughOnnx)
{
    Graph graph("two-inputs");
    graph.add_input("a", Shape({1, 8}));
    graph.add_input("b", Shape({1, 8}));
    graph.add_node(op_names::kAdd, {"a", "b"}, {"sum"});
    graph.add_node(op_names::kSoftmax, {"sum"}, {"probs"});
    graph.add_output("probs");

    const std::vector<std::uint8_t> bytes = export_onnx(graph);
    Graph imported;
    ASSERT_TRUE(import_onnx(bytes, imported).is_ok());
    ASSERT_EQ(imported.inputs().size(), 2u);

    Engine engine(std::move(imported));
    const auto outputs = engine.run(
        {{"a", make_random(Shape({1, 8}), 1)},
         {"b", make_random(Shape({1, 8}), 2)}});
    EXPECT_EQ(outputs.at("probs").shape(), Shape({1, 8}));
}

TEST(Integration, RepeatedCompilationIsStable)
{
    // Compiling the same model twice (fresh engines) must produce the
    // same plan and the same results — no hidden global state.
    Engine a(models::tiny_cnn());
    Engine b(models::tiny_cnn());
    EXPECT_EQ(a.plan_summary(), b.plan_summary());
}

} // namespace
} // namespace orpheus
