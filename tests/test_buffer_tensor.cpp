/** @file Unit tests for Buffer and Tensor. */
#include "core/buffer.hpp"
#include "core/tensor.hpp"

#include <cstdint>

#include <gtest/gtest.h>

namespace orpheus {
namespace {

TEST(Buffer, AllocationIsAlignedAndZeroed)
{
    auto buffer = Buffer::allocate(100);
    ASSERT_NE(buffer->data(), nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer->data()) %
                  Buffer::kAlignment,
              0u);
    EXPECT_EQ(buffer->size(), 100u);
    EXPECT_TRUE(buffer->owns_memory());
    const auto *bytes = static_cast<const std::uint8_t *>(buffer->data());
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_EQ(bytes[i], 0u) << "byte " << i;
}

TEST(Buffer, ZeroSizeAllocation)
{
    auto buffer = Buffer::allocate(0);
    EXPECT_EQ(buffer->size(), 0u);
}

TEST(Buffer, WrapDoesNotOwn)
{
    float storage[4] = {1, 2, 3, 4};
    auto buffer = Buffer::wrap(storage, sizeof(storage));
    EXPECT_FALSE(buffer->owns_memory());
    EXPECT_EQ(buffer->data(), storage);
    static_cast<float *>(buffer->data())[0] = 9.0f;
    EXPECT_EQ(storage[0], 9.0f);
}

TEST(Buffer, WrapNullRejected)
{
    EXPECT_THROW(Buffer::wrap(nullptr, 8), Error);
}

TEST(Tensor, AllocatesZeroInitialised)
{
    Tensor t(Shape({2, 3}));
    EXPECT_EQ(t.dtype(), DataType::kFloat32);
    EXPECT_EQ(t.numel(), 6);
    EXPECT_EQ(t.byte_size(), 24u);
    for (std::int64_t i = 0; i < 6; ++i)
        EXPECT_EQ(t.data<float>()[i], 0.0f);
}

TEST(Tensor, FromValuesAndFill)
{
    Tensor t = Tensor::from_values(Shape({2, 2}), {1, 2, 3, 4});
    EXPECT_EQ(t.data<float>()[3], 4.0f);
    t.fill(7.5f);
    for (std::int64_t i = 0; i < 4; ++i)
        EXPECT_EQ(t.data<float>()[i], 7.5f);

    EXPECT_THROW(Tensor::from_values(Shape({2, 2}), {1, 2, 3}), Error);
}

TEST(Tensor, TypedAccessChecksDtype)
{
    Tensor t(Shape({4}), DataType::kInt64);
    EXPECT_NO_THROW(t.data<std::int64_t>());
    EXPECT_THROW(t.data<float>(), Error);
}

TEST(Tensor, EmptyTensorHasNoStorage)
{
    Tensor t;
    EXPECT_FALSE(t.has_storage());
    EXPECT_THROW(t.raw_data(), Error);
}

TEST(Tensor, NchwAtIndexing)
{
    Tensor t(Shape({1, 2, 3, 4}));
    t.at(0, 1, 2, 3) = 42.0f;
    // Flat offset: ((0*2+1)*3+2)*4+3 = 23.
    EXPECT_EQ(t.data<float>()[23], 42.0f);
    EXPECT_EQ(t.at(0, 1, 2, 3), 42.0f);

    Tensor flat(Shape({4}));
    EXPECT_THROW(flat.at(0, 0, 0, 0), Error);
}

TEST(Tensor, CloneIsDeep)
{
    Tensor t = Tensor::from_values(Shape({2}), {1, 2});
    Tensor copy = t.clone();
    copy.data<float>()[0] = 9.0f;
    EXPECT_EQ(t.data<float>()[0], 1.0f);
}

TEST(Tensor, SharedStorageOnCopy)
{
    Tensor t = Tensor::from_values(Shape({2}), {1, 2});
    Tensor alias = t;
    alias.data<float>()[0] = 5.0f;
    EXPECT_EQ(t.data<float>()[0], 5.0f);
}

TEST(Tensor, ReshapeSharesStorageAndValidates)
{
    Tensor t = Tensor::from_values(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
    Tensor view = t.reshape(Shape({3, 2}));
    EXPECT_EQ(view.shape(), Shape({3, 2}));
    view.data<float>()[0] = 10.0f;
    EXPECT_EQ(t.data<float>()[0], 10.0f);
    EXPECT_THROW(t.reshape(Shape({4, 2})), Error);
}

TEST(Tensor, CopyFromValidates)
{
    Tensor dst(Shape({2, 2}));
    Tensor src = Tensor::from_values(Shape({2, 2}), {1, 2, 3, 4});
    dst.copy_from(src);
    EXPECT_EQ(dst.data<float>()[2], 3.0f);

    Tensor wrong(Shape({4}));
    EXPECT_THROW(dst.copy_from(wrong), Error);
}

TEST(Tensor, ScalarAndInt64Helpers)
{
    Tensor s = Tensor::scalar(3.5f);
    EXPECT_EQ(s.shape().rank(), 0u);
    EXPECT_EQ(*s.data<float>(), 3.5f);

    Tensor v = Tensor::from_int64s({5, 6, 7});
    EXPECT_EQ(v.dtype(), DataType::kInt64);
    EXPECT_EQ(v.data<std::int64_t>()[2], 7);
}

TEST(Tensor, AllCloseAndMaxAbsDiff)
{
    Tensor a = Tensor::from_values(Shape({3}), {1.0f, 2.0f, 3.0f});
    Tensor b = Tensor::from_values(Shape({3}), {1.0f, 2.00001f, 3.0f});
    EXPECT_TRUE(all_close(a, b));
    EXPECT_NEAR(max_abs_diff(a, b), 1e-5f, 1e-6f);

    Tensor far = Tensor::from_values(Shape({3}), {1.0f, 2.5f, 3.0f});
    EXPECT_FALSE(all_close(a, far));

    Tensor other_shape(Shape({4}));
    EXPECT_FALSE(all_close(a, other_shape));
    EXPECT_THROW(max_abs_diff(a, other_shape), Error);
}

TEST(Dtype, SizesAndNames)
{
    EXPECT_EQ(dtype_size(DataType::kFloat32), 4u);
    EXPECT_EQ(dtype_size(DataType::kInt64), 8u);
    EXPECT_EQ(dtype_size(DataType::kUInt8), 1u);
    EXPECT_EQ(parse_dtype("float32"), DataType::kFloat32);
    EXPECT_EQ(parse_dtype("bool"), DataType::kBool);
    EXPECT_THROW(parse_dtype("float16"), Error);
    EXPECT_STREQ(to_string(DataType::kInt32), "int32");
}

} // namespace
} // namespace orpheus
