/** @file Tests for the arena memory planner, including a randomized
 *  no-overlap property suite. */
#include "runtime/memory_planner.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "models/builder.hpp"
#include "models/model_zoo.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::expect_close;
using testing::make_random;

MemoryPlan
plan_for(const Graph &graph)
{
    const ValueInfoMap infos = infer_shapes(graph);
    return plan_memory(graph, infos, graph.topological_order());
}

/** Checks the fundamental invariant: values whose lifetimes overlap
 *  must not share arena bytes. */
void
expect_no_conflicts(const Graph &graph, const MemoryPlan &plan)
{
    const auto order = graph.topological_order();
    std::unordered_map<std::size_t, std::size_t> position;
    for (std::size_t step = 0; step < order.size(); ++step)
        position[order[step]] = step;

    struct Life {
        std::string name;
        std::size_t def, last_use;
        ArenaSlot slot;
    };
    std::vector<Life> lives;
    for (std::size_t step = 0; step < order.size(); ++step) {
        const Node &node = graph.nodes()[order[step]];
        for (const std::string &out : node.outputs()) {
            auto slot = plan.slots.find(out);
            if (slot == plan.slots.end())
                continue;
            Life life{out, step, step, slot->second};
            for (std::size_t consumer : graph.consumers(out))
                life.last_use =
                    std::max(life.last_use, position.at(consumer));
            lives.push_back(std::move(life));
        }
    }

    for (std::size_t i = 0; i < lives.size(); ++i) {
        for (std::size_t j = i + 1; j < lives.size(); ++j) {
            const Life &a = lives[i];
            const Life &b = lives[j];
            const bool time_overlap =
                a.def <= b.last_use && b.def <= a.last_use;
            const bool space_overlap =
                a.slot.offset < b.slot.offset + b.slot.size &&
                b.slot.offset < a.slot.offset + a.slot.size;
            EXPECT_FALSE(time_overlap && space_overlap)
                << a.name << " and " << b.name << " overlap in both time "
                << "and space";
        }
    }
}

TEST(MemoryPlanner, ChainReusesMemory)
{
    // A long chain of same-sized relus needs only two live buffers.
    Graph graph("chain");
    graph.add_input("x", Shape({1, 64}));
    std::string previous = "x";
    for (int i = 0; i < 10; ++i) {
        const std::string next = "v" + std::to_string(i);
        graph.add_node(op_names::kRelu, {previous}, {next});
        previous = next;
    }
    graph.add_output(previous);

    const MemoryPlan plan = plan_for(graph);
    expect_no_conflicts(graph, plan);
    // 9 intermediates (the output is excluded); naive = 9 buffers,
    // planned = 2.
    const std::size_t buffer_bytes = 256; // 64 floats, already aligned
    EXPECT_EQ(plan.naive_size, 9 * buffer_bytes);
    EXPECT_EQ(plan.arena_size, 2 * buffer_bytes);
}

TEST(MemoryPlanner, ResidualExtendsLifetime)
{
    // x -> a -> b -> c, plus a consumed again by the final add: a must
    // stay live across b and c.
    Graph graph("residual");
    graph.add_input("x", Shape({1, 32}));
    graph.add_node(op_names::kRelu, {"x"}, {"a"});
    graph.add_node(op_names::kRelu, {"a"}, {"b"});
    graph.add_node(op_names::kRelu, {"b"}, {"c"});
    graph.add_node(op_names::kAdd, {"a", "c"}, {"y"});
    graph.add_output("y");

    const MemoryPlan plan = plan_for(graph);
    expect_no_conflicts(graph, plan);
    // a, b, c are intermediates. a overlaps both b and c, and b's last
    // read happens at the step that defines c (the planner is
    // conservative about producer/consumer aliasing), so all three need
    // distinct slots.
    EXPECT_EQ(plan.arena_size, 3 * 128u);
}

TEST(MemoryPlanner, GraphOutputsExcluded)
{
    Graph graph("out");
    graph.add_input("x", Shape({1, 8}));
    graph.add_node(op_names::kRelu, {"x"}, {"y"});
    graph.add_output("y");
    const MemoryPlan plan = plan_for(graph);
    EXPECT_TRUE(plan.slots.empty());
    EXPECT_EQ(plan.arena_size, 0u);
}

TEST(MemoryPlanner, SlotsAreAligned)
{
    GraphBuilder b("g", 0x91a);
    std::string x = b.input("input", Shape({1, 3, 9, 9}));
    x = b.cbr(x, 5, 3, 1, 1); // odd sizes -> unaligned raw byte counts
    x = b.cbr(x, 7, 3, 1, 1);
    x = b.global_average_pool(x);
    b.output(x);
    Graph graph = b.take();

    const MemoryPlan plan = plan_for(graph);
    for (const auto &[name, slot] : plan.slots) {
        EXPECT_EQ(slot.offset % Buffer::kAlignment, 0u) << name;
        EXPECT_EQ(slot.size % Buffer::kAlignment, 0u) << name;
    }
}

TEST(MemoryPlanner, RandomGraphsNeverConflict)
{
    // Property: on random DAGs of eltwise ops, planned placements never
    // violate the lifetime/space exclusivity invariant and the arena is
    // never larger than the naive total.
    Rng rng(0x91b);
    for (int trial = 0; trial < 25; ++trial) {
        Graph graph("random" + std::to_string(trial));
        graph.add_input("v0", Shape({1, rng.uniform_int(1, 64)}));
        std::vector<std::string> values{"v0"};
        const int node_count = static_cast<int>(rng.uniform_int(3, 24));
        for (int i = 0; i < node_count; ++i) {
            const std::string out = "v" + std::to_string(i + 1);
            const std::string &lhs = values[static_cast<std::size_t>(
                rng.uniform_int(0,
                                static_cast<std::int64_t>(values.size()) -
                                    1))];
            if (rng.uniform_int(0, 1) == 0) {
                graph.add_node(op_names::kRelu, {lhs}, {out});
            } else {
                const std::string &rhs = values[static_cast<std::size_t>(
                    rng.uniform_int(
                        0, static_cast<std::int64_t>(values.size()) - 1))];
                // Add requires equal shapes; all values share v0's shape.
                graph.add_node(op_names::kAdd, {lhs, rhs}, {out});
            }
            values.push_back(out);
        }
        graph.add_output(values.back());

        const MemoryPlan plan = plan_for(graph);
        expect_no_conflicts(graph, plan);
        EXPECT_LE(plan.arena_size, plan.naive_size);
    }
}

TEST(MemoryPlanner, RealNetworkShowsSubstantialReuse)
{
    const Graph graph = models::wrn_40_2();
    Graph simplified = graph;
    simplify_graph(simplified);
    const MemoryPlan plan = plan_for(simplified);
    expect_no_conflicts(simplified, plan);
    // WRN-40-2 has > 40 activation tensors but few live at once.
    EXPECT_LT(plan.arena_size, plan.naive_size / 4)
        << "arena " << plan.arena_size << " vs naive " << plan.naive_size;
}

TEST(MemoryPlanner, EngineResultsIdenticalWithAndWithoutPlanner)
{
    EngineOptions with_planner;
    with_planner.use_memory_planner = true;
    Engine planned(models::tiny_cnn(), with_planner);

    EngineOptions without_planner;
    without_planner.use_memory_planner = false;
    Engine unplanned(models::tiny_cnn(), without_planner);

    EXPECT_GT(planned.arena_bytes(), 0u);
    EXPECT_EQ(unplanned.arena_bytes(), 0u);

    Tensor input = make_random(Shape({1, 3, 8, 8}), 0x91c);
    expect_close(planned.run(input), unplanned.run(input), 1e-6f, 1e-6f);
}

} // namespace
} // namespace orpheus
