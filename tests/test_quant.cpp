/** @file Tests for the quantization subsystem: parameter selection,
 *  quantized kernels, calibration and whole-model PTQ. */
#include <cmath>

#include <gtest/gtest.h>

#include "models/builder.hpp"
#include "models/model_zoo.hpp"
#include "onnx/exporter.hpp"
#include "onnx/importer.hpp"
#include "ops/conv/conv.hpp"
#include "ops/quant/qconv.hpp"
#include "ops/quant/qgemm.hpp"
#include "ops/quant/quantize.hpp"
#include "quant/quantizer.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::make_random;

std::size_t
count_ops(const Graph &graph, const std::string &op_type)
{
    std::size_t count = 0;
    for (const Node &node : graph.nodes())
        count += node.op_type() == op_type ? 1 : 0;
    return count;
}

// --- Parameter selection -----------------------------------------------

TEST(QuantParams, Uint8CoversRangeAndRepresentsZero)
{
    const QuantParams p = choose_uint8_params(-2.0f, 6.0f);
    EXPECT_NEAR(p.scale, 8.0f / 255.0f, 1e-6f);
    // Zero must quantize exactly to the zero point.
    EXPECT_EQ(p.quantize(0.0f), p.zero_point);
    EXPECT_NEAR(p.dequantize(p.zero_point), 0.0f, 1e-7f);
    // Range endpoints land inside [0, 255].
    EXPECT_GE(p.quantize(-2.0f), 0);
    EXPECT_LE(p.quantize(6.0f), 255);
}

TEST(QuantParams, AllPositiveRangeWidenedToZero)
{
    const QuantParams p = choose_uint8_params(1.0f, 5.0f);
    EXPECT_EQ(p.zero_point, 0);
    EXPECT_NEAR(p.scale, 5.0f / 255.0f, 1e-6f);
}

TEST(QuantParams, DegenerateRangeHandled)
{
    const QuantParams p = choose_uint8_params(0.0f, 0.0f);
    EXPECT_GT(p.scale, 0.0f);
}

TEST(QuantParams, SymmetricInt8)
{
    const QuantParams p = choose_int8_symmetric_params(3.0f);
    EXPECT_EQ(p.zero_point, 0);
    EXPECT_NEAR(p.scale, 3.0f / 127.0f, 1e-6f);
}

// --- Tensor round trips ---------------------------------------------------

TEST(Quantize, RoundTripErrorBoundedByHalfScale)
{
    Tensor values = make_random(Shape({1000}), 0x9a0, -3.0f, 3.0f);
    float lo, hi;
    tensor_min_max(values, lo, hi);
    const QuantParams params = choose_uint8_params(lo, hi);

    Tensor quantized(values.shape(), DataType::kUInt8);
    quantize_to_uint8(values, params, quantized);
    Tensor restored(values.shape());
    dequantize_to_float(quantized, params, restored);

    for (std::int64_t i = 0; i < values.numel(); ++i) {
        EXPECT_LE(std::fabs(restored.data<float>()[i] -
                            values.data<float>()[i]),
                  params.scale * 0.5f + 1e-6f)
            << "element " << i;
    }
}

TEST(Quantize, Int8SymmetricRoundTrip)
{
    Tensor values = make_random(Shape({256}), 0x9a1, -1.5f, 1.5f);
    float lo, hi;
    tensor_min_max(values, lo, hi);
    const QuantParams params = choose_int8_symmetric_params(
        std::max(std::fabs(lo), std::fabs(hi)));

    Tensor quantized(values.shape(), DataType::kInt8);
    quantize_to_int8(values, params, quantized);
    Tensor restored(values.shape());
    dequantize_to_float(quantized, params, restored);
    EXPECT_LE(max_abs_diff(restored, values), params.scale * 0.5f + 1e-6f);
}

TEST(Quantize, MinMaxHelper)
{
    Tensor t = Tensor::from_values(Shape({4}), {-2, 7, 0, 3});
    float lo, hi;
    tensor_min_max(t, lo, hi);
    EXPECT_EQ(lo, -2.0f);
    EXPECT_EQ(hi, 7.0f);
}

// --- Quantized GEMM ---------------------------------------------------------

TEST(QGemm, MatchesNaiveReference)
{
    Rng rng(0x9a2);
    const std::int64_t m = 7, n = 13, k = 21;
    std::vector<std::uint8_t> a(static_cast<std::size_t>(m * k));
    std::vector<std::int8_t> b(static_cast<std::size_t>(k * n));
    for (auto &value : a)
        value = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    for (auto &value : b)
        value = static_cast<std::int8_t>(rng.uniform_int(-127, 127));

    std::vector<std::int32_t> expected(static_cast<std::size_t>(m * n));
    std::vector<std::int32_t> actual(static_cast<std::size_t>(m * n));
    const std::int32_t zp = 77;
    qgemm_u8i8_naive(m, n, k, a.data(), k, zp, b.data(), n,
                     expected.data(), n);
    qgemm_u8i8(m, n, k, a.data(), k, zp, b.data(), n, actual.data(), n);
    EXPECT_EQ(actual, expected);
}

TEST(QGemm, AgreesWithFloatArithmetic)
{
    // Integer GEMM on quantized data must equal float GEMM on the
    // dequantized data (exactly, since both are sums of exact products).
    Rng rng(0x9a3);
    const std::int64_t m = 4, n = 6, k = 9;
    const QuantParams a_params{0.02f, 128};
    const QuantParams b_params{0.01f, 0};

    std::vector<std::uint8_t> a(static_cast<std::size_t>(m * k));
    std::vector<std::int8_t> b(static_cast<std::size_t>(k * n));
    for (auto &value : a)
        value = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    for (auto &value : b)
        value = static_cast<std::int8_t>(rng.uniform_int(-127, 127));

    std::vector<std::int32_t> acc(static_cast<std::size_t>(m * n));
    qgemm_u8i8(m, n, k, a.data(), k, a_params.zero_point, b.data(), n,
               acc.data(), n);

    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            float expected = 0.0f;
            for (std::int64_t p = 0; p < k; ++p)
                expected += a_params.dequantize(a[i * k + p]) *
                            b_params.dequantize(b[p * n + j]);
            const float actual = acc[i * n + j] * a_params.scale *
                                 b_params.scale;
            EXPECT_NEAR(actual, expected, 1e-3f);
        }
    }
}

// --- Quantized convolution ---------------------------------------------------

TEST(QConv, MatchesFakeQuantFloatConv)
{
    // qconv on quantized data == float conv on dequantized data, up to
    // output requantization (half an output scale).
    Rng rng(0x9a4);
    Tensor x_f32 = make_random(Shape({1, 3, 10, 10}), 0x9a5, -1.0f, 1.0f);
    Tensor w_f32 = make_random(Shape({8, 3, 3, 3}), 0x9a6, -0.5f, 0.5f);

    const QuantParams x_params = choose_uint8_params(-1.0f, 1.0f);
    const QuantParams w_params = choose_int8_symmetric_params(0.5f);

    Tensor x_q(x_f32.shape(), DataType::kUInt8);
    quantize_to_uint8(x_f32, x_params, x_q);
    Tensor w_q(w_f32.shape(), DataType::kInt8);
    quantize_to_int8(w_f32, w_params, w_q);

    // "Fake quant" reference: float conv over the dequantized tensors.
    Tensor x_dq(x_f32.shape()), w_dq(w_f32.shape());
    dequantize_to_float(x_q, x_params, x_dq);
    dequantize_to_float(w_q, w_params, w_dq);

    Conv2dParams p;
    p.kernel_h = p.kernel_w = 3;
    p.pad_top = p.pad_left = p.pad_bottom = p.pad_right = 1;

    Tensor reference(Shape({1, 8, 10, 10}));
    conv2d(ConvAlgo::kDirect, x_dq, w_dq, nullptr, p,
           ActivationSpec::none(), reference);

    float y_min, y_max;
    tensor_min_max(reference, y_min, y_max);
    const QuantParams y_params = choose_uint8_params(y_min, y_max);

    QConv2dArgs args;
    Tensor y_q(Shape({1, 8, 10, 10}), DataType::kUInt8);
    args.input = &x_q;
    args.input_params = x_params;
    args.weight = &w_q;
    args.weight_params = w_params;
    args.output = &y_q;
    args.output_params = y_params;
    args.params = p;
    qconv2d(args);

    Tensor y_dq(reference.shape());
    dequantize_to_float(y_q, y_params, y_dq);
    EXPECT_LE(max_abs_diff(y_dq, reference), y_params.scale * 0.51f + 1e-5f);
}

TEST(QConv, FusedReluClampsAtZero)
{
    Tensor x_q(Shape({1, 1, 4, 4}), DataType::kUInt8);
    Tensor w_q(Shape({1, 1, 1, 1}), DataType::kInt8);
    *w_q.data<std::int8_t>() = -100; // Strongly negative weight.
    for (std::int64_t i = 0; i < 16; ++i)
        x_q.data<std::uint8_t>()[i] = 200;

    QConv2dArgs args;
    Tensor y_q(Shape({1, 1, 4, 4}), DataType::kUInt8);
    args.input = &x_q;
    args.input_params = {0.1f, 0};
    args.weight = &w_q;
    args.weight_params = {0.1f, 0};
    args.output = &y_q;
    args.output_params = {0.1f, 10};
    args.params = Conv2dParams{};
    args.activation = ActivationSpec::relu();
    qconv2d(args);

    // All outputs are negative pre-activation; relu clamps to y_zp.
    for (std::int64_t i = 0; i < 16; ++i)
        EXPECT_EQ(y_q.data<std::uint8_t>()[i], 10);
}

TEST(QConv, RejectsAsymmetricWeights)
{
    Tensor x_q(Shape({1, 1, 2, 2}), DataType::kUInt8);
    Tensor w_q(Shape({1, 1, 1, 1}), DataType::kInt8);
    Tensor y_q(Shape({1, 1, 2, 2}), DataType::kUInt8);
    QConv2dArgs args;
    args.input = &x_q;
    args.weight = &w_q;
    args.output = &y_q;
    args.weight_params = {0.1f, 5};
    EXPECT_THROW(qconv2d(args), Error);
}

// --- Shape inference for the quant ops --------------------------------------

TEST(QuantShapes, RulesProduceQuantizedSignatures)
{
    Graph graph("q");
    graph.add_input("x", Shape({1, 3, 8, 8}));
    graph.add_initializer("xs", Tensor::scalar(0.1f));
    Tensor zp(Shape{}, DataType::kUInt8);
    graph.add_initializer("xzp", zp.clone());
    graph.add_node(op_names::kQuantizeLinear, {"x", "xs", "xzp"}, {"xq"});
    graph.add_node(op_names::kDequantizeLinear, {"xq", "xs", "xzp"},
                   {"xf"});
    graph.add_output("xf");

    const auto infos = infer_shapes(graph);
    EXPECT_EQ(infos.at("xq").dtype, DataType::kUInt8);
    EXPECT_EQ(infos.at("xq").shape, Shape({1, 3, 8, 8}));
    EXPECT_EQ(infos.at("xf").dtype, DataType::kFloat32);
}

// --- Whole-model PTQ -----------------------------------------------------

TEST(Quantizer, TinyCnnEndToEnd)
{
    const Graph float_graph = models::tiny_cnn();

    QuantizationReport report;
    QuantizationOptions options;
    options.calibration_runs = 2;
    Graph quantized = quantize_model(Graph(float_graph), options, &report);

    EXPECT_EQ(report.quantized_convs, 2);
    EXPECT_EQ(report.skipped_convs, 0);
    EXPECT_GE(report.removed_quant_pairs, 0);
    EXPECT_EQ(count_ops(quantized, op_names::kConv), 0u);
    EXPECT_EQ(count_ops(quantized, op_names::kQLinearConv), 2u);

    // Numerics: the quantized model tracks the float model closely.
    Engine float_engine{Graph(float_graph)};
    Engine quant_engine(std::move(quantized));
    Tensor input = make_random(Shape({1, 3, 8, 8}), 0x9a7, -1.0f, 1.0f);
    const Tensor expected = float_engine.run(input);
    const Tensor actual = quant_engine.run(input);
    EXPECT_LE(max_abs_diff(actual, expected), 0.05f)
        << "quantized class probabilities drifted too far";

    // The predicted class survives quantization.
    const auto argmax = [](const Tensor &t) {
        int best = 0;
        for (int i = 1; i < t.numel(); ++i) {
            if (t.data<float>()[i] > t.data<float>()[best])
                best = i;
        }
        return best;
    };
    EXPECT_EQ(argmax(actual), argmax(expected));
}

TEST(Quantizer, ConsecutiveConvsStayInIntegerDomain)
{
    GraphBuilder b("chain", 0x9a8);
    std::string x = b.input("input", Shape({1, 3, 12, 12}));
    x = b.conv_k(x, 8, 3, 1, 1, 1, true);
    x = b.relu(x);
    x = b.conv_k(x, 8, 3, 1, 1, 1, true);
    x = b.relu(x);
    b.output(x);

    QuantizationReport report;
    Graph quantized = quantize_model(b.take(), {}, &report);
    EXPECT_EQ(report.quantized_convs, 2);
    EXPECT_GE(report.removed_quant_pairs, 1)
        << "the DQ->Q bridge between the convs must be eliminated";
    // One Quantize at the front, one Dequantize at the back.
    EXPECT_EQ(count_ops(quantized, op_names::kQuantizeLinear), 1u);
    EXPECT_EQ(count_ops(quantized, op_names::kDequantizeLinear), 1u);
}

TEST(Quantizer, QuantizedGraphSurvivesOnnxRoundTrip)
{
    Graph quantized = quantize_model(models::tiny_cnn());
    const std::vector<std::uint8_t> bytes = export_onnx(quantized);

    Graph imported;
    ASSERT_TRUE(import_onnx(bytes, imported).is_ok());
    EXPECT_EQ(imported.nodes().size(), quantized.nodes().size());

    Engine engine_a(std::move(quantized));
    Engine engine_b(std::move(imported));
    Tensor input = make_random(Shape({1, 3, 8, 8}), 0x9a9);
    EXPECT_EQ(max_abs_diff(engine_a.run(input), engine_b.run(input)), 0.0f);
}

TEST(Quantizer, WrnQuantizesEveryConv)
{
    QuantizationReport report;
    QuantizationOptions options;
    options.calibration_runs = 1;
    Graph quantized =
        quantize_model(models::wrn_40_2(), options, &report);
    EXPECT_GE(report.quantized_convs, 40);
    EXPECT_EQ(report.skipped_convs, 0);

    // It still runs and produces a distribution.
    Engine engine(std::move(quantized));
    const Tensor output =
        engine.run(make_random(Shape({1, 3, 32, 32}), 0x9aa));
    double sum = 0.0;
    for (int i = 0; i < 10; ++i)
        sum += output.data<float>()[i];
    EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(Quantizer, PerChannelBeatsPerTensorOnSkewedFilters)
{
    // A conv whose filters differ in magnitude by 100x: a single tensor
    // scale wastes most of the int8 range on the small filters. Measure
    // the weight reconstruction error of each mode directly.
    GraphBuilder b("skew", 0x9ac);
    std::string x = b.input("input", Shape({1, 3, 10, 10}));
    x = b.conv_k(x, 8, 3, 1, 1, 1, /*bias=*/true);
    b.output(x);
    Graph graph = b.take();

    // Scale half of the filters down by 100x and keep a copy.
    Tensor original;
    for (const Node &node : graph.nodes()) {
        if (node.op_type() != op_names::kConv)
            continue;
        Tensor &weight =
            const_cast<Tensor &>(graph.initializer(node.input(1)));
        float *w = weight.data<float>();
        const std::int64_t per_filter = weight.numel() / 8;
        for (std::int64_t oc = 4; oc < 8; ++oc) {
            for (std::int64_t k = 0; k < per_filter; ++k)
                w[oc * per_filter + k] *= 0.01f;
        }
        original = weight.clone();
    }

    // Reconstructs the fp32 weights from a quantized graph and returns
    // the max error over the *small* filters (oc >= 4).
    const auto small_filter_error = [&](bool per_channel) {
        QuantizationOptions options;
        options.calibration_runs = 1;
        options.per_channel_weights = per_channel;
        Graph quantized = quantize_model(Graph(graph), options);
        for (const Node &node : quantized.nodes()) {
            if (node.op_type() != op_names::kQLinearConv)
                continue;
            const Tensor &w_q = quantized.initializer(node.input(3));
            const Tensor &scales = quantized.initializer(node.input(4));
            const std::int8_t *q = w_q.data<std::int8_t>();
            const float *s = scales.data<float>();
            const std::int64_t per_filter = w_q.numel() / 8;
            float worst = 0.0f;
            for (std::int64_t oc = 4; oc < 8; ++oc) {
                const float scale = scales.numel() == 1
                                        ? s[0]
                                        : s[oc];
                for (std::int64_t k = 0; k < per_filter; ++k) {
                    const float restored = scale * q[oc * per_filter + k];
                    worst = std::max(
                        worst,
                        std::fabs(restored -
                                  original.data<float>()[oc * per_filter +
                                                         k]));
                }
            }
            return worst;
        }
        return -1.0f;
    };

    const float per_tensor_error = small_filter_error(false);
    const float per_channel_error = small_filter_error(true);
    ASSERT_GE(per_tensor_error, 0.0f);
    ASSERT_GE(per_channel_error, 0.0f);
    EXPECT_LT(per_channel_error, per_tensor_error * 0.1f)
        << "per-channel scales must recover the small filters "
        << "(per-tensor " << per_tensor_error << ", per-channel "
        << per_channel_error << ")";
}

TEST(Quantizer, PerChannelGraphHas1dWeightScales)
{
    QuantizationOptions options;
    options.calibration_runs = 1;
    options.per_channel_weights = true;
    Graph quantized = quantize_model(models::tiny_cnn(), options);

    bool saw_vector_scale = false;
    for (const Node &node : quantized.nodes()) {
        if (node.op_type() != op_names::kQLinearConv)
            continue;
        const Tensor &w_scale = quantized.initializer(node.input(4));
        saw_vector_scale |= w_scale.shape().rank() == 1 &&
                            w_scale.numel() > 1;
    }
    EXPECT_TRUE(saw_vector_scale);
}

TEST(Calibration, TableCoversEveryFloatValue)
{
    Graph graph = models::tiny_mlp();
    simplify_graph(graph);
    const RangeTable table = calibrate_ranges(graph, 2, 0x9ab);

    EXPECT_GT(table.count("input"), 0u);
    for (const Node &node : graph.nodes()) {
        for (const std::string &out : node.outputs())
            EXPECT_GT(table.count(out), 0u) << out;
    }
    for (const auto &[name, range] : table)
        EXPECT_LE(range.first, range.second) << name;
}

} // namespace
} // namespace orpheus
