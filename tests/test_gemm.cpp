/** @file Parameterized correctness tests for the GEMM kernels. */
#include "ops/gemm/gemm.hpp"

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "core/threadpool.hpp"

namespace orpheus {
namespace {

std::vector<float>
random_matrix(std::int64_t rows, std::int64_t cols, Rng &rng)
{
    std::vector<float> data(static_cast<std::size_t>(rows * cols));
    for (float &value : data)
        value = rng.uniform(-1.0f, 1.0f);
    return data;
}

void
expect_matrices_close(const std::vector<float> &actual,
                      const std::vector<float> &expected, float tolerance)
{
    ASSERT_EQ(actual.size(), expected.size());
    float worst = 0.0f;
    for (std::size_t i = 0; i < actual.size(); ++i)
        worst = std::max(worst, std::abs(actual[i] - expected[i]));
    EXPECT_LE(worst, tolerance) << "max |diff| = " << worst;
}

/** (variant, M, N, K) — sweep includes degenerate and odd sizes that
 *  stress micro-kernel edge handling. */
using GemmCase = std::tuple<GemmVariant, std::int64_t, std::int64_t,
                            std::int64_t>;

class GemmVsNaive : public ::testing::TestWithParam<GemmCase>
{
};

TEST_P(GemmVsNaive, MatchesReference)
{
    const auto [variant, m, n, k] = GetParam();
    Rng rng(0x6e44 + static_cast<std::uint64_t>(m * 131 + n * 17 + k));
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);

    std::vector<float> expected(static_cast<std::size_t>(m * n), -1.0f);
    gemm_naive(m, n, k, a.data(), k, b.data(), n, expected.data(), n);

    std::vector<float> actual(static_cast<std::size_t>(m * n), -1.0f);
    gemm(variant, m, n, k, a.data(), k, b.data(), n, actual.data(), n);

    const float tolerance = 1e-4f * static_cast<float>(std::max<std::int64_t>(k, 1));
    expect_matrices_close(actual, expected, tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    SizeSweep, GemmVsNaive,
    ::testing::Combine(
        ::testing::Values(GemmVariant::kBlocked, GemmVariant::kPacked),
        ::testing::Values<std::int64_t>(1, 3, 4, 17, 64),
        ::testing::Values<std::int64_t>(1, 15, 16, 100),
        ::testing::Values<std::int64_t>(1, 8, 129)),
    [](const ::testing::TestParamInfo<GemmCase> &info) {
        return std::string(to_string(std::get<0>(info.param))) + "_m" +
               std::to_string(std::get<1>(info.param)) + "_n" +
               std::to_string(std::get<2>(info.param)) + "_k" +
               std::to_string(std::get<3>(info.param));
    });

TEST(Gemm, LeadingDimensionsRespected)
{
    // Compute into a 2x2 window of a larger 4x4 C with lda/ldb offsets.
    Rng rng(0x1d);
    const auto a = random_matrix(2, 8, rng); // lda = 8, use k = 3
    const auto b = random_matrix(8, 8, rng); // ldb = 8, use n = 2

    std::vector<float> expected(16, 0.0f), actual(16, 0.0f);
    gemm_naive(2, 2, 3, a.data(), 8, b.data(), 8, expected.data(), 4);
    gemm_packed(2, 2, 3, a.data(), 8, b.data(), 8, actual.data(), 4);
    expect_matrices_close(actual, expected, 1e-4f);
    // Untouched elements must stay zero in both.
    EXPECT_EQ(expected[2], 0.0f);
    EXPECT_EQ(actual[2], 0.0f);
}

TEST(Gemm, PackedOverwritesStaleOutput)
{
    Rng rng(0x2d);
    const auto a = random_matrix(4, 4, rng);
    const auto b = random_matrix(4, 4, rng);
    std::vector<float> expected(16), stale(16, 1e9f);
    gemm_naive(4, 4, 4, a.data(), 4, b.data(), 4, expected.data(), 4);
    gemm_packed(4, 4, 4, a.data(), 4, b.data(), 4, stale.data(), 4);
    expect_matrices_close(stale, expected, 1e-4f);
}

TEST(Gemm, PackedMatchesNaiveWithThreads)
{
    set_global_num_threads(4);
    Rng rng(0x3d);
    const std::int64_t m = 67, n = 45, k = 33;
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);
    std::vector<float> expected(static_cast<std::size_t>(m * n));
    std::vector<float> actual(static_cast<std::size_t>(m * n));
    gemm_naive(m, n, k, a.data(), k, b.data(), n, expected.data(), n);
    gemm_packed(m, n, k, a.data(), k, b.data(), n, actual.data(), n);
    set_global_num_threads(1);
    expect_matrices_close(actual, expected, 1e-3f);
}

TEST(GemmGeneral, TransposeA)
{
    Rng rng(0x4d);
    const std::int64_t m = 5, n = 7, k = 3;
    const auto a_t = random_matrix(k, m, rng); // stored transposed
    const auto b = random_matrix(k, n, rng);

    // Reference: transpose manually then multiply.
    std::vector<float> a(static_cast<std::size_t>(m * k));
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t p = 0; p < k; ++p)
            a[static_cast<std::size_t>(i * k + p)] =
                a_t[static_cast<std::size_t>(p * m + i)];
    }
    std::vector<float> expected(static_cast<std::size_t>(m * n));
    gemm_naive(m, n, k, a.data(), k, b.data(), n, expected.data(), n);

    std::vector<float> actual(static_cast<std::size_t>(m * n));
    gemm_general(GemmVariant::kPacked, /*trans_a=*/true, false, m, n, k,
                 1.0f, a_t.data(), m, b.data(), n, 0.0f, actual.data(), n);
    expect_matrices_close(actual, expected, 1e-4f);
}

TEST(GemmGeneral, TransposeB)
{
    Rng rng(0x5d);
    const std::int64_t m = 4, n = 6, k = 5;
    const auto a = random_matrix(m, k, rng);
    const auto b_t = random_matrix(n, k, rng);

    std::vector<float> b(static_cast<std::size_t>(k * n));
    for (std::int64_t p = 0; p < k; ++p) {
        for (std::int64_t j = 0; j < n; ++j)
            b[static_cast<std::size_t>(p * n + j)] =
                b_t[static_cast<std::size_t>(j * k + p)];
    }
    std::vector<float> expected(static_cast<std::size_t>(m * n));
    gemm_naive(m, n, k, a.data(), k, b.data(), n, expected.data(), n);

    std::vector<float> actual(static_cast<std::size_t>(m * n));
    gemm_general(GemmVariant::kNaive, false, /*trans_b=*/true, m, n, k,
                 1.0f, a.data(), k, b_t.data(), k, 0.0f, actual.data(), n);
    expect_matrices_close(actual, expected, 1e-4f);
}

TEST(GemmGeneral, AlphaBetaBlend)
{
    Rng rng(0x6d);
    const std::int64_t m = 3, n = 3, k = 3;
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);
    std::vector<float> product(static_cast<std::size_t>(m * n));
    gemm_naive(m, n, k, a.data(), k, b.data(), n, product.data(), n);

    std::vector<float> c(static_cast<std::size_t>(m * n), 2.0f);
    gemm_general(GemmVariant::kBlocked, false, false, m, n, k, 0.5f,
                 a.data(), k, b.data(), n, 3.0f, c.data(), n);
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_NEAR(c[i], 0.5f * product[i] + 3.0f * 2.0f, 1e-4f);
}

TEST(GemmVariantNames, ParseAndFormat)
{
    EXPECT_EQ(parse_gemm_variant("naive"), GemmVariant::kNaive);
    EXPECT_EQ(parse_gemm_variant("blocked"), GemmVariant::kBlocked);
    EXPECT_EQ(parse_gemm_variant("packed"), GemmVariant::kPacked);
    EXPECT_THROW(parse_gemm_variant("magic"), Error);
    EXPECT_STREQ(to_string(GemmVariant::kPacked), "packed");
}

} // namespace
} // namespace orpheus
