/** @file Unit tests for Shape. */
#include "core/shape.hpp"

#include <gtest/gtest.h>

#include "core/status.hpp"

namespace orpheus {
namespace {

TEST(Shape, ScalarDefaults)
{
    Shape scalar;
    EXPECT_EQ(scalar.rank(), 0u);
    EXPECT_EQ(scalar.numel(), 1);
    EXPECT_TRUE(scalar.is_fully_defined());
    EXPECT_TRUE(scalar.strides().empty());
    EXPECT_EQ(scalar.to_string(), "[]");
}

TEST(Shape, BasicProperties)
{
    Shape shape({1, 3, 224, 224});
    EXPECT_EQ(shape.rank(), 4u);
    EXPECT_EQ(shape.numel(), 1 * 3 * 224 * 224);
    EXPECT_EQ(shape.dim(0), 1);
    EXPECT_EQ(shape.dim(3), 224);
    EXPECT_EQ(shape.to_string(), "[1, 3, 224, 224]");
}

TEST(Shape, NegativeAxisIndexing)
{
    Shape shape({2, 3, 5});
    EXPECT_EQ(shape.dim(-1), 5);
    EXPECT_EQ(shape.dim(-3), 2);
    EXPECT_THROW(shape.dim(3), Error);
    EXPECT_THROW(shape.dim(-4), Error);
}

TEST(Shape, RowMajorStrides)
{
    Shape shape({2, 3, 4});
    const auto strides = shape.strides();
    ASSERT_EQ(strides.size(), 3u);
    EXPECT_EQ(strides[0], 12);
    EXPECT_EQ(strides[1], 4);
    EXPECT_EQ(strides[2], 1);
}

TEST(Shape, ZeroExtentMakesZeroNumel)
{
    Shape shape({4, 0, 2});
    EXPECT_EQ(shape.numel(), 0);
    EXPECT_FALSE(shape.is_fully_defined());
}

TEST(Shape, NegativeDimensionRejected)
{
    EXPECT_THROW(Shape({1, -2}), Error);
    EXPECT_THROW(Shape(std::vector<Shape::dim_type>{-1}), Error);
}

TEST(Shape, SetDimValidates)
{
    Shape shape({2, 3});
    shape.set_dim(1, 7);
    EXPECT_EQ(shape.dim(1), 7);
    EXPECT_THROW(shape.set_dim(2, 1), Error);
    EXPECT_THROW(shape.set_dim(0, -1), Error);
}

TEST(Shape, Equality)
{
    EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
    EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
    EXPECT_NE(Shape({1, 2}), Shape({1, 2, 1}));
    EXPECT_EQ(Shape{}, Shape{});
}

TEST(Shape, NormalizeAxis)
{
    Shape shape({4, 5, 6});
    EXPECT_EQ(shape.normalize_axis(0), 0);
    EXPECT_EQ(shape.normalize_axis(-1), 2);
    EXPECT_THROW(shape.normalize_axis(3), Error);
}

} // namespace
} // namespace orpheus
