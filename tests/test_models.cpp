/** @file Structural tests for the model zoo (the paper's five networks). */
#include "models/model_zoo.hpp"

#include <gtest/gtest.h>

#include "graph/shape_inference.hpp"
#include "models/builder.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::make_random;

std::size_t
count_ops(const Graph &graph, const std::string &op_type)
{
    std::size_t count = 0;
    for (const Node &node : graph.nodes())
        count += node.op_type() == op_type ? 1 : 0;
    return count;
}

struct ZooCase {
    std::string name;
    Shape input_shape;
    Shape output_shape;
    std::size_t min_convs;
};

class ZooModel : public ::testing::TestWithParam<ZooCase>
{
};

TEST_P(ZooModel, BuildsValidatesAndInfersShapes)
{
    const ZooCase &c = GetParam();
    const Graph graph = models::by_name(c.name);
    EXPECT_EQ(graph.name(), c.name);
    EXPECT_NO_THROW(graph.validate());

    ASSERT_EQ(graph.inputs().size(), 1u);
    EXPECT_EQ(graph.inputs().front().shape, c.input_shape);

    const ValueInfoMap infos = infer_shapes(graph);
    ASSERT_EQ(graph.outputs().size(), 1u);
    EXPECT_EQ(infos.at(graph.outputs().front().name).shape,
              c.output_shape);
    EXPECT_GE(count_ops(graph, op_names::kConv), c.min_convs) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperNetworks, ZooModel,
    ::testing::Values(
        ZooCase{"wrn-40-2", Shape({1, 3, 32, 32}), Shape({1, 10}), 40},
        ZooCase{"mobilenet-v1", Shape({1, 3, 224, 224}), Shape({1, 1000}),
                27},
        ZooCase{"resnet-18", Shape({1, 3, 224, 224}), Shape({1, 1000}),
                17},
        ZooCase{"resnet-50", Shape({1, 3, 224, 224}), Shape({1, 1000}),
                49},
        ZooCase{"inception-v3", Shape({1, 3, 299, 299}), Shape({1, 1000}),
                90},
        ZooCase{"squeezenet-1.1", Shape({1, 3, 224, 224}),
                Shape({1, 1000}), 26}),
    [](const ::testing::TestParamInfo<ZooCase> &info) {
        std::string name = info.param.name;
        for (char &ch : name) {
            if (ch == '-' || ch == '.')
                ch = '_';
        }
        return name;
    });

TEST(ModelZoo, NamesListMatchesByName)
{
    for (const std::string &name : models::zoo_names())
        EXPECT_NO_THROW(models::by_name(name)) << name;
    EXPECT_THROW(models::by_name("alexnet"), Error);
}

TEST(ModelZoo, SeedsAreReproducible)
{
    const Graph a = models::tiny_cnn(10, 7);
    const Graph b = models::tiny_cnn(10, 7);
    for (const auto &[name, tensor] : a.initializers()) {
        ASSERT_TRUE(b.has_initializer(name));
        EXPECT_EQ(max_abs_diff(tensor, b.initializer(name)), 0.0f) << name;
    }

    const Graph c = models::tiny_cnn(10, 8);
    bool any_differs = false;
    for (const auto &[name, tensor] : a.initializers()) {
        if (tensor.dtype() == DataType::kFloat32 &&
            max_abs_diff(tensor, c.initializer(name)) > 0.0f) {
            any_differs = true;
        }
    }
    EXPECT_TRUE(any_differs) << "different seeds must differ";
}

TEST(ModelZoo, MobilenetIsDepthwiseHeavy)
{
    const Graph graph = models::mobilenet_v1();
    std::size_t depthwise = 0;
    for (const Node &node : graph.nodes()) {
        if (node.op_type() == op_names::kConv &&
            node.attrs().get_int("group", 1) > 1) {
            ++depthwise;
        }
    }
    EXPECT_EQ(depthwise, 13u);
}

TEST(ModelZoo, WidthMultiplierScalesChannels)
{
    const Graph full = models::mobilenet_v1(1000, 1.0f);
    const Graph half = models::mobilenet_v1(1000, 0.5f);
    // Compare the first conv's output channels.
    const auto first_conv_out = [](const Graph &graph) {
        for (const Node &node : graph.nodes()) {
            if (node.op_type() == op_names::kConv)
                return graph.initializer(node.input(1)).shape().dim(0);
        }
        return std::int64_t{-1};
    };
    EXPECT_EQ(first_conv_out(full), 32);
    EXPECT_EQ(first_conv_out(half), 16);
}

TEST(ModelZoo, ResnetsContainResidualAdds)
{
    EXPECT_GE(count_ops(models::resnet18(), op_names::kAdd), 8u);
    EXPECT_GE(count_ops(models::resnet50(), op_names::kAdd), 16u);
}

TEST(ModelZoo, InceptionContainsConcats)
{
    const Graph graph = models::inception_v3();
    EXPECT_GE(count_ops(graph, op_names::kConcat), 11u);
    // Non-square kernels must appear (1x7 / 7x1 towers).
    bool saw_nonsquare = false;
    for (const Node &node : graph.nodes()) {
        if (node.op_type() != op_names::kConv)
            continue;
        const auto kernel = node.attrs().get_ints("kernel_shape", {});
        if (kernel.size() == 2 && kernel[0] != kernel[1])
            saw_nonsquare = true;
    }
    EXPECT_TRUE(saw_nonsquare);
}

TEST(ModelZoo, CustomClassCounts)
{
    const Graph graph = models::wrn_40_2(100);
    const ValueInfoMap infos = infer_shapes(graph);
    EXPECT_EQ(infos.at(graph.outputs().front().name).shape,
              Shape({1, 100}));
}

TEST(ModelZoo, SmallModelsRunEndToEnd)
{
    Engine cnn(models::tiny_cnn());
    EXPECT_EQ(cnn.run(make_random(Shape({1, 3, 8, 8}), 1)).shape(),
              Shape({1, 10}));
    Engine mlp(models::tiny_mlp());
    EXPECT_EQ(mlp.run(make_random(Shape({1, 32}), 2)).shape(),
              Shape({1, 10}));
}

TEST(ModelZoo, Wrn40RunsEndToEnd)
{
    // The smallest paper network runs a full inference in-test.
    Engine engine(models::wrn_40_2());
    const Tensor output = engine.run(make_random(Shape({1, 3, 32, 32}), 3));
    ASSERT_EQ(output.shape(), Shape({1, 10}));
    double sum = 0.0;
    for (int i = 0; i < 10; ++i)
        sum += output.data<float>()[i];
    EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(ModelZoo, PaperNetworksCompileUnderEveryConvPin)
{
    // Plan-time smoke test (no inference): every model compiles with
    // each conv implementation pinned.
    for (const char *impl : {"im2col_gemm", "spatial_pack"}) {
        EngineOptions options;
        options.backend.forced_impl[op_names::kConv] = impl;
        EXPECT_NO_THROW(Engine(models::resnet18(), options)) << impl;
    }
}

TEST(GraphBuilder, ShapeTrackingMatchesInference)
{
    GraphBuilder b("check", 0x6b);
    std::string x = b.input("input", Shape({1, 3, 17, 23}));
    x = b.cbr(x, 6, 3, 2, 1);
    x = b.maxpool(x, 3, 2, 1);
    x = b.conv_bn_relu(x, 8, 1, 7, 1, 0, 3);
    x = b.global_average_pool(x);
    x = b.flatten(x);
    x = b.dense(x, 5);
    const Shape tracked = b.shape_of(x);
    b.output(x);
    const Graph graph = b.take();
    const ValueInfoMap infos = infer_shapes(graph);
    EXPECT_EQ(infos.at(graph.outputs().front().name).shape, tracked);
}

TEST(GraphBuilder, RejectsUnknownValue)
{
    GraphBuilder b("check", 0x6c);
    EXPECT_THROW(b.shape_of("ghost"), Error);
    EXPECT_THROW(b.relu("ghost"), Error);
}

} // namespace
} // namespace orpheus
