/** @file Unit + equivalence tests for the graph simplification passes. */
#include "graph/passes/pass.hpp"

#include <gtest/gtest.h>

#include "models/builder.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::expect_close;
using testing::make_random;

/** Counts nodes of @p op_type. */
std::size_t
count_ops(const Graph &graph, const std::string &op_type)
{
    std::size_t count = 0;
    for (const Node &node : graph.nodes())
        count += node.op_type() == op_type ? 1 : 0;
    return count;
}

/** Runs @p graph before/after simplification and checks equal results. */
void
expect_equivalent_after_simplification(Graph graph, float atol = 1e-4f)
{
    EngineOptions raw_options;
    raw_options.apply_simplifications = false;
    Graph raw_graph = graph; // Copy before simplification mutates it.
    Engine raw(std::move(raw_graph), raw_options);

    EngineOptions simplified_options;
    simplified_options.apply_simplifications = true;
    Engine simplified(std::move(graph), simplified_options);

    Tensor input = make_random(raw.graph().inputs().front().shape, 0xe1);
    expect_close(simplified.run(input), raw.run(input), atol, 1e-3f);
}

TEST(EliminateIdentity, RemovesIdentityChain)
{
    Graph graph("g");
    graph.add_input("x", Shape({1, 4}));
    graph.add_node(op_names::kIdentity, {"x"}, {"a"});
    graph.add_node(op_names::kIdentity, {"a"}, {"b"});
    graph.add_node(op_names::kRelu, {"b"}, {"y"});
    graph.add_output("y");

    auto pass = make_eliminate_identity_pass();
    EXPECT_TRUE(pass->run(graph));
    EXPECT_EQ(graph.nodes().size(), 1u);
    EXPECT_EQ(graph.nodes()[0].input(0), "x");
    EXPECT_NO_THROW(graph.validate());
    EXPECT_FALSE(pass->run(graph)) << "second run must be a no-op";
}

TEST(EliminateIdentity, RemovesInferenceDropout)
{
    Graph graph("g");
    graph.add_input("x", Shape({1, 4}));
    graph.add_node(op_names::kDropout, {"x"}, {"a"});
    graph.add_node(op_names::kRelu, {"a"}, {"y"});
    graph.add_output("y");

    EXPECT_TRUE(make_eliminate_identity_pass()->run(graph));
    EXPECT_EQ(count_ops(graph, op_names::kDropout), 0u);
}

TEST(EliminateIdentity, IdentityFeedingGraphOutput)
{
    Graph graph("g");
    graph.add_input("x", Shape({1, 4}));
    graph.add_node(op_names::kRelu, {"x"}, {"a"});
    graph.add_node(op_names::kIdentity, {"a"}, {"y"});
    graph.add_output("y");

    EXPECT_TRUE(make_eliminate_identity_pass()->run(graph));
    // The graph output was rewired to the relu's value.
    EXPECT_TRUE(graph.is_graph_output("a"));
    EXPECT_NO_THROW(graph.validate());
}

TEST(FoldBatchNorm, FoldsIntoConvAndPreservesNumerics)
{
    GraphBuilder b("g", 0xb1);
    std::string x = b.input("input", Shape({1, 3, 8, 8}));
    x = b.batchnorm(b.conv_k(x, 8, 3, 1, 1));
    b.output(x);
    Graph graph = b.take();

    Graph folded = graph;
    auto pass = make_fold_batchnorm_pass();
    EXPECT_TRUE(pass->run(folded));
    EXPECT_EQ(count_ops(folded, op_names::kBatchNormalization), 0u);
    // The conv gained a bias input.
    for (const Node &node : folded.nodes()) {
        if (node.op_type() == op_names::kConv)
            EXPECT_TRUE(node.has_input(2));
    }

    expect_equivalent_after_simplification(std::move(graph));
}

TEST(FoldBatchNorm, LeavesBnWithMultipleConsumersOfConv)
{
    GraphBuilder b("g", 0xbb);
    std::string x = b.input("input", Shape({1, 3, 8, 8}));
    std::string conv = b.conv_k(x, 3, 3, 1, 1);
    std::string bn = b.batchnorm(conv);
    std::string merged = b.add(bn, conv); // conv has 2 consumers
    b.output(merged);
    Graph graph = b.take();

    EXPECT_FALSE(make_fold_batchnorm_pass()->run(graph));
    EXPECT_EQ(count_ops(graph, op_names::kBatchNormalization), 1u);
}

TEST(FoldBatchNorm, StandaloneBnUntouched)
{
    GraphBuilder b("g", 0xbc);
    std::string x = b.input("input", Shape({1, 4, 6, 6}));
    b.output(b.batchnorm(x));
    Graph graph = b.take();
    EXPECT_FALSE(make_fold_batchnorm_pass()->run(graph));
}

TEST(FuseConvActivation, FusesReluIntoConv)
{
    GraphBuilder b("g", 0xfa);
    std::string x = b.input("input", Shape({1, 3, 8, 8}));
    x = b.relu(b.conv_k(x, 8, 3, 1, 1));
    b.output(x);
    Graph graph = b.take();

    Graph fused = graph;
    EXPECT_TRUE(make_fuse_conv_activation_pass()->run(fused));
    EXPECT_EQ(count_ops(fused, op_names::kRelu), 0u);
    for (const Node &node : fused.nodes()) {
        if (node.op_type() == op_names::kConv)
            EXPECT_EQ(node.attrs().get_string("fused_activation", ""),
                      "relu");
    }

    expect_equivalent_after_simplification(std::move(graph));
}

TEST(FuseConvActivation, FusesLeakyReluWithAlpha)
{
    Graph graph("g");
    graph.add_input("x", Shape({1, 2, 6, 6}));
    graph.add_initializer("w", Tensor(Shape({4, 2, 3, 3})));
    AttributeMap conv_attrs;
    conv_attrs.set("kernel_shape", std::vector<std::int64_t>{3, 3});
    conv_attrs.set("pads", std::vector<std::int64_t>{1, 1, 1, 1});
    graph.add_node(op_names::kConv, {"x", "w"}, {"c"},
                   std::move(conv_attrs));
    AttributeMap leaky_attrs;
    leaky_attrs.set("alpha", 0.2f);
    graph.add_node(op_names::kLeakyRelu, {"c"}, {"y"},
                   std::move(leaky_attrs));
    graph.add_output("y");

    EXPECT_TRUE(make_fuse_conv_activation_pass()->run(graph));
    const Node &conv = graph.nodes()[0];
    EXPECT_EQ(conv.attrs().get_string("fused_activation", ""),
              "leaky_relu");
    EXPECT_FLOAT_EQ(conv.attrs().get_float("fused_alpha", 0), 0.2f);
}

TEST(FuseConvActivation, DoesNotFuseWhenConvHasOtherConsumers)
{
    GraphBuilder b("g", 0xfb);
    std::string x = b.input("input", Shape({1, 3, 8, 8}));
    std::string conv = b.conv_k(x, 3, 3, 1, 1);
    std::string act = b.relu(conv);
    b.output(b.add(act, conv));
    Graph graph = b.take();
    EXPECT_FALSE(make_fuse_conv_activation_pass()->run(graph));
}

TEST(FoldPad, MergesZeroPadIntoConv)
{
    Graph graph("g");
    graph.add_input("x", Shape({1, 2, 8, 8}));
    AttributeMap pad_attrs;
    pad_attrs.set("pads",
                  std::vector<std::int64_t>{0, 0, 1, 2, 0, 0, 3, 4});
    graph.add_node(op_names::kPad, {"x"}, {"p"}, std::move(pad_attrs));
    graph.add_initializer("w", Tensor(Shape({4, 2, 3, 3})));
    AttributeMap conv_attrs;
    conv_attrs.set("kernel_shape", std::vector<std::int64_t>{3, 3});
    conv_attrs.set("pads", std::vector<std::int64_t>{1, 1, 1, 1});
    graph.add_node(op_names::kConv, {"p", "w"}, {"y"},
                   std::move(conv_attrs));
    graph.add_output("y");

    EXPECT_TRUE(make_fold_pad_pass()->run(graph));
    EXPECT_EQ(count_ops(graph, op_names::kPad), 0u);
    const Node &conv = graph.nodes()[0];
    const auto pads = conv.attrs().get_ints("pads", {});
    ASSERT_EQ(pads.size(), 4u);
    EXPECT_EQ(pads[0], 2); // top: 1 + 1
    EXPECT_EQ(pads[1], 3); // left: 2 + 1
    EXPECT_EQ(pads[2], 4); // bottom: 3 + 1
    EXPECT_EQ(pads[3], 5); // right: 4 + 1
}

TEST(FoldPad, LeavesNonZeroValuePad)
{
    Graph graph("g");
    graph.add_input("x", Shape({1, 2, 8, 8}));
    AttributeMap pad_attrs;
    pad_attrs.set("pads",
                  std::vector<std::int64_t>{0, 0, 1, 1, 0, 0, 1, 1});
    pad_attrs.set("value", 1.0f);
    graph.add_node(op_names::kPad, {"x"}, {"p"}, std::move(pad_attrs));
    graph.add_initializer("w", Tensor(Shape({4, 2, 3, 3})));
    AttributeMap conv_attrs;
    conv_attrs.set("kernel_shape", std::vector<std::int64_t>{3, 3});
    graph.add_node(op_names::kConv, {"p", "w"}, {"y"},
                   std::move(conv_attrs));
    graph.add_output("y");

    EXPECT_FALSE(make_fold_pad_pass()->run(graph));
}

TEST(ConstantFolding, ConstantNodeBecomesInitializer)
{
    Graph graph("g");
    graph.add_input("x", Shape({1, 2}));
    AttributeMap attrs;
    attrs.set("value", Tensor::from_values(Shape({1, 2}), {1, 2}));
    graph.add_node(op_names::kConstant, {}, {"c"}, std::move(attrs));
    graph.add_node(op_names::kAdd, {"x", "c"}, {"y"});
    graph.add_output("y");

    EXPECT_TRUE(make_constant_folding_pass()->run(graph));
    EXPECT_EQ(count_ops(graph, op_names::kConstant), 0u);
    EXPECT_TRUE(graph.has_initializer("c"));
    EXPECT_NO_THROW(graph.validate());
}

TEST(ConstantFolding, ReshapeOfInitializerFolds)
{
    Graph graph("g");
    graph.add_input("x", Shape({1, 6}));
    graph.add_initializer("w",
                          Tensor::from_values(Shape({2, 3}),
                                              {1, 2, 3, 4, 5, 6}));
    graph.add_initializer("spec", Tensor::from_int64s({1, 6}));
    graph.add_node(op_names::kReshape, {"w", "spec"}, {"wr"});
    graph.add_node(op_names::kAdd, {"x", "wr"}, {"y"});
    graph.add_output("y");

    EXPECT_TRUE(make_constant_folding_pass()->run(graph));
    EXPECT_EQ(count_ops(graph, op_names::kReshape), 0u);
    ASSERT_TRUE(graph.has_initializer("wr"));
    EXPECT_EQ(graph.initializer("wr").shape(), Shape({1, 6}));
    EXPECT_EQ(graph.initializer("wr").data<float>()[5], 6.0f);
}

TEST(EliminateDeadNodes, RemovesUnreachableAndGcsInitializers)
{
    Graph graph("g");
    graph.add_input("x", Shape({1, 4}));
    graph.add_initializer("unused", Tensor(Shape({2})));
    graph.add_node(op_names::kRelu, {"x"}, {"y"});
    graph.add_node(op_names::kRelu, {"x"}, {"dead"});
    graph.add_output("y");

    EXPECT_TRUE(make_eliminate_dead_nodes_pass()->run(graph));
    EXPECT_EQ(graph.nodes().size(), 1u);
    EXPECT_FALSE(graph.has_initializer("unused"));
    EXPECT_NO_THROW(graph.validate());
}

TEST(PassManager, PipelineConvergesAndReports)
{
    GraphBuilder b("g", 0xcafe);
    std::string x = b.input("input", Shape({1, 3, 16, 16}));
    x = b.cbr(x, 8, 3, 1, 1);
    x = b.cbr(x, 8, 3, 1, 1);
    b.output(x);
    Graph graph = b.take();

    const std::size_t nodes_before = graph.nodes().size();
    const PassManagerReport report = simplify_graph(graph);
    EXPECT_TRUE(report.changed());
    EXPECT_GE(report.iterations, 2);
    EXPECT_LT(graph.nodes().size(), nodes_before);
    // conv+bn+relu stacks collapse to two fused convs.
    EXPECT_EQ(graph.nodes().size(), 2u);
    EXPECT_EQ(count_ops(graph, op_names::kBatchNormalization), 0u);
    EXPECT_EQ(count_ops(graph, op_names::kRelu), 0u);
}

TEST(PassManager, FullPipelinePreservesResNetStyleBlockNumerics)
{
    GraphBuilder b("g", 0x1e5);
    std::string x = b.input("input", Shape({1, 3, 16, 16}));
    std::string trunk = b.cbr(x, 8, 3, 1, 1);
    std::string path = b.cbr(trunk, 8, 3, 1, 1);
    path = b.batchnorm(b.conv_k(path, 8, 3, 1, 1));
    std::string merged = b.relu(b.add(path, trunk));
    merged = b.global_average_pool(merged);
    merged = b.flatten(merged);
    merged = b.dense(merged, 10);
    b.output(b.softmax(merged));

    expect_equivalent_after_simplification(b.take());
}

} // namespace
} // namespace orpheus
