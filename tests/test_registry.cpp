/** @file Tests for the kernel registry, including the headline
 *  extensibility claim: adding a new backend/op touches only the
 *  registry. */
#include "backend/kernel_registry.hpp"

#include <gtest/gtest.h>

#include "graph/shape_inference.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::make_random;

LayerInit
conv_init(const Node &node, const BackendConfig &config, Shape input,
          Shape weight, Shape output)
{
    LayerInit init;
    init.node = &node;
    init.config = &config;
    init.input_infos = {ValueInfo{"x", DataType::kFloat32, input},
                        ValueInfo{"w", DataType::kFloat32, weight}};
    init.output_infos = {ValueInfo{"y", DataType::kFloat32, output}};
    init.constant_inputs = {nullptr, nullptr};
    return init;
}

TEST(Registry, BuiltinOpsPresent)
{
    KernelRegistry &registry = KernelRegistry::instance();
    for (const char *op :
         {op_names::kConv, op_names::kRelu, op_names::kMaxPool,
          op_names::kGemm, op_names::kSoftmax, op_names::kConcat,
          op_names::kBatchNormalization, op_names::kFlatten}) {
        EXPECT_TRUE(registry.has_op(op)) << op;
    }
    EXPECT_FALSE(registry.has_op("Einsum"));
}

TEST(Registry, ConvHasMultipleImplementations)
{
    KernelRegistry &registry = KernelRegistry::instance();
    const auto kernels = registry.kernels(op_names::kConv);
    EXPECT_GE(kernels.size(), 5u);
    // Priority-sorted descending.
    for (std::size_t i = 1; i < kernels.size(); ++i)
        EXPECT_GE(kernels[i - 1]->priority, kernels[i]->priority);
}

TEST(Registry, FindByImplName)
{
    KernelRegistry &registry = KernelRegistry::instance();
    EXPECT_NE(registry.find(op_names::kConv, "im2col_gemm"), nullptr);
    EXPECT_NE(registry.find(op_names::kConv, "spatial_pack"), nullptr);
    EXPECT_NE(registry.find(op_names::kConv, "minnl"), nullptr);
    EXPECT_EQ(registry.find(op_names::kConv, "quantum"), nullptr);
}

TEST(Registry, DepthwisePredicateRespectsConfig)
{
    KernelRegistry &registry = KernelRegistry::instance();

    AttributeMap attrs;
    attrs.set("kernel_shape", std::vector<std::int64_t>{3, 3});
    attrs.set("pads", std::vector<std::int64_t>{1, 1, 1, 1});
    attrs.set("group", std::int64_t{8});
    Node node(op_names::kConv, "dw", {"x", "w"}, {"y"}, attrs);

    // Pin the scalar tier so the winning candidate is deterministic on
    // hosts where the SIMD depthwise variant would outrank it; the SIMD
    // predicate itself is covered by test_simd.
    BackendConfig allow;
    allow.allow_simd = false;
    LayerInit init = conv_init(node, allow, Shape({1, 8, 8, 8}),
                               Shape({8, 1, 3, 3}), Shape({1, 8, 8, 8}));
    auto candidates = registry.candidates(init);
    ASSERT_FALSE(candidates.empty());
    EXPECT_EQ(candidates.front()->impl_name, "depthwise_direct");

    BackendConfig deny;
    deny.allow_simd = false;
    deny.allow_depthwise_specialization = false;
    init.config = &deny;
    candidates = registry.candidates(init);
    ASSERT_FALSE(candidates.empty());
    EXPECT_NE(candidates.front()->impl_name, "depthwise_direct");
}

TEST(Registry, WinogradIsOptIn)
{
    KernelRegistry &registry = KernelRegistry::instance();
    AttributeMap attrs;
    attrs.set("kernel_shape", std::vector<std::int64_t>{3, 3});
    attrs.set("pads", std::vector<std::int64_t>{1, 1, 1, 1});
    Node node(op_names::kConv, "c", {"x", "w"}, {"y"}, attrs);

    BackendConfig defaults;
    LayerInit init = conv_init(node, defaults, Shape({1, 4, 8, 8}),
                               Shape({4, 4, 3, 3}), Shape({1, 4, 8, 8}));
    for (const KernelDef *def : registry.candidates(init))
        EXPECT_NE(def->impl_name, "winograd");

    BackendConfig with_winograd;
    with_winograd.allow_winograd = true;
    init.config = &with_winograd;
    auto candidates = registry.candidates(init);
    ASSERT_FALSE(candidates.empty());
    EXPECT_EQ(candidates.front()->impl_name, "winograd");
}

TEST(Registry, AddValidatesDefinition)
{
    KernelRegistry &registry = KernelRegistry::instance();
    KernelDef missing_factory;
    missing_factory.op_type = "X";
    missing_factory.impl_name = "y";
    EXPECT_THROW(registry.add(std::move(missing_factory)), Error);

    KernelDef unnamed;
    unnamed.create = [](const LayerInit &) -> std::unique_ptr<Layer> {
        return nullptr;
    };
    EXPECT_THROW(registry.add(std::move(unnamed)), Error);
}

/**
 * The extensibility proof: register a brand-new op ("Negate") with a
 * shape rule and a kernel, then run it through the unmodified engine.
 */
class NegateLayer : public Layer
{
  public:
    void
    forward(const std::vector<const Tensor *> &inputs,
            const std::vector<Tensor *> &outputs) override
    {
        const float *in = inputs[0]->data<float>();
        float *out = outputs[0]->data<float>();
        for (std::int64_t i = 0; i < inputs[0]->numel(); ++i)
            out[i] = -in[i];
    }
};

TEST(Registry, NewOpEndToEndThroughEngine)
{
    register_shape_inference_rule(
        "Negate", [](const ShapeInferenceContext &ctx) {
            return std::vector<ValueInfo>{ctx.input(0)};
        });
    KernelRegistry::instance().add(
        {"Negate", "reference", 10, nullptr, [](const LayerInit &) {
             return std::make_unique<NegateLayer>();
         }});

    Graph graph("negate");
    graph.add_input("x", Shape({1, 4}));
    graph.add_node("Negate", {"x"}, {"y"});
    graph.add_output("y");

    Engine engine(std::move(graph));
    Tensor input = Tensor::from_values(Shape({1, 4}), {1, -2, 3, -4});
    const Tensor output = engine.run(input);
    EXPECT_FLOAT_EQ(output.data<float>()[0], -1.0f);
    EXPECT_FLOAT_EQ(output.data<float>()[1], 2.0f);
    EXPECT_FLOAT_EQ(output.data<float>()[3], 4.0f);
}

TEST(Registry, ReRegistrationReplaces)
{
    KernelRegistry &registry = KernelRegistry::instance();
    registry.add({"ReplaceMe", "impl", 5, nullptr, [](const LayerInit &) {
                      return std::make_unique<NegateLayer>();
                  }});
    registry.add({"ReplaceMe", "impl", 9, nullptr, [](const LayerInit &) {
                      return std::make_unique<NegateLayer>();
                  }});
    const auto kernels = registry.kernels("ReplaceMe");
    ASSERT_EQ(kernels.size(), 1u);
    EXPECT_EQ(kernels[0]->priority, 9);
}

TEST(Registry, InstantiateStampsImplName)
{
    KernelRegistry &registry = KernelRegistry::instance();
    const KernelDef *def = registry.find("Negate", "reference");
    ASSERT_NE(def, nullptr);
    LayerInit init;
    Node node("Negate", "n", {"x"}, {"y"});
    init.node = &node;
    BackendConfig config;
    init.config = &config;
    auto layer = registry.instantiate(*def, init);
    EXPECT_EQ(layer->impl_name(), "reference");
}

} // namespace
} // namespace orpheus
