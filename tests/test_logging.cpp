/** @file Unit tests for the leveled logger. */
#include "core/logging.hpp"

#include <gtest/gtest.h>

namespace orpheus {
namespace {

TEST(Logging, ParseKnownLevels)
{
    EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
    EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
    EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
    EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
    EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
    EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
}

TEST(Logging, UnknownLevelFallsBackToWarn)
{
    EXPECT_EQ(parse_log_level("verbose"), LogLevel::kWarn);
    EXPECT_EQ(parse_log_level(""), LogLevel::kWarn);
}

TEST(Logging, LevelNamesRoundTrip)
{
    for (LogLevel level :
         {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
          LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
        EXPECT_EQ(parse_log_level(to_string(level)), level);
    }
}

TEST(Logging, EnabledRespectsThreshold)
{
    const LogLevel saved = log_level();
    set_log_level(LogLevel::kInfo);
    EXPECT_FALSE(log_enabled(LogLevel::kDebug));
    EXPECT_TRUE(log_enabled(LogLevel::kInfo));
    EXPECT_TRUE(log_enabled(LogLevel::kError));
    set_log_level(LogLevel::kOff);
    EXPECT_FALSE(log_enabled(LogLevel::kError));
    set_log_level(saved);
}

TEST(Logging, MacroEvaluatesMessageLazily)
{
    const LogLevel saved = log_level();
    set_log_level(LogLevel::kError);
    int evaluations = 0;
    const auto count = [&evaluations] {
        ++evaluations;
        return "x";
    };
    ORPHEUS_DEBUG("never built: " << count());
    EXPECT_EQ(evaluations, 0);
    set_log_level(saved);
}

} // namespace
} // namespace orpheus
