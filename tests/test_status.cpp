/** @file Unit tests for Status / Error / ORPHEUS_CHECK. */
#include "core/status.hpp"

#include <gtest/gtest.h>

namespace orpheus {
namespace {

TEST(Status, DefaultIsOk)
{
    Status status;
    EXPECT_TRUE(status.is_ok());
    EXPECT_TRUE(static_cast<bool>(status));
    EXPECT_EQ(status.code(), StatusCode::kOk);
    EXPECT_EQ(status.to_string(), "OK");
    EXPECT_NO_THROW(status.throw_if_error());
}

TEST(Status, NamedOkFactory)
{
    EXPECT_TRUE(Status::ok().is_ok());
}

TEST(Status, ErrorCarriesCodeAndMessage)
{
    const Status status = invalid_argument_error("bad shape");
    EXPECT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(status.message(), "bad shape");
    EXPECT_EQ(status.to_string(), "InvalidArgument: bad shape");
}

TEST(Status, ThrowIfErrorThrowsWithMessage)
{
    const Status status = not_found_error("missing file");
    try {
        status.throw_if_error();
        FAIL() << "expected orpheus::Error";
    } catch (const Error &error) {
        EXPECT_NE(std::string(error.what()).find("missing file"),
                  std::string::npos);
    }
}

TEST(Status, AllFactoriesMapToTheirCodes)
{
    EXPECT_EQ(invalid_argument_error("x").code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(not_found_error("x").code(), StatusCode::kNotFound);
    EXPECT_EQ(unimplemented_error("x").code(), StatusCode::kUnimplemented);
    EXPECT_EQ(out_of_range_error("x").code(), StatusCode::kOutOfRange);
    EXPECT_EQ(failed_precondition_error("x").code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(internal_error("x").code(), StatusCode::kInternal);
    EXPECT_EQ(parse_error("x").code(), StatusCode::kParseError);
}

TEST(Status, CodeNames)
{
    EXPECT_STREQ(to_string(StatusCode::kOk), "OK");
    EXPECT_STREQ(to_string(StatusCode::kParseError), "ParseError");
    EXPECT_STREQ(to_string(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(Check, PassingConditionDoesNotThrow)
{
    EXPECT_NO_THROW(ORPHEUS_CHECK(1 + 1 == 2, "math broke"));
}

TEST(Check, FailingConditionThrowsWithContext)
{
    try {
        const int got = 3;
        ORPHEUS_CHECK(got == 2, "expected 2, got " << got);
        FAIL() << "expected orpheus::Error";
    } catch (const Error &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("expected 2, got 3"), std::string::npos);
        EXPECT_NE(what.find("got == 2"), std::string::npos)
            << "message should quote the failed condition: " << what;
    }
}

TEST(Status, ServingCodesRoundTrip)
{
    EXPECT_EQ(deadline_exceeded_error("too slow").code(),
              StatusCode::kDeadlineExceeded);
    EXPECT_EQ(deadline_exceeded_error("too slow").to_string(),
              "DeadlineExceeded: too slow");
    EXPECT_EQ(resource_exhausted_error("queue full").code(),
              StatusCode::kResourceExhausted);
    EXPECT_EQ(resource_exhausted_error("queue full").to_string(),
              "ResourceExhausted: queue full");
    EXPECT_STREQ(to_string(StatusCode::kDeadlineExceeded),
                 "DeadlineExceeded");
    EXPECT_STREQ(to_string(StatusCode::kResourceExhausted),
                 "ResourceExhausted");
}

TEST(Status, DeadlineExceededErrorIsAnError)
{
    // The cancellation exception must be catchable at Error boundaries
    // (try_run's mapping relies on catch order, not on a disjoint
    // hierarchy).
    EXPECT_THROW(throw DeadlineExceededError("cancelled"), Error);
}

TEST(Status, DataCorruptionCodeRoundTrips)
{
    EXPECT_EQ(data_corruption_error("bad numbers").code(),
              StatusCode::kDataCorruption);
    EXPECT_EQ(data_corruption_error("bad numbers").to_string(),
              "DataCorruption: bad numbers");
    EXPECT_STREQ(to_string(StatusCode::kDataCorruption),
                 "DataCorruption");
    EXPECT_THROW(throw DataCorruptionError("wrong"), Error);
}

TEST(Check, ReturnIfErrorPropagates)
{
    const auto fails = [] { return internal_error("inner"); };
    const auto outer = [&]() -> Status {
        ORPHEUS_RETURN_IF_ERROR(fails());
        return Status::ok();
    };
    EXPECT_EQ(outer().code(), StatusCode::kInternal);

    const auto succeeds = []() -> Status {
        ORPHEUS_RETURN_IF_ERROR(Status::ok());
        return internal_error("reached end");
    };
    EXPECT_EQ(succeeds().code(), StatusCode::kInternal);
}

} // namespace
} // namespace orpheus
