/** @file Tests for kernel-selection strategies (heuristic, pinned,
 *  auto-tune). */
#include "runtime/selection.hpp"

#include <gtest/gtest.h>

#include "core/cpu_features.hpp"
#include "models/builder.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::expect_close;
using testing::make_random;

/** A 2-conv graph: one depthwise, one dense 3x3. */
Graph
two_conv_graph()
{
    GraphBuilder b("g", 0x5e1);
    std::string x = b.input("input", Shape({1, 8, 10, 10}));
    x = b.conv_k(x, 8, 3, 1, 1, /*group=*/8, /*bias=*/true);   // depthwise
    x = b.conv_k(x, 16, 3, 1, 1, /*group=*/1, /*bias=*/true);  // dense
    b.output(x);
    return b.take();
}

/** Impl name selected for each Conv node in plan order. */
std::vector<std::string>
conv_impls(const Engine &engine)
{
    std::vector<std::string> impls;
    for (const PlanStep &step : engine.steps()) {
        if (step.op_type == op_names::kConv)
            impls.push_back(step.layer->impl_name());
    }
    return impls;
}

TEST(Selection, HeuristicPicksSpecialisedKernels)
{
    // On a host with the SIMD tier the heuristic prefers the vector
    // variants of the same specialised kernels.
    const std::string suffix =
        simd_enabled() ? std::string("_") + simd_isa_compiled() : "";
    Engine engine(two_conv_graph());
    const auto impls = conv_impls(engine);
    ASSERT_EQ(impls.size(), 2u);
    EXPECT_EQ(impls[0], "depthwise" + (suffix.empty() ? "_direct" : suffix));
    EXPECT_EQ(impls[1], "im2col_gemm" + suffix);
}

TEST(Selection, ForcedImplAppliesToAllNodesOfOp)
{
    EngineOptions options;
    options.backend.forced_impl[op_names::kConv] = "spatial_pack";
    Engine engine(two_conv_graph(), options);
    for (const std::string &impl : conv_impls(engine))
        EXPECT_EQ(impl, "spatial_pack");
}

TEST(Selection, NodePinOverridesOpPin)
{
    Graph graph = two_conv_graph();
    // Find the second conv's node name.
    std::string second_conv;
    for (const Node &node : graph.nodes()) {
        if (node.op_type() == op_names::kConv)
            second_conv = node.name();
    }

    EngineOptions options;
    options.backend.forced_impl[op_names::kConv] = "spatial_pack";
    options.backend.node_impl[second_conv] = "direct";
    Engine engine(std::move(graph), options);
    const auto impls = conv_impls(engine);
    ASSERT_EQ(impls.size(), 2u);
    EXPECT_EQ(impls[0], "spatial_pack");
    EXPECT_EQ(impls[1], "direct");
}

TEST(Selection, UnknownPinFailsAtCompileTime)
{
    EngineOptions options;
    options.backend.forced_impl[op_names::kConv] = "does_not_exist";
    EXPECT_THROW(Engine(two_conv_graph(), options), Error);
}

TEST(Selection, DepthwiseDisabledFallsBackToGenericPath)
{
    EngineOptions options;
    options.backend.allow_depthwise_specialization = false;
    const std::string expected =
        simd_enabled() ? std::string("im2col_gemm_") + simd_isa_compiled()
                       : std::string("im2col_gemm");
    Engine engine(two_conv_graph(), options);
    const auto impls = conv_impls(engine);
    ASSERT_EQ(impls.size(), 2u);
    EXPECT_EQ(impls[0], expected) << "depthwise must take the grouped "
                                     "GEMM path when specialisation "
                                     "is disabled";
}

TEST(Selection, AutoTuneSelectsAndLogsMeasurements)
{
    EngineOptions options;
    options.selection = SelectionStrategy::kAutoTune;
    options.autotune_runs = 1;
    Engine engine(two_conv_graph(), options);

    EXPECT_FALSE(engine.autotune_log().empty());
    for (const auto &[node, measurements] : engine.autotune_log()) {
        EXPECT_GE(measurements.size(), 2u)
            << node << " should have timed several candidates";
        for (const auto &[impl, ms] : measurements)
            EXPECT_GE(ms, 0.0) << impl;
    }
}

TEST(Selection, AutoTuneProducesSameNumericsAsHeuristic)
{
    Engine heuristic(two_conv_graph());
    EngineOptions options;
    options.selection = SelectionStrategy::kAutoTune;
    options.autotune_runs = 1;
    Engine tuned(two_conv_graph(), options);

    Tensor input = make_random(Shape({1, 8, 10, 10}), 0x5e2);
    expect_close(tuned.run(input), heuristic.run(input), 1e-3f, 1e-3f);
}

TEST(Selection, StrategyNames)
{
    EXPECT_STREQ(to_string(SelectionStrategy::kHeuristic), "heuristic");
    EXPECT_STREQ(to_string(SelectionStrategy::kAutoTune), "autotune");
}

} // namespace
} // namespace orpheus
