/** @file Randomized property tests: invariants that must hold over the
 *  whole configuration space, not just hand-picked cases. */
#include <cmath>

#include <gtest/gtest.h>

#include "graph/passes/pass.hpp"
#include "models/builder.hpp"
#include "ops/conv/conv.hpp"
#include "ops/eltwise.hpp"
#include "ops/quant/quantize.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::expect_close;

/** Property: every conv algorithm computes the same function as the
 *  direct reference on arbitrary valid configurations. */
TEST(PropertyConv, AllAlgorithmsAgreeOnRandomConfigs)
{
    Rng rng(0x99e0);
    for (int trial = 0; trial < 40; ++trial) {
        Conv2dParams p;
        p.kernel_h = rng.uniform_int(1, 5);
        p.kernel_w = rng.uniform_int(1, 5);
        p.stride_h = rng.uniform_int(1, 2);
        p.stride_w = rng.uniform_int(1, 2);
        p.pad_top = rng.uniform_int(0, 2);
        p.pad_left = rng.uniform_int(0, 2);
        p.pad_bottom = rng.uniform_int(0, 2);
        p.pad_right = rng.uniform_int(0, 2);
        p.dilation_h = rng.uniform_int(1, 2);
        p.dilation_w = rng.uniform_int(1, 2);

        const std::int64_t batch = rng.uniform_int(1, 2);
        std::int64_t in_c = rng.uniform_int(1, 12);
        std::int64_t out_c = rng.uniform_int(1, 12);
        // Group: random common divisor of in_c and out_c.
        std::vector<std::int64_t> divisors;
        for (std::int64_t g = 1; g <= std::min(in_c, out_c); ++g) {
            if (in_c % g == 0 && out_c % g == 0)
                divisors.push_back(g);
        }
        p.group = divisors[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(divisors.size()) - 1))];

        // Input large enough for the dilated kernel.
        const std::int64_t min_h =
            p.dilated_kernel_h() - p.pad_top - p.pad_bottom;
        const std::int64_t min_w =
            p.dilated_kernel_w() - p.pad_left - p.pad_right;
        const std::int64_t in_h =
            std::max<std::int64_t>(min_h, 1) + rng.uniform_int(0, 9);
        const std::int64_t in_w =
            std::max<std::int64_t>(min_w, 1) + rng.uniform_int(0, 9);

        Tensor input{Shape({batch, in_c, in_h, in_w})};
        fill_uniform(input, rng);
        Tensor weight{
            Shape({out_c, in_c / p.group, p.kernel_h, p.kernel_w})};
        fill_uniform(weight, rng);
        Tensor bias{Shape({out_c})};
        fill_uniform(bias, rng);

        const Shape out_shape(
            {batch, out_c, p.out_h(in_h), p.out_w(in_w)});
        Tensor reference(out_shape);
        conv2d(ConvAlgo::kDirect, input, weight, &bias, p,
               ActivationSpec::relu(), reference);

        SCOPED_TRACE("trial " + std::to_string(trial) + ": k=" +
                     std::to_string(p.kernel_h) + "x" +
                     std::to_string(p.kernel_w) + " s=" +
                     std::to_string(p.stride_h) + "/" +
                     std::to_string(p.stride_w) + " g=" +
                     std::to_string(p.group) + " c=" +
                     std::to_string(in_c) + "->" + std::to_string(out_c) +
                     " hw=" + std::to_string(in_h) + "x" +
                     std::to_string(in_w));

        Tensor candidate(out_shape);
        conv2d(ConvAlgo::kIm2colGemm, input, weight, &bias, p,
               ActivationSpec::relu(), candidate);
        expect_close(candidate, reference, 1e-3f, 1e-3f);

        conv2d(ConvAlgo::kSpatialPack, input, weight, &bias, p,
               ActivationSpec::relu(), candidate);
        expect_close(candidate, reference, 1e-3f, 1e-3f);

        Conv2dArgs probe;
        probe.params = p;
        probe.in_c = in_c;
        probe.out_c = out_c;
        if (conv2d_winograd_supported(probe)) {
            conv2d(ConvAlgo::kWinograd, input, weight, &bias, p,
                   ActivationSpec::relu(), candidate);
            expect_close(candidate, reference, 2e-3f, 2e-3f);
        }
        if (conv2d_is_depthwise(probe)) {
            conv2d(ConvAlgo::kDepthwiseDirect, input, weight, &bias, p,
                   ActivationSpec::relu(), candidate);
            expect_close(candidate, reference, 1e-3f, 1e-3f);
        }
    }
}

/** Builds a random conv/pool/activation/residual network. */
Graph
random_network(Rng &rng, int trial)
{
    GraphBuilder b("random" + std::to_string(trial), rng.next_u64());
    const std::int64_t channels = rng.uniform_int(2, 6);
    std::string x =
        b.input("input", Shape({1, channels, 16, 16}));

    // Values eligible as residual partners, keyed by tracked shape.
    std::vector<std::string> history{x};
    const int layers = static_cast<int>(rng.uniform_int(3, 9));
    for (int layer = 0; layer < layers; ++layer) {
        switch (rng.uniform_int(0, 4)) {
          case 0:
            x = b.cbr(x, rng.uniform_int(2, 8), 3, 1, 1);
            break;
          case 1:
            x = b.conv_k(x, rng.uniform_int(2, 8), 1, 1, 0, 1,
                         /*bias=*/true);
            break;
          case 2:
            x = b.relu(b.batchnorm(x));
            break;
          case 3: {
            // Residual add with any earlier same-shape value.
            std::vector<std::string> candidates;
            for (const std::string &value : history) {
                if (b.shape_of(value) == b.shape_of(x) && value != x)
                    candidates.push_back(value);
            }
            if (!candidates.empty()) {
                x = b.add(x, candidates[static_cast<std::size_t>(
                                 rng.uniform_int(
                                     0, static_cast<std::int64_t>(
                                            candidates.size()) -
                                            1))]);
            } else {
                x = b.relu(x);
            }
            break;
          }
          default:
            x = b.relu(x);
            break;
        }
        history.push_back(x);
    }
    x = b.global_average_pool(x);
    x = b.flatten(x);
    x = b.dense(x, 5);
    b.output(b.softmax(x));
    return b.take();
}

/** Property: the simplification pipeline never changes results, on
 *  arbitrary generated networks. */
TEST(PropertyPasses, SimplificationPreservesSemanticsOnRandomNetworks)
{
    Rng rng(0x99e1);
    for (int trial = 0; trial < 15; ++trial) {
        SCOPED_TRACE("trial " + std::to_string(trial));
        Graph graph = random_network(rng, trial);

        EngineOptions raw_options;
        raw_options.apply_simplifications = false;
        Engine raw{Graph(graph), raw_options};
        Engine simplified{std::move(graph)};

        Tensor input{raw.graph().inputs().front().shape};
        fill_uniform(input, rng);
        expect_close(simplified.run(input), raw.run(input), 1e-3f, 1e-3f);
    }
}

/** Property: the planner-off and planner-on engines agree on random
 *  networks (arena aliasing never corrupts live data). */
TEST(PropertyPlanner, ArenaReuseNeverCorruptsRandomNetworks)
{
    Rng rng(0x99e2);
    for (int trial = 0; trial < 10; ++trial) {
        SCOPED_TRACE("trial " + std::to_string(trial));
        Graph graph = random_network(rng, 100 + trial);

        EngineOptions no_planner;
        no_planner.use_memory_planner = false;
        Engine unplanned{Graph(graph), no_planner};
        Engine planned{std::move(graph)};

        Tensor input{planned.graph().inputs().front().shape};
        fill_uniform(input, rng);
        expect_close(planned.run(input), unplanned.run(input), 1e-6f,
                     1e-6f);
    }
}

/** Property: quantization parameters always represent zero exactly and
 *  bound the round-trip error by half a scale step. */
TEST(PropertyQuant, ParamsInvariantsOverRandomRanges)
{
    Rng rng(0x99e3);
    for (int trial = 0; trial < 200; ++trial) {
        const float a = rng.uniform(-100.0f, 100.0f);
        const float b = rng.uniform(-100.0f, 100.0f);
        const float lo = std::min(a, b);
        const float hi = std::max(a, b);
        const QuantParams params = choose_uint8_params(lo, hi);

        SCOPED_TRACE("range [" + std::to_string(lo) + ", " +
                     std::to_string(hi) + "]");
        EXPECT_GT(params.scale, 0.0f);
        EXPECT_GE(params.zero_point, 0);
        EXPECT_LE(params.zero_point, 255);
        EXPECT_NEAR(params.dequantize(params.zero_point), 0.0f,
                    params.scale * 0.5f);

        // Random values inside the (zero-widened) range round-trip
        // within half a step.
        const float wlo = std::min(lo, 0.0f), whi = std::max(hi, 0.0f);
        for (int i = 0; i < 10; ++i) {
            const float value = rng.uniform(wlo, whi);
            const std::int32_t q = std::clamp(params.quantize(value), 0,
                                              255);
            EXPECT_NEAR(params.dequantize(q), value,
                        params.scale * 0.5f + 1e-5f);
        }
    }
}

/** Property: eltwise broadcasting matches a brute-force reference on
 *  random shape pairs. */
TEST(PropertyEltwise, BroadcastMatchesBruteForce)
{
    Rng rng(0x99e4);
    for (int trial = 0; trial < 50; ++trial) {
        // Build two broadcast-compatible shapes.
        const std::size_t rank =
            static_cast<std::size_t>(rng.uniform_int(1, 4));
        std::vector<Shape::dim_type> dims_a, dims_b;
        for (std::size_t d = 0; d < rank; ++d) {
            const Shape::dim_type extent = rng.uniform_int(1, 4);
            const int mode = static_cast<int>(rng.uniform_int(0, 2));
            dims_a.push_back(mode == 1 ? 1 : extent);
            dims_b.push_back(mode == 2 ? 1 : extent);
        }
        // Possibly drop leading dims of b (rank broadcast).
        const std::size_t drop =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(rank)));
        dims_b.erase(dims_b.begin(),
                     dims_b.begin() + static_cast<std::ptrdiff_t>(drop));

        Tensor a{Shape(dims_a)};
        fill_uniform(a, rng);
        Tensor b{Shape(dims_b)};
        fill_uniform(b, rng, 0.5f, 2.0f); // Away from zero for kDiv.

        const Shape result = broadcast_result_shape(a.shape(), b.shape());
        Tensor out(result);
        eltwise(EltwiseOp::kDiv, a, b, out);

        SCOPED_TRACE("a=" + a.shape().to_string() +
                     " b=" + b.shape().to_string());

        // Brute force via coordinate arithmetic.
        std::vector<Shape::dim_type> index(result.rank(), 0);
        for (std::int64_t flat = 0; flat < result.numel(); ++flat) {
            const auto element_of = [&](const Tensor &t) {
                const std::size_t offset = result.rank() - t.shape().rank();
                std::int64_t linear = 0;
                for (std::size_t d = 0; d < t.shape().rank(); ++d) {
                    const Shape::dim_type extent =
                        t.shape().dim(static_cast<int>(d));
                    const Shape::dim_type coordinate =
                        extent == 1 ? 0 : index[offset + d];
                    linear = linear * extent + coordinate;
                }
                return t.data<float>()[linear];
            };
            ASSERT_NEAR(out.data<float>()[flat],
                        element_of(a) / element_of(b), 1e-5f)
                << "flat index " << flat;

            for (std::size_t d = result.rank(); d-- > 0;) {
                if (++index[d] < result.dim(static_cast<int>(d)))
                    break;
                index[d] = 0;
            }
        }
    }
}

} // namespace
} // namespace orpheus
