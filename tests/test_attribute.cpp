/** @file Unit tests for Attribute and AttributeMap. */
#include "graph/attribute.hpp"

#include <gtest/gtest.h>

namespace orpheus {
namespace {

TEST(Attribute, KindPredicatesAndAccessors)
{
    Attribute i(std::int64_t{42});
    EXPECT_TRUE(i.is_int());
    EXPECT_EQ(i.as_int(), 42);
    EXPECT_THROW(i.as_float(), Error);

    Attribute f(1.5f);
    EXPECT_TRUE(f.is_float());
    EXPECT_EQ(f.as_float(), 1.5f);
    EXPECT_THROW(f.as_string(), Error);

    Attribute s("hello");
    EXPECT_TRUE(s.is_string());
    EXPECT_EQ(s.as_string(), "hello");

    Attribute ints(std::vector<std::int64_t>{1, 2, 3});
    EXPECT_TRUE(ints.is_ints());
    EXPECT_EQ(ints.as_ints().size(), 3u);

    Attribute floats(std::vector<float>{0.5f, 0.25f});
    EXPECT_TRUE(floats.is_floats());
    EXPECT_EQ(floats.as_floats()[1], 0.25f);

    Attribute tensor(Tensor::from_values(Shape({2}), {1, 2}));
    EXPECT_TRUE(tensor.is_tensor());
    EXPECT_EQ(tensor.as_tensor().numel(), 2);
}

TEST(Attribute, IntPromotionFromPlainInt)
{
    Attribute a(7); // int literal, not int64_t
    EXPECT_TRUE(a.is_int());
    EXPECT_EQ(a.as_int(), 7);
}

TEST(Attribute, ToStringFormats)
{
    EXPECT_EQ(Attribute(std::int64_t{3}).to_string(), "int(3)");
    EXPECT_EQ(Attribute("x").to_string(), "string(\"x\")");
    EXPECT_EQ(Attribute(std::vector<std::int64_t>{1, 2}).to_string(),
              "ints[1, 2]");
}

TEST(AttributeMap, DefaultedLookups)
{
    AttributeMap map;
    map.set("stride", std::int64_t{2});
    map.set("alpha", 0.1f);
    map.set("mode", "constant");
    map.set("pads", std::vector<std::int64_t>{1, 1});

    EXPECT_TRUE(map.has("stride"));
    EXPECT_FALSE(map.has("dilation"));
    EXPECT_EQ(map.get_int("stride", 1), 2);
    EXPECT_EQ(map.get_int("dilation", 1), 1);
    EXPECT_EQ(map.get_float("alpha", 0.0f), 0.1f);
    EXPECT_EQ(map.get_float("beta", 0.5f), 0.5f);
    EXPECT_EQ(map.get_string("mode", "edge"), "constant");
    EXPECT_EQ(map.get_string("other", "edge"), "edge");
    EXPECT_EQ(map.get_ints("pads", {}).size(), 2u);
    EXPECT_EQ(map.get_ints("missing", {9}).at(0), 9);
}

TEST(AttributeMap, AtThrowsForMissingKey)
{
    AttributeMap map;
    EXPECT_THROW(map.at("nope"), Error);
    map.set("k", std::int64_t{1});
    EXPECT_EQ(map.at("k").as_int(), 1);
}

TEST(AttributeMap, IterationIsSortedByKey)
{
    AttributeMap map;
    map.set("zeta", std::int64_t{1});
    map.set("alpha", std::int64_t{2});
    std::vector<std::string> keys;
    for (const auto &[key, value] : map) {
        (void)value;
        keys.push_back(key);
    }
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "alpha");
    EXPECT_EQ(keys[1], "zeta");
}

TEST(AttributeMap, SetOverwrites)
{
    AttributeMap map;
    map.set("k", std::int64_t{1});
    map.set("k", std::int64_t{2});
    EXPECT_EQ(map.at("k").as_int(), 2);
    EXPECT_EQ(map.size(), 1u);
}

} // namespace
} // namespace orpheus
