/** @file Unit tests for static shape inference. */
#include "graph/shape_inference.hpp"

#include <gtest/gtest.h>

#include "graph/op_params.hpp"

namespace orpheus {
namespace {

/** Convenience: builds attrs for a square-kernel conv. */
AttributeMap
conv_attrs(std::int64_t k, std::int64_t s, std::int64_t p,
           std::int64_t group = 1, std::int64_t dilation = 1)
{
    AttributeMap attrs;
    attrs.set("kernel_shape", std::vector<std::int64_t>{k, k});
    attrs.set("strides", std::vector<std::int64_t>{s, s});
    attrs.set("pads", std::vector<std::int64_t>{p, p, p, p});
    attrs.set("dilations", std::vector<std::int64_t>{dilation, dilation});
    attrs.set("group", group);
    return attrs;
}

TEST(ShapeInference, ConvBasic)
{
    Graph graph("g");
    graph.add_input("x", Shape({1, 3, 32, 32}));
    graph.add_initializer("w", Tensor(Shape({16, 3, 3, 3})));
    graph.add_node(op_names::kConv, {"x", "w"}, {"y"}, conv_attrs(3, 1, 1));
    graph.add_output("y");

    const auto infos = infer_shapes(graph);
    EXPECT_EQ(infos.at("y").shape, Shape({1, 16, 32, 32}));
}

TEST(ShapeInference, ConvStridePadDilation)
{
    Graph graph("g");
    graph.add_input("x", Shape({2, 8, 56, 56}));
    graph.add_initializer("w", Tensor(Shape({8, 8, 3, 3})));
    graph.add_node(op_names::kConv, {"x", "w"}, {"y"},
                   conv_attrs(3, 2, 1, 1, 2));
    graph.add_output("y");

    // Dilated kernel extent = 5; out = (56 + 2 - 5)/2 + 1 = 27.
    const auto infos = infer_shapes(graph);
    EXPECT_EQ(infos.at("y").shape, Shape({2, 8, 27, 27}));
}

TEST(ShapeInference, ConvGrouped)
{
    Graph graph("g");
    graph.add_input("x", Shape({1, 32, 14, 14}));
    graph.add_initializer("w", Tensor(Shape({32, 1, 3, 3})));
    graph.add_node(op_names::kConv, {"x", "w"}, {"y"},
                   conv_attrs(3, 1, 1, /*group=*/32));
    graph.add_output("y");
    const auto infos = infer_shapes(graph);
    EXPECT_EQ(infos.at("y").shape, Shape({1, 32, 14, 14}));
}

TEST(ShapeInference, ConvChannelMismatchRejected)
{
    Graph graph("g");
    graph.add_input("x", Shape({1, 4, 8, 8}));
    graph.add_initializer("w", Tensor(Shape({8, 3, 3, 3})));
    graph.add_node(op_names::kConv, {"x", "w"}, {"y"}, conv_attrs(3, 1, 1));
    graph.add_output("y");
    EXPECT_THROW(infer_shapes(graph), Error);
}

TEST(ShapeInference, ConvBiasLengthChecked)
{
    Graph graph("g");
    graph.add_input("x", Shape({1, 3, 8, 8}));
    graph.add_initializer("w", Tensor(Shape({8, 3, 3, 3})));
    graph.add_initializer("b", Tensor(Shape({4})));
    graph.add_node(op_names::kConv, {"x", "w", "b"}, {"y"},
                   conv_attrs(3, 1, 1));
    graph.add_output("y");
    EXPECT_THROW(infer_shapes(graph), Error);
}

TEST(ShapeInference, MaxPoolFloorAndCeil)
{
    for (const bool ceil_mode : {false, true}) {
        Graph graph("g");
        graph.add_input("x", Shape({1, 4, 7, 7}));
        AttributeMap attrs;
        attrs.set("kernel_shape", std::vector<std::int64_t>{2, 2});
        attrs.set("strides", std::vector<std::int64_t>{2, 2});
        attrs.set("ceil_mode",
                  static_cast<std::int64_t>(ceil_mode ? 1 : 0));
        graph.add_node(op_names::kMaxPool, {"x"}, {"y"}, std::move(attrs));
        graph.add_output("y");
        const auto infos = infer_shapes(graph);
        const Shape::dim_type expected = ceil_mode ? 4 : 3;
        EXPECT_EQ(infos.at("y").shape, Shape({1, 4, expected, expected}))
            << "ceil_mode=" << ceil_mode;
    }
}

TEST(ShapeInference, GlobalAveragePool)
{
    Graph graph("g");
    graph.add_input("x", Shape({2, 10, 9, 9}));
    graph.add_node(op_names::kGlobalAveragePool, {"x"}, {"y"});
    graph.add_output("y");
    EXPECT_EQ(infer_shapes(graph).at("y").shape, Shape({2, 10, 1, 1}));
}

TEST(ShapeInference, GemmWithTransposeFlags)
{
    Graph graph("g");
    graph.add_input("a", Shape({4, 8}));
    graph.add_initializer("b", Tensor(Shape({16, 8})));
    AttributeMap attrs;
    attrs.set("transB", std::int64_t{1});
    graph.add_node(op_names::kGemm, {"a", "b"}, {"y"}, std::move(attrs));
    graph.add_output("y");
    EXPECT_EQ(infer_shapes(graph).at("y").shape, Shape({4, 16}));
}

TEST(ShapeInference, GemmInnerDimMismatch)
{
    Graph graph("g");
    graph.add_input("a", Shape({4, 8}));
    graph.add_initializer("b", Tensor(Shape({9, 16})));
    graph.add_node(op_names::kGemm, {"a", "b"}, {"y"});
    graph.add_output("y");
    EXPECT_THROW(infer_shapes(graph), Error);
}

TEST(ShapeInference, FlattenAxes)
{
    Graph graph("g");
    graph.add_input("x", Shape({2, 3, 4, 5}));
    AttributeMap attrs;
    attrs.set("axis", std::int64_t{2});
    graph.add_node(op_names::kFlatten, {"x"}, {"y"}, std::move(attrs));
    graph.add_output("y");
    EXPECT_EQ(infer_shapes(graph).at("y").shape, Shape({6, 20}));
}

TEST(ShapeInference, ReshapeWithWildcardAndZero)
{
    Graph graph("g");
    graph.add_input("x", Shape({2, 3, 4}));
    graph.add_initializer("shape", Tensor::from_int64s({0, -1}));
    graph.add_node(op_names::kReshape, {"x", "shape"}, {"y"});
    graph.add_output("y");
    EXPECT_EQ(infer_shapes(graph).at("y").shape, Shape({2, 12}));
}

TEST(ShapeInference, ReshapeRequiresConstantShape)
{
    Graph graph("g");
    graph.add_input("x", Shape({2, 3}));
    graph.add_input("shape", Shape({2}), DataType::kInt64);
    graph.add_node(op_names::kReshape, {"x", "shape"}, {"y"});
    graph.add_output("y");
    EXPECT_THROW(infer_shapes(graph), Error);
}

TEST(ShapeInference, AddBroadcast)
{
    Graph graph("g");
    graph.add_input("a", Shape({2, 3, 4}));
    graph.add_initializer("b", Tensor(Shape({3, 1})));
    graph.add_node(op_names::kAdd, {"a", "b"}, {"y"});
    graph.add_output("y");
    EXPECT_EQ(infer_shapes(graph).at("y").shape, Shape({2, 3, 4}));
}

TEST(ShapeInference, AddIncompatibleBroadcast)
{
    Graph graph("g");
    graph.add_input("a", Shape({2, 3}));
    graph.add_initializer("b", Tensor(Shape({4})));
    graph.add_node(op_names::kAdd, {"a", "b"}, {"y"});
    graph.add_output("y");
    EXPECT_THROW(infer_shapes(graph), Error);
}

TEST(ShapeInference, ConcatSumsAxis)
{
    Graph graph("g");
    graph.add_input("a", Shape({1, 3, 8, 8}));
    graph.add_input("b", Shape({1, 5, 8, 8}));
    AttributeMap attrs;
    attrs.set("axis", std::int64_t{1});
    graph.add_node(op_names::kConcat, {"a", "b"}, {"y"}, std::move(attrs));
    graph.add_output("y");
    EXPECT_EQ(infer_shapes(graph).at("y").shape, Shape({1, 8, 8, 8}));
}

TEST(ShapeInference, ConcatMismatchedOtherAxes)
{
    Graph graph("g");
    graph.add_input("a", Shape({1, 3, 8, 8}));
    graph.add_input("b", Shape({1, 5, 9, 8}));
    AttributeMap attrs;
    attrs.set("axis", std::int64_t{1});
    graph.add_node(op_names::kConcat, {"a", "b"}, {"y"}, std::move(attrs));
    graph.add_output("y");
    EXPECT_THROW(infer_shapes(graph), Error);
}

TEST(ShapeInference, BatchNormPreservesShape)
{
    Graph graph("g");
    graph.add_input("x", Shape({1, 6, 4, 4}));
    for (const char *param : {"gamma", "beta", "mean", "var"})
        graph.add_initializer(param, Tensor(Shape({6})));
    graph.add_node(op_names::kBatchNormalization,
                   {"x", "gamma", "beta", "mean", "var"}, {"y"});
    graph.add_output("y");
    EXPECT_EQ(infer_shapes(graph).at("y").shape, Shape({1, 6, 4, 4}));
}

TEST(ShapeInference, PadExtendsDims)
{
    Graph graph("g");
    graph.add_input("x", Shape({1, 2, 4, 4}));
    AttributeMap attrs;
    attrs.set("pads", std::vector<std::int64_t>{0, 0, 1, 2, 0, 0, 3, 4});
    graph.add_node(op_names::kPad, {"x"}, {"y"}, std::move(attrs));
    graph.add_output("y");
    EXPECT_EQ(infer_shapes(graph).at("y").shape, Shape({1, 2, 8, 10}));
}

TEST(ShapeInference, ReduceMeanKeepdims)
{
    for (const bool keepdims : {true, false}) {
        Graph graph("g");
        graph.add_input("x", Shape({2, 3, 4, 5}));
        AttributeMap attrs;
        attrs.set("axes", std::vector<std::int64_t>{2, 3});
        attrs.set("keepdims",
                  static_cast<std::int64_t>(keepdims ? 1 : 0));
        graph.add_node(op_names::kReduceMean, {"x"}, {"y"},
                       std::move(attrs));
        graph.add_output("y");
        const Shape expected =
            keepdims ? Shape({2, 3, 1, 1}) : Shape({2, 3});
        EXPECT_EQ(infer_shapes(graph).at("y").shape, expected);
    }
}

TEST(ShapeInference, UnknownOpRejected)
{
    Graph graph("g");
    graph.add_input("x", Shape({1}));
    graph.add_node("FancyNewOp", {"x"}, {"y"});
    graph.add_output("y");
    EXPECT_THROW(infer_shapes(graph), Error);
}

TEST(ShapeInference, CustomRuleCanBeRegistered)
{
    register_shape_inference_rule(
        "DoubleWidth", [](const ShapeInferenceContext &ctx) {
            Shape out = ctx.input(0).shape;
            out.set_dim(static_cast<int>(out.rank()) - 1,
                        out.dim(-1) * 2);
            return std::vector<ValueInfo>{
                ValueInfo{"", ctx.input(0).dtype, out}};
        });
    EXPECT_TRUE(has_shape_inference_rule("DoubleWidth"));

    Graph graph("g");
    graph.add_input("x", Shape({1, 4}));
    graph.add_node("DoubleWidth", {"x"}, {"y"});
    graph.add_output("y");
    EXPECT_EQ(infer_shapes(graph).at("y").shape, Shape({1, 8}));
}

TEST(OpParams, ConvDefaultsFromWeightShape)
{
    AttributeMap attrs;
    const Conv2dParams p =
        Conv2dParams::from_attrs(attrs, Shape({8, 4, 5, 3}));
    EXPECT_EQ(p.kernel_h, 5);
    EXPECT_EQ(p.kernel_w, 3);
    EXPECT_EQ(p.stride_h, 1);
    EXPECT_EQ(p.group, 1);
    EXPECT_EQ(p.out_h(10), 6);
    EXPECT_EQ(p.out_w(10), 8);
}

TEST(OpParams, RoundTripThroughAttrs)
{
    Conv2dParams p;
    p.kernel_h = 3;
    p.kernel_w = 1;
    p.stride_h = 2;
    p.stride_w = 2;
    p.pad_top = 1;
    p.pad_bottom = 0;
    p.group = 4;
    AttributeMap attrs;
    p.to_attrs(attrs);
    const Conv2dParams q = Conv2dParams::from_attrs(attrs, Shape());
    EXPECT_EQ(q.kernel_h, 3);
    EXPECT_EQ(q.kernel_w, 1);
    EXPECT_EQ(q.stride_h, 2);
    EXPECT_EQ(q.pad_top, 1);
    EXPECT_EQ(q.pad_bottom, 0);
    EXPECT_EQ(q.group, 4);
}

TEST(OpParams, WindowLargerThanInputRejected)
{
    AttributeMap attrs;
    attrs.set("kernel_shape", std::vector<std::int64_t>{7, 7});
    const Pool2dParams p = Pool2dParams::from_attrs(attrs);
    EXPECT_THROW(p.out_h(4), Error);
}

} // namespace
} // namespace orpheus
