/** @file Integration tests for the inference engine. */
#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include "models/builder.hpp"
#include "models/model_zoo.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::expect_close;
using testing::make_random;

TEST(Engine, TinyCnnProducesValidDistribution)
{
    Engine engine(models::tiny_cnn());
    Tensor input = make_random(Shape({1, 3, 8, 8}), 0xe10);
    const Tensor output = engine.run(input);
    ASSERT_EQ(output.shape(), Shape({1, 10}));
    double sum = 0.0;
    for (int i = 0; i < 10; ++i) {
        EXPECT_GE(output.data<float>()[i], 0.0f);
        sum += output.data<float>()[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(Engine, RunIsDeterministic)
{
    Engine engine(models::tiny_cnn());
    Tensor input = make_random(Shape({1, 3, 8, 8}), 0xe11);
    const Tensor first = engine.run(input);
    const Tensor second = engine.run(input);
    EXPECT_EQ(max_abs_diff(first, second), 0.0f);
}

TEST(Engine, TwoEnginesOfSameModelAgree)
{
    Engine a(models::tiny_cnn());
    Engine b(models::tiny_cnn());
    Tensor input = make_random(Shape({1, 3, 8, 8}), 0xe12);
    expect_close(a.run(input), b.run(input), 1e-6f, 1e-6f);
}

TEST(Engine, MissingInputRejected)
{
    Engine engine(models::tiny_cnn());
    EXPECT_THROW(engine.run(std::map<std::string, Tensor>{}), Error);
}

TEST(Engine, WrongInputShapeRejected)
{
    Engine engine(models::tiny_cnn());
    Tensor wrong = make_random(Shape({1, 3, 9, 9}));
    EXPECT_THROW(engine.run(wrong), Error);
}

TEST(Engine, MultiOutputGraph)
{
    Graph graph("multi");
    graph.add_input("x", Shape({1, 4}));
    graph.add_node(op_names::kRelu, {"x"}, {"pos"});
    graph.add_node(op_names::kSoftmax, {"x"}, {"probs"});
    graph.add_output("pos");
    graph.add_output("probs");

    Engine engine(std::move(graph));
    Tensor input = Tensor::from_values(Shape({1, 4}), {-1, 0, 1, 2});
    const auto outputs = engine.run({{"x", input}});
    ASSERT_EQ(outputs.size(), 2u);
    EXPECT_FLOAT_EQ(outputs.at("pos").data<float>()[0], 0.0f);
    EXPECT_FLOAT_EQ(outputs.at("pos").data<float>()[3], 2.0f);
    EXPECT_GT(outputs.at("probs").data<float>()[3], 0.5f);
}

TEST(Engine, SingleTensorRunRequiresSingleIo)
{
    Graph graph("multi");
    graph.add_input("x", Shape({1, 2}));
    graph.add_input("y", Shape({1, 2}));
    graph.add_node(op_names::kAdd, {"x", "y"}, {"z"});
    graph.add_output("z");
    Engine engine(std::move(graph));
    EXPECT_THROW(engine.run(make_random(Shape({1, 2}))), Error);

    const auto outputs =
        engine.run({{"x", Tensor::from_values(Shape({1, 2}), {1, 2})},
                    {"y", Tensor::from_values(Shape({1, 2}), {10, 20})}});
    EXPECT_FLOAT_EQ(outputs.at("z").data<float>()[1], 22.0f);
}

TEST(Engine, SimplificationsReducePlanSize)
{
    EngineOptions raw;
    raw.apply_simplifications = false;
    Engine unsimplified(models::tiny_cnn(), raw);
    Engine simplified(models::tiny_cnn());
    EXPECT_LT(simplified.steps().size(), unsimplified.steps().size());
    EXPECT_TRUE(simplified.simplification_report().changed());

    Tensor input = make_random(Shape({1, 3, 8, 8}), 0xe13);
    expect_close(simplified.run(input), unsimplified.run(input), 1e-4f,
                 1e-3f);
}

TEST(Engine, ProfilerRecordsEveryStep)
{
    EngineOptions options;
    options.enable_profiling = true;
    Engine engine(models::tiny_cnn(), options);
    Tensor input = make_random(Shape({1, 3, 8, 8}), 0xe14);
    (void)engine.run(input);
    (void)engine.run(input);

    const Profiler &profiler = engine.profiler();
    ASSERT_EQ(profiler.steps().size(), engine.steps().size());
    for (const LayerProfile &step : profiler.steps())
        EXPECT_EQ(step.calls, 2);
    EXPECT_GT(profiler.total_ms(), 0.0);
    EXPECT_NE(profiler.report().find("total:"), std::string::npos);
    EXPECT_NE(profiler.csv().find("node,op,impl"), std::string::npos);

    engine.profiler().reset();
    EXPECT_EQ(engine.profiler().steps().front().calls, 0);
}

TEST(Engine, PlanSummaryListsEveryStep)
{
    Engine engine(models::tiny_mlp());
    const std::string summary = engine.plan_summary();
    EXPECT_NE(summary.find("Gemm"), std::string::npos);
    EXPECT_NE(summary.find("Softmax"), std::string::npos);
    EXPECT_NE(summary.find("#0"), std::string::npos);
}

TEST(Engine, RunStepExecutesInPlace)
{
    Engine engine(models::tiny_mlp());
    Tensor input = make_random(Shape({1, 32}), 0xe15);
    (void)engine.run(input); // Populate inputs.
    EXPECT_NO_THROW(engine.run_step(0));
    EXPECT_THROW(engine.run_step(engine.steps().size()), Error);
}

TEST(Engine, GraphOutputFedDirectlyByInput)
{
    // Degenerate but legal: the graph output IS a node output that is
    // also consumed, plus an output that comes straight from an
    // initializer.
    Graph graph("degenerate");
    graph.add_input("x", Shape({1, 2}));
    graph.add_initializer("const_out",
                          Tensor::from_values(Shape({2}), {5, 6}));
    graph.add_node(op_names::kRelu, {"x"}, {"y"});
    graph.add_output("y");
    graph.add_output("const_out");

    Engine engine(std::move(graph));
    const auto outputs =
        engine.run({{"x", Tensor::from_values(Shape({1, 2}), {-1, 3})}});
    EXPECT_FLOAT_EQ(outputs.at("y").data<float>()[1], 3.0f);
    EXPECT_FLOAT_EQ(outputs.at("const_out").data<float>()[0], 5.0f);
}

TEST(Engine, UnsupportedOpFailsAtCompileTime)
{
    Graph graph("bad");
    graph.add_input("x", Shape({1, 2}));
    graph.add_node(op_names::kIdentity, {"x"}, {"y"}); // keep type known
    graph.add_output("y");
    // Sanity: this compiles fine.
    EXPECT_NO_THROW(Engine(std::move(graph)));

    Graph graph2("bad2");
    graph2.add_input("x", Shape({1, 2}));
    graph2.add_node("TotallyUnknownOp", {"x"}, {"y"});
    graph2.add_output("y");
    EXPECT_THROW(Engine(std::move(graph2)), Error);
}

TEST(Engine, ArenaAccountingExposed)
{
    Engine engine(models::tiny_cnn());
    EXPECT_GT(engine.arena_bytes(), 0u);
    EXPECT_GE(engine.naive_arena_bytes(), engine.arena_bytes());
}

TEST(Engine, MlpThroughDensePath)
{
    Engine engine(models::tiny_mlp());
    Tensor input = make_random(Shape({1, 32}), 0xe16);
    const Tensor output = engine.run(input);
    ASSERT_EQ(output.shape(), Shape({1, 10}));
    double sum = 0.0;
    for (int i = 0; i < 10; ++i)
        sum += output.data<float>()[i];
    EXPECT_NEAR(sum, 1.0, 1e-4);
}

} // namespace
} // namespace orpheus
