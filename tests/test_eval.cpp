/** @file Tests for the evaluation infrastructure: statistics, the
 *  experiment runner, framework personalities and per-layer profiling. */
#include <cmath>

#include <gtest/gtest.h>

#include "eval/experiment.hpp"
#include "eval/layer_bench.hpp"
#include "eval/personalities.hpp"
#include "eval/statistics.hpp"
#include "models/model_zoo.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

TEST(Statistics, KnownValues)
{
    const RunStats stats = compute_stats({4.0, 2.0, 6.0, 8.0});
    EXPECT_EQ(stats.count, 4u);
    EXPECT_DOUBLE_EQ(stats.min, 2.0);
    EXPECT_DOUBLE_EQ(stats.max, 8.0);
    EXPECT_DOUBLE_EQ(stats.mean, 5.0);
    EXPECT_DOUBLE_EQ(stats.median, 5.0);
    EXPECT_NEAR(stats.stddev, std::sqrt(5.0), 1e-12);
}

TEST(Statistics, OddCountMedianAndEmpty)
{
    EXPECT_DOUBLE_EQ(compute_stats({3.0, 1.0, 2.0}).median, 2.0);
    const RunStats empty = compute_stats({});
    EXPECT_EQ(empty.count, 0u);
    EXPECT_EQ(empty.mean, 0.0);
}

TEST(Statistics, GeometricMean)
{
    EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_THROW(geometric_mean({}), Error);
    EXPECT_THROW(geometric_mean({1.0, 0.0}), Error);
}

TEST(Statistics, ToStringMentionsMoments)
{
    const std::string text = compute_stats({1.0, 2.0}).to_string();
    EXPECT_NE(text.find("median"), std::string::npos);
    EXPECT_NE(text.find("n=2"), std::string::npos);
}

TEST(Experiment, TimeCallableRunsExactCounts)
{
    int calls = 0;
    ExperimentConfig config;
    config.warmup_runs = 2;
    config.timed_runs = 3;
    const ExperimentResult result =
        time_callable("counter", [&] { ++calls; }, config);
    EXPECT_EQ(calls, 5);
    EXPECT_EQ(result.samples_ms.size(), 3u);
    EXPECT_EQ(result.stats.count, 3u);
    EXPECT_EQ(result.name, "counter");
}

TEST(Experiment, TimeInferenceOnTinyModel)
{
    Engine engine(models::tiny_cnn());
    ExperimentConfig config;
    config.warmup_runs = 1;
    config.timed_runs = 2;
    const ExperimentResult result = time_inference(engine, config);
    EXPECT_EQ(result.stats.count, 2u);
    EXPECT_GT(result.stats.mean, 0.0);
}

TEST(Experiment, CsvHasHeaderAndRows)
{
    ExperimentResult result;
    result.name = "model-a";
    result.samples_ms = {1.0, 2.0};
    result.stats = compute_stats(result.samples_ms);
    const std::string csv = results_to_csv({result});
    EXPECT_NE(csv.find("name,mean_ms"), std::string::npos);
    EXPECT_NE(csv.find("model-a,1.5"), std::string::npos);
}

TEST(Personalities, AllFiveConstructible)
{
    for (const char *name :
         {"orpheus", "tvm", "pytorch", "darknet", "tflite"}) {
        const FrameworkPersonality p = personality_by_name(name);
        EXPECT_FALSE(p.name.empty());
        EXPECT_FALSE(p.notes.empty());
    }
    EXPECT_THROW(personality_by_name("caffe"), Error);
}

TEST(Personalities, ConfigurationsMatchTheirFramework)
{
    const FrameworkPersonality tvm = tvm_like_personality();
    EXPECT_EQ(tvm.options.backend.forced_impl.at(op_names::kConv),
              "spatial_pack");

    const FrameworkPersonality pytorch = pytorch_like_personality();
    EXPECT_EQ(pytorch.options.backend.forced_impl.at(op_names::kConv),
              "im2col_gemm");
    EXPECT_FALSE(pytorch.options.backend.allow_depthwise_specialization);
    EXPECT_EQ(pytorch.options.backend.gemm_variant, GemmVariant::kBlocked);

    const FrameworkPersonality darknet = darknet_like_personality();
    EXPECT_EQ(darknet.options.backend.gemm_variant, GemmVariant::kNaive);

    const FrameworkPersonality orpheus = orpheus_personality();
    EXPECT_TRUE(orpheus.options.backend.forced_impl.empty());
    EXPECT_EQ(orpheus.options.backend.gemm_variant, GemmVariant::kPacked);
}

TEST(Personalities, TfliteIgnoresThreadRequest)
{
    const FrameworkPersonality tflite = tflite_like_personality();
    EXPECT_TRUE(tflite.ignores_thread_request);
    EXPECT_GE(tflite.effective_threads(1), 1);

    const FrameworkPersonality orpheus = orpheus_personality();
    EXPECT_EQ(orpheus.effective_threads(1), 1);
    EXPECT_EQ(orpheus.effective_threads(4), 4);
}

TEST(Personalities, Figure2SetIsTheComparisonSet)
{
    const auto set = figure2_personalities();
    ASSERT_EQ(set.size(), 4u);
    EXPECT_EQ(set[0].name, "Orpheus");
    EXPECT_EQ(set[1].name, "TVM-like");
    EXPECT_EQ(set[2].name, "PyTorch-like");
    EXPECT_EQ(set[3].name, "DarkNet-like");
}

TEST(LayerBench, SharesSumToOne)
{
    EngineOptions options;
    options.enable_profiling = true;
    Engine engine(models::tiny_cnn(), options);
    const auto timings = profile_layers(engine, /*repetitions=*/2);
    ASSERT_EQ(timings.size(), engine.steps().size());

    double total_share = 0.0;
    for (const LayerTiming &timing : timings) {
        EXPECT_GE(timing.share, 0.0);
        total_share += timing.share;
    }
    EXPECT_NEAR(total_share, 1.0, 1e-9);

    // Sorted by share descending.
    for (std::size_t i = 1; i < timings.size(); ++i)
        EXPECT_GE(timings[i - 1].share, timings[i].share);
}

TEST(LayerBench, RequiresProfilingEngine)
{
    Engine engine(models::tiny_cnn());
    EXPECT_THROW(profile_layers(engine), Error);
}

TEST(LayerBench, ReportsRenderable)
{
    EngineOptions options;
    options.enable_profiling = true;
    Engine engine(models::tiny_mlp(), options);
    const auto timings = profile_layers(engine, 1);
    const std::string table = layer_timings_to_string(timings);
    EXPECT_NE(table.find("impl"), std::string::npos);
    const std::string csv = layer_timings_to_csv(timings);
    EXPECT_NE(csv.find("node,op,impl"), std::string::npos);
    // max_rows limits output.
    const std::string limited = layer_timings_to_string(timings, 1);
    EXPECT_LT(limited.size(), table.size());
}

} // namespace
} // namespace orpheus
