/** @file Tests for the minnl third-party library and its adapter. */
#include "backend/minnl/minnl.h"

#include <gtest/gtest.h>

#include "models/builder.hpp"
#include "ops/conv/conv.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::expect_close;
using testing::make_random;

TEST(Minnl, VersionString)
{
    EXPECT_NE(std::string(minnl_version()).find("minnl"),
              std::string::npos);
}

TEST(Minnl, ConvDescOutputDims)
{
    minnl_conv_desc desc = {};
    desc.batch = 1;
    desc.in_channels = 3;
    desc.in_height = 8;
    desc.in_width = 10;
    desc.out_channels = 4;
    desc.kernel_h = 3;
    desc.kernel_w = 3;
    desc.stride_h = 2;
    desc.stride_w = 1;
    desc.pad_top = desc.pad_bottom = 1;
    desc.pad_left = desc.pad_right = 0;
    desc.groups = 1;
    EXPECT_EQ(minnl_conv_out_height(&desc), 4);
    EXPECT_EQ(minnl_conv_out_width(&desc), 8);
    EXPECT_EQ(minnl_conv_out_height(nullptr), -1);
}

TEST(Minnl, ConvMatchesOrpheusReference)
{
    const std::int64_t in_c = 3, out_c = 5, hw = 9;
    Tensor input = make_random(Shape({1, in_c, hw, hw}), 0xf0);
    Tensor weight = make_random(Shape({out_c, in_c, 3, 3}), 0xf1);
    Tensor bias = make_random(Shape({out_c}), 0xf2);

    Conv2dParams p;
    p.kernel_h = p.kernel_w = 3;
    p.pad_top = p.pad_left = p.pad_bottom = p.pad_right = 1;
    Tensor expected(Shape({1, out_c, hw, hw}));
    conv2d(ConvAlgo::kDirect, input, weight, &bias, p,
           ActivationSpec::none(), expected);

    minnl_conv_desc desc = {};
    desc.batch = 1;
    desc.in_channels = static_cast<int>(in_c);
    desc.in_height = desc.in_width = static_cast<int>(hw);
    desc.out_channels = static_cast<int>(out_c);
    desc.kernel_h = desc.kernel_w = 3;
    desc.stride_h = desc.stride_w = 1;
    desc.pad_top = desc.pad_left = desc.pad_bottom = desc.pad_right = 1;
    desc.groups = 1;

    Tensor actual(Shape({1, out_c, hw, hw}));
    ASSERT_EQ(minnl_conv2d_f32(&desc, input.data<float>(),
                               weight.data<float>(), bias.data<float>(),
                               actual.data<float>()),
              MINNL_OK);
    expect_close(actual, expected, 1e-4f, 1e-3f);
}

TEST(Minnl, GroupedConvMatches)
{
    Tensor input = make_random(Shape({1, 8, 6, 6}), 0xf3);
    Tensor weight = make_random(Shape({8, 1, 3, 3}), 0xf4);

    Conv2dParams p;
    p.kernel_h = p.kernel_w = 3;
    p.pad_top = p.pad_left = p.pad_bottom = p.pad_right = 1;
    p.group = 8;
    Tensor expected(Shape({1, 8, 6, 6}));
    conv2d(ConvAlgo::kDirect, input, weight, nullptr, p,
           ActivationSpec::none(), expected);

    minnl_conv_desc desc = {};
    desc.batch = 1;
    desc.in_channels = 8;
    desc.in_height = desc.in_width = 6;
    desc.out_channels = 8;
    desc.kernel_h = desc.kernel_w = 3;
    desc.stride_h = desc.stride_w = 1;
    desc.pad_top = desc.pad_left = desc.pad_bottom = desc.pad_right = 1;
    desc.groups = 8;

    Tensor actual(Shape({1, 8, 6, 6}));
    ASSERT_EQ(minnl_conv2d_f32(&desc, input.data<float>(),
                               weight.data<float>(), nullptr,
                               actual.data<float>()),
              MINNL_OK);
    expect_close(actual, expected, 1e-4f, 1e-3f);
}

TEST(Minnl, ConvRejectsBadArguments)
{
    minnl_conv_desc desc = {};
    float dummy = 0.0f;
    EXPECT_EQ(minnl_conv2d_f32(nullptr, &dummy, &dummy, nullptr, &dummy),
              MINNL_INVALID_ARGUMENT);
    desc.batch = 1;
    desc.in_channels = 3;
    desc.out_channels = 4;
    desc.groups = 2; // 3 % 2 != 0
    desc.in_height = desc.in_width = 4;
    desc.kernel_h = desc.kernel_w = 1;
    desc.stride_h = desc.stride_w = 1;
    EXPECT_EQ(minnl_conv2d_f32(&desc, &dummy, &dummy, nullptr, &dummy),
              MINNL_INVALID_ARGUMENT);
}

TEST(Minnl, GemmMatchesNaive)
{
    const int m = 7, n = 9, k = 5;
    Tensor a = make_random(Shape({m, k}), 0xf5);
    Tensor b = make_random(Shape({k, n}), 0xf6);
    std::vector<float> expected(static_cast<std::size_t>(m * n));
    gemm_naive(m, n, k, a.data<float>(), k, b.data<float>(), n,
               expected.data(), n);

    std::vector<float> actual(static_cast<std::size_t>(m * n));
    ASSERT_EQ(minnl_gemm_f32(m, n, k, a.data<float>(), b.data<float>(),
                             actual.data()),
              MINNL_OK);
    for (std::size_t i = 0; i < actual.size(); ++i)
        EXPECT_NEAR(actual[i], expected[i], 1e-4f);
}

TEST(Minnl, Relu)
{
    const float src[4] = {-1.0f, 0.0f, 2.0f, -3.0f};
    float dst[4];
    ASSERT_EQ(minnl_relu_f32(src, dst, 4), MINNL_OK);
    EXPECT_EQ(dst[0], 0.0f);
    EXPECT_EQ(dst[2], 2.0f);
    EXPECT_EQ(minnl_relu_f32(nullptr, dst, 4), MINNL_INVALID_ARGUMENT);
}

TEST(MinnlBackend, EngineCanPinConvToMinnl)
{
    GraphBuilder b("g", 0xf7);
    std::string x = b.input("input", Shape({1, 3, 10, 10}));
    x = b.conv_k(x, 6, 3, 1, 1, 1, /*bias=*/true);
    x = b.relu(x);
    b.output(x);
    Graph graph = b.take();

    Engine reference{Graph(graph)};

    EngineOptions options;
    options.backend.forced_impl[op_names::kConv] = "minnl";
    Engine minnl_engine(std::move(graph), options);
    for (const PlanStep &step : minnl_engine.steps()) {
        if (step.op_type == op_names::kConv)
            EXPECT_EQ(step.layer->impl_name(), "minnl");
    }

    Tensor input = make_random(Shape({1, 3, 10, 10}), 0xf8);
    expect_close(minnl_engine.run(input), reference.run(input), 1e-3f,
                 1e-3f);
}

TEST(MinnlBackend, ThirdPartyCanBeDisabled)
{
    GraphBuilder b("g", 0xf9);
    std::string x = b.input("input", Shape({1, 3, 8, 8}));
    x = b.conv_k(x, 4, 3, 1, 1);
    b.output(x);
    Graph graph = b.take();

    EngineOptions options;
    options.backend.allow_third_party = false;
    options.backend.forced_impl[op_names::kConv] = "minnl";
    EXPECT_THROW(Engine(std::move(graph), options), Error)
        << "pinning to a disabled third-party kernel must fail loudly";
}

} // namespace
} // namespace orpheus
