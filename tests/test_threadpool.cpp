/** @file Unit tests for the thread pool and parallel_for. */
#include "core/threadpool.hpp"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/status.hpp"

namespace orpheus {
namespace {

TEST(ThreadPool, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.num_threads(), 1);
    std::vector<int> hits(10, 0);
    pool.parallel_for(10, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i)
            ++hits[static_cast<std::size_t>(i)];
    });
    for (int hit : hits)
        EXPECT_EQ(hit, 1);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    const std::int64_t count = 1000;
    std::vector<std::atomic<int>> hits(count);
    pool.parallel_for(count, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i)
            hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < count; ++i)
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
}

TEST(ThreadPool, MoreThreadsThanWork)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    pool.parallel_for(3, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i)
            hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ZeroAndNegativeCountAreNoops)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallel_for(0, [&](std::int64_t, std::int64_t) { ++calls; });
    pool.parallel_for(-5, [&](std::int64_t, std::int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ReusableAcrossManyInvocations)
{
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<std::int64_t> sum{0};
        pool.parallel_for(100, [&](std::int64_t begin, std::int64_t end) {
            std::int64_t local = 0;
            for (std::int64_t i = begin; i < end; ++i)
                local += i;
            sum.fetch_add(local);
        });
        EXPECT_EQ(sum.load(), 99 * 100 / 2);
    }
}

TEST(ThreadPool, ParallelSumMatchesSerial)
{
    std::vector<double> data(4096);
    std::iota(data.begin(), data.end(), 1.0);

    ThreadPool pool(4);
    std::atomic<std::int64_t> partials{0};
    std::mutex merge_mutex;
    double parallel_sum = 0.0;
    pool.parallel_for(static_cast<std::int64_t>(data.size()),
                      [&](std::int64_t begin, std::int64_t end) {
                          double local = 0.0;
                          for (std::int64_t i = begin; i < end; ++i)
                              local += data[static_cast<std::size_t>(i)];
                          std::lock_guard<std::mutex> lock(merge_mutex);
                          parallel_sum += local;
                          partials.fetch_add(1);
                      });
    EXPECT_DOUBLE_EQ(parallel_sum,
                     std::accumulate(data.begin(), data.end(), 0.0));
    EXPECT_LE(partials.load(), 4);
}

TEST(GlobalThreadPool, DefaultsToSingleThread)
{
    // The paper's evaluation configuration: 1 thread unless overridden.
    set_global_num_threads(1);
    EXPECT_EQ(global_num_threads(), 1);
    EXPECT_EQ(global_thread_pool().num_threads(), 1);
}

TEST(GlobalThreadPool, ResizeRebuildsPool)
{
    set_global_num_threads(3);
    EXPECT_EQ(global_thread_pool().num_threads(), 3);
    set_global_num_threads(1);
    EXPECT_EQ(global_thread_pool().num_threads(), 1);
    EXPECT_THROW(set_global_num_threads(0), Error);
}

TEST(GlobalThreadPool, FreeFunctionParallelFor)
{
    set_global_num_threads(2);
    std::vector<std::atomic<int>> hits(64);
    parallel_for(64, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i)
            hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
    set_global_num_threads(1);
}

// --- Exception safety -----------------------------------------------------

/** A worker exception must not std::terminate the process; the first
 *  one is rethrown on the calling thread. */
TEST(ThreadPoolExceptions, WorkerExceptionRethrownOnCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallel_for(100,
                          [&](std::int64_t begin, std::int64_t end) {
                              for (std::int64_t i = begin; i < end; ++i)
                                  if (i == 57)
                                      throw std::runtime_error("boom");
                          }),
        std::runtime_error);
}

/** After a throwing dispatch the pool must still be fully usable. */
TEST(ThreadPoolExceptions, PoolSurvivesAndStaysUsable)
{
    ThreadPool pool(4);
    for (int round = 0; round < 3; ++round) {
        EXPECT_THROW(pool.parallel_for(
                         64,
                         [](std::int64_t, std::int64_t) {
                             throw Error("every chunk fails");
                         }),
                     Error);
        std::vector<std::atomic<int>> hits(64);
        pool.parallel_for(64, [&](std::int64_t begin, std::int64_t end) {
            for (std::int64_t i = begin; i < end; ++i)
                hits[static_cast<std::size_t>(i)].fetch_add(1);
        });
        for (auto &hit : hits)
            EXPECT_EQ(hit.load(), 1);
    }
}

TEST(ThreadPoolExceptions, SerialPathPropagatesToo)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallel_for(10,
                                   [](std::int64_t, std::int64_t) {
                                       throw std::runtime_error("serial");
                                   }),
                 std::runtime_error);
}

// --- Cooperative cancellation ---------------------------------------------

TEST(ThreadPoolCancellation, AlreadyCancelledFailsFastWithNoWork)
{
    ThreadPool pool(4);
    ScopedCancellation cancelled([] { return true; });
    std::atomic<int> executed{0};
    EXPECT_THROW(pool.parallel_for(100,
                                   [&](std::int64_t, std::int64_t) {
                                       executed.fetch_add(1);
                                   }),
                 DeadlineExceededError);
    EXPECT_EQ(executed.load(), 0);
}

/** Cancellation raised mid-loop stops within a tile of work instead of
 *  running the remaining chunks to completion. */
TEST(ThreadPoolCancellation, CancellationStopsAtTileBoundary)
{
    ThreadPool pool(1);
    std::atomic<bool> cancel{false};
    ScopedCancellation scope([&] { return cancel.load(); });
    std::atomic<std::int64_t> processed{0};
    EXPECT_THROW(
        pool.parallel_for(64,
                          [&](std::int64_t begin, std::int64_t end) {
                              processed.fetch_add(end - begin);
                              cancel.store(true);
                          }),
        DeadlineExceededError);
    // With 8 tiles over 64 iterations, the first tile (8 iterations)
    // runs, then the boundary check fires.
    EXPECT_GT(processed.load(), 0);
    EXPECT_LT(processed.load(), 64);
}

TEST(ThreadPoolCancellation, ParallelWorkersObserveCancellation)
{
    ThreadPool pool(4);
    std::atomic<bool> cancel{false};
    ScopedCancellation scope([&] { return cancel.load(); });
    std::atomic<std::int64_t> processed{0};
    EXPECT_THROW(
        pool.parallel_for(1024,
                          [&](std::int64_t begin, std::int64_t end) {
                              processed.fetch_add(end - begin);
                              cancel.store(true);
                          }),
        DeadlineExceededError);
    EXPECT_LT(processed.load(), 1024);
}

TEST(ThreadPoolCancellation, ScopeRestoresPreviousCheckOnExit)
{
    EXPECT_FALSE(static_cast<bool>(current_cancellation()));
    {
        ScopedCancellation outer([] { return false; });
        EXPECT_TRUE(static_cast<bool>(current_cancellation()));
        {
            ScopedCancellation inner([] { return true; });
            EXPECT_TRUE(current_cancellation()());
        }
        EXPECT_FALSE(current_cancellation()());
    }
    EXPECT_FALSE(static_cast<bool>(current_cancellation()));
}

/** No ScopedCancellation installed: the body runs untiled (one call
 *  per chunk), preserving the historical chunking contract. */
TEST(ThreadPoolCancellation, NoCheckMeansNoTiling)
{
    ThreadPool pool(1);
    std::atomic<int> calls{0};
    pool.parallel_for(64, [&](std::int64_t begin, std::int64_t end) {
        calls.fetch_add(1);
        EXPECT_EQ(begin, 0);
        EXPECT_EQ(end, 64);
    });
    EXPECT_EQ(calls.load(), 1);
}

} // namespace
} // namespace orpheus
