/** @file Unit tests for the deterministic RNG. */
#include "core/rng.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace orpheus {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int matches = 0;
    for (int i = 0; i < 64; ++i)
        matches += a.next_u64() == b.next_u64() ? 1 : 0;
    EXPECT_LT(matches, 2);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng rng(0);
    bool any_nonzero = false;
    for (int i = 0; i < 8; ++i)
        any_nonzero |= rng.next_u64() != 0;
    EXPECT_TRUE(any_nonzero);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double value = rng.next_double();
        EXPECT_GE(value, 0.0);
        EXPECT_LT(value, 1.0);
    }
}

TEST(Rng, UniformRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const float value = rng.uniform(-2.5f, 4.0f);
        EXPECT_GE(value, -2.5f);
        EXPECT_LT(value, 4.0f);
    }
}

TEST(Rng, UniformIntCoversInclusiveRange)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t value = rng.uniform_int(3, 7);
        EXPECT_GE(value, 3);
        EXPECT_LE(value, 7);
        saw_lo |= value == 3;
        saw_hi |= value == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
    EXPECT_THROW(rng.uniform_int(6, 5), Error);
}

TEST(Rng, NormalHasPlausibleMoments)
{
    Rng rng(13);
    const int n = 20000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double value = rng.normal();
        sum += value;
        sum_sq += value * value;
    }
    const double mean = sum / n;
    const double variance = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(variance, 1.0, 0.05);
}

TEST(Rng, FillUniformFillsEveryElement)
{
    Tensor t(Shape({64}));
    Rng rng(17);
    fill_uniform(t, rng, 0.5f, 1.0f);
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        EXPECT_GE(t.data<float>()[i], 0.5f);
        EXPECT_LT(t.data<float>()[i], 1.0f);
    }
}

TEST(Rng, FillKaimingMatchesFanInScale)
{
    // For OIHW [64, 32, 3, 3], fan-in = 32*9 = 288 and the std should be
    // close to sqrt(2/288).
    Tensor t(Shape({64, 32, 3, 3}));
    Rng rng(19);
    fill_kaiming(t, rng);
    double sum = 0.0, sum_sq = 0.0;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        sum += t.data<float>()[i];
        sum_sq += static_cast<double>(t.data<float>()[i]) *
                  t.data<float>()[i];
    }
    const double n = static_cast<double>(t.numel());
    const double variance = sum_sq / n - (sum / n) * (sum / n);
    EXPECT_NEAR(variance, 2.0 / 288.0, 2.0 / 288.0 * 0.1);
}

TEST(Rng, RandomTensorIsDeterministic)
{
    Rng a(21), b(21);
    Tensor ta = random_tensor(Shape({4, 4}), a);
    Tensor tb = random_tensor(Shape({4, 4}), b);
    EXPECT_EQ(max_abs_diff(ta, tb), 0.0f);
}

} // namespace
} // namespace orpheus
