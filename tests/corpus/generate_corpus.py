#!/usr/bin/env python3
"""Regenerates the malformed-ONNX regression corpus.

Each file is a hand-crafted hostile byte pattern that a pre-hardening
importer either crashed on, over-allocated for, or mis-parsed. The
corpus is checked in; this script only exists so the files can be
audited and regenerated. test_malformed_onnx.cpp replays every *.onnx
file here and asserts a clean typed rejection (and tools/orpheus_fuzz
--corpus does the same).
"""
import os

OUT = os.path.dirname(os.path.abspath(__file__))

# ONNX field numbers (see src/onnx/schema.hpp).
MODEL_GRAPH = 7
GRAPH_INITIALIZER = 5
TENSOR_DIMS = 1
TENSOR_DATA_TYPE = 2
TENSOR_NAME = 8
TENSOR_RAW_DATA = 9
FLOAT = 1


def varint(value):
    out = bytearray()
    value &= (1 << 64) - 1
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def tag(field, wire_type):
    return varint((field << 3) | wire_type)


def ld(field, payload):
    """Length-delimited field."""
    return tag(field, 2) + varint(len(payload)) + payload


def vi(field, value):
    """Varint field (two's-complement for negatives, like protobuf)."""
    return tag(field, 0) + varint(value)


def tensor(dims, raw=b"", dtype=FLOAT, name=b"w"):
    body = b"".join(vi(TENSOR_DIMS, d) for d in dims)
    body += vi(TENSOR_DATA_TYPE, dtype)
    body += ld(TENSOR_NAME, name)
    body += ld(TENSOR_RAW_DATA, raw)
    return body


def model(graph_body):
    return ld(MODEL_GRAPH, graph_body)


CORPUS = {
    # A lone continuation byte: the varint never terminates.
    "truncated_varint.onnx": b"\x80",
    # 11 continuation bytes exceed the 64-bit varint limit.
    "overlong_varint.onnx": b"\x08" + b"\xff" * 11,
    # Field 1 with deprecated group wire type 3.
    "bad_wire_type.onnx": b"\x0b",
    # Graph field claims a ~2^62-byte payload with no bytes behind it.
    "length_overrun.onnx": tag(MODEL_GRAPH, 2) + b"\xff" * 8 + b"\x3f",
    # (2^40)^3 elements: overflows the int64 element count. The seed
    # importer computed a wrapped allocation size from this.
    "huge_dims.onnx": model(
        ld(GRAPH_INITIALIZER, tensor([1 << 40, 1 << 40, 1 << 40]))),
    # 2^32 * 2^32 wraps to exactly 0, masquerading as an empty tensor.
    "overflow_wrap_to_zero.onnx": model(
        ld(GRAPH_INITIALIZER, tensor([1 << 32, 1 << 32]))),
    # Negative dimension (protobuf encodes it as a 10-byte varint).
    "negative_dim.onnx": model(ld(GRAPH_INITIALIZER, tensor([-1, 4]))),
    # raw_data carries 3 bytes for a 2x2 fp32 tensor (16 expected);
    # trusting the dims here reads past the payload.
    "raw_data_short.onnx": model(
        ld(GRAPH_INITIALIZER, tensor([2, 2], raw=b"\x00\x01\x02"))),
    # Nested length fields that each lie about the remaining size.
    "nested_length_lies.onnx": model(
        tag(GRAPH_INITIALIZER, 2) + varint(200) + tensor([4])),
    # Unknown tensor dtype 999.
    "unknown_dtype.onnx": model(
        ld(GRAPH_INITIALIZER, tensor([1], dtype=999))),
}


def main():
    for name, data in sorted(CORPUS.items()):
        path = os.path.join(OUT, name)
        with open(path, "wb") as fh:
            fh.write(data)
        print(f"{name}: {len(data)} bytes")


if __name__ == "__main__":
    main()
