/** @file ONNX export/import round-trip and error-handling tests. */
#include "onnx/exporter.hpp"
#include "onnx/importer.hpp"

#include <gtest/gtest.h>

#include "models/model_zoo.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::expect_close;
using testing::make_random;

/** Round-trips @p graph through ONNX bytes; returns the re-import. */
Graph
round_trip(const Graph &graph)
{
    const std::vector<std::uint8_t> bytes = export_onnx(graph);
    Graph imported;
    OnnxModelInfo info;
    const Status status = import_onnx(bytes, imported, &info);
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    EXPECT_EQ(info.producer_name, "orpheus");
    return imported;
}

TEST(OnnxRoundTrip, TinyCnnStructurePreserved)
{
    const Graph original = models::tiny_cnn();
    const Graph imported = round_trip(original);

    EXPECT_EQ(imported.name(), original.name());
    EXPECT_EQ(imported.nodes().size(), original.nodes().size());
    EXPECT_EQ(imported.initializers().size(),
              original.initializers().size());
    ASSERT_EQ(imported.inputs().size(), 1u);
    EXPECT_EQ(imported.inputs().front().shape, Shape({1, 3, 8, 8}));
    ASSERT_EQ(imported.outputs().size(), 1u);
    EXPECT_NO_THROW(imported.validate());
}

TEST(OnnxRoundTrip, InitializerBytesAreBitExact)
{
    const Graph original = models::tiny_mlp();
    const Graph imported = round_trip(original);

    for (const auto &[name, tensor] : original.initializers()) {
        ASSERT_TRUE(imported.has_initializer(name)) << name;
        const Tensor &restored = imported.initializer(name);
        ASSERT_EQ(restored.shape(), tensor.shape()) << name;
        ASSERT_EQ(restored.dtype(), tensor.dtype()) << name;
        EXPECT_EQ(std::memcmp(restored.raw_data(), tensor.raw_data(),
                              tensor.byte_size()),
                  0)
            << name;
    }
}

TEST(OnnxRoundTrip, AttributesPreserved)
{
    const Graph original = models::tiny_cnn();
    const Graph imported = round_trip(original);

    // Find the first conv in both and compare decoded attributes.
    const auto find_conv = [](const Graph &graph) -> const Node * {
        for (const Node &node : graph.nodes()) {
            if (node.op_type() == op_names::kConv)
                return &node;
        }
        return nullptr;
    };
    const Node *original_conv = find_conv(original);
    const Node *imported_conv = find_conv(imported);
    ASSERT_NE(original_conv, nullptr);
    ASSERT_NE(imported_conv, nullptr);
    EXPECT_EQ(imported_conv->attrs().get_ints("kernel_shape", {}),
              original_conv->attrs().get_ints("kernel_shape", {}));
    EXPECT_EQ(imported_conv->attrs().get_ints("pads", {}),
              original_conv->attrs().get_ints("pads", {}));
    EXPECT_EQ(imported_conv->attrs().get_int("group", -1),
              original_conv->attrs().get_int("group", -1));
}

TEST(OnnxRoundTrip, InferenceResultsIdentical)
{
    Graph original = models::tiny_cnn();
    Graph imported = round_trip(original);

    Engine engine_a(std::move(original));
    Engine engine_b(std::move(imported));
    Tensor input = make_random(Shape({1, 3, 8, 8}), 0x0dd);
    expect_close(engine_b.run(input), engine_a.run(input), 1e-6f, 1e-6f);
}

TEST(OnnxRoundTrip, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/orpheus_tiny.onnx";
    const Graph original = models::tiny_mlp();
    ASSERT_TRUE(export_onnx_file(original, path).is_ok());

    Graph imported;
    const Status status = import_onnx_file(path, imported);
    ASSERT_TRUE(status.is_ok()) << status.to_string();
    EXPECT_EQ(imported.nodes().size(), original.nodes().size());
    std::remove(path.c_str());
}

TEST(OnnxRoundTrip, AllAttributeKindsSurvive)
{
    Graph graph("attrs");
    graph.add_input("x", Shape({1, 4}));
    AttributeMap attrs;
    attrs.set("an_int", std::int64_t{-7});
    attrs.set("a_float", 2.5f);
    attrs.set("a_string", "hello");
    attrs.set("some_ints", std::vector<std::int64_t>{1, -2, 3});
    attrs.set("some_floats", std::vector<float>{0.5f, -0.25f});
    attrs.set("a_tensor", Tensor::from_values(Shape({2}), {8, 9}));
    graph.add_node(op_names::kIdentity, {"x"}, {"y"}, std::move(attrs));
    graph.add_output("y");

    const Graph imported = round_trip(graph);
    const Node &node = imported.nodes().front();
    EXPECT_EQ(node.attrs().get_int("an_int", 0), -7);
    EXPECT_FLOAT_EQ(node.attrs().get_float("a_float", 0), 2.5f);
    EXPECT_EQ(node.attrs().get_string("a_string", ""), "hello");
    EXPECT_EQ(node.attrs().get_ints("some_ints", {}),
              (std::vector<std::int64_t>{1, -2, 3}));
    EXPECT_EQ(node.attrs().get_floats("some_floats", {}),
              (std::vector<float>{0.5f, -0.25f}));
    const Tensor &tensor = node.attrs().at("a_tensor").as_tensor();
    EXPECT_EQ(tensor.shape(), Shape({2}));
    EXPECT_EQ(tensor.data<float>()[1], 9.0f);
}

TEST(OnnxRoundTrip, Int64InitializerSurvives)
{
    Graph graph("shapes");
    graph.add_input("x", Shape({1, 6}));
    graph.add_initializer("spec", Tensor::from_int64s({2, 3}));
    graph.add_node(op_names::kReshape, {"x", "spec"}, {"y"});
    graph.add_output("y");

    const Graph imported = round_trip(graph);
    const Tensor &spec = imported.initializer("spec");
    EXPECT_EQ(spec.dtype(), DataType::kInt64);
    EXPECT_EQ(spec.data<std::int64_t>()[0], 2);
    EXPECT_EQ(spec.data<std::int64_t>()[1], 3);
}

TEST(OnnxImport, GarbageBytesGiveParseError)
{
    const std::vector<std::uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef,
                                               0xff, 0xff};
    Graph graph;
    const Status status = import_onnx(garbage, graph);
    EXPECT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), StatusCode::kParseError);
}

TEST(OnnxImport, EmptyModelRejected)
{
    Graph graph;
    const Status status = import_onnx(std::vector<std::uint8_t>{}, graph);
    EXPECT_FALSE(status.is_ok());
}

TEST(OnnxImport, MissingFileGivesNotFound)
{
    Graph graph;
    const Status status =
        import_onnx_file("/nonexistent/path/model.onnx", graph);
    EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(OnnxImport, SymbolicInputShapeRejected)
{
    // A graph input with dimension 0 (our encoding of "unknown") must be
    // rejected: Orpheus requires static shapes.
    Graph graph("sym");
    graph.add_input("x", Shape({1, 4}));
    graph.add_node(op_names::kRelu, {"x"}, {"y"});
    graph.add_output("y");
    std::vector<std::uint8_t> bytes = export_onnx(graph);

    // Re-import after mutating the input shape to contain a zero dim is
    // hard to do byte-surgically; instead build the equivalent directly.
    Graph with_unknown("sym2");
    EXPECT_THROW(with_unknown.add_input("x", Shape({1, -1})), Error);
}

TEST(OnnxRoundTrip, ResNet18Structure)
{
    // The full model-loading path on a real network: ~70 nodes, ~100
    // initializers, residual topology.
    const Graph original = models::resnet18();
    const Graph imported = round_trip(original);
    EXPECT_EQ(imported.nodes().size(), original.nodes().size());
    EXPECT_EQ(imported.initializers().size(),
              original.initializers().size());
    EXPECT_NO_THROW(imported.validate());
}

} // namespace
} // namespace orpheus
