/**
 * @file
 * Tests for the versioned model lifecycle (runtime/model_registry.hpp)
 * and the graceful-shutdown drain that shares its machinery:
 *
 *  - a hot swap under sustained live load completes with zero failed
 *    requests while capacity never dips below N-1 replicas;
 *  - a bad generation is rejected at the canary — by the warm-up probe
 *    when it is broken outright, or by the live error-rate verdict when
 *    it corrupts under traffic — with the typed kModelRejected status
 *    while the incumbent keeps serving;
 *  - signature-incompatible models never touch the pool;
 *  - shutdown(deadline) sheds only batch-priority work when the
 *    deadline is tight and returns with no leases held.
 *
 * Timing-dependent cases use injected delays an order of magnitude
 * larger than the thresholds they cross, so they hold on slow CI.
 */
#include "runtime/model_registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/threadpool.hpp"
#include "models/model_zoo.hpp"
#include "runtime/service.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::make_random;

std::map<std::string, Tensor>
cnn_inputs(std::uint64_t seed)
{
    return {{"input", make_random(Shape({1, 3, 8, 8}), seed)}};
}

/** tiny-cnn re-seeded as a "new version": identical weights and
 *  signature, different graph name, so rollout tests can tell the
 *  generations apart while outputs stay bitwise comparable. */
Graph
tiny_cnn_version(const std::string &name)
{
    Graph graph = models::tiny_cnn();
    graph.set_name(name);
    return graph;
}

// --- Acceptance (a): hot swap under sustained load --------------------------

TEST(ModelRegistry, HotSwapUnderLoadDropsNothingAndKeepsCapacity)
{
    set_global_num_threads(1);
    ServiceOptions options;
    options.workers = 3;
    options.replicas = 3;
    options.max_queue_depth = 64;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), {}, options);

    Engine reference(models::tiny_cnn(), {});
    const auto expected = reference.run(cnn_inputs(0x40a));

    std::atomic<bool> stop{false};
    std::atomic<std::int64_t> completed{0};
    std::atomic<std::int64_t> failed{0};
    std::atomic<std::int64_t> wrong_bits{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c)
        clients.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                const InferenceResponse response =
                    service.submit(cnn_inputs(0x40a)).get();
                ++completed;
                if (!response.status.is_ok()) {
                    ++failed;
                    continue;
                }
                for (const auto &[name, tensor] : expected)
                    if (max_abs_diff(response.outputs.at(name), tensor) !=
                        0.0f)
                        ++wrong_bits;
            }
        });

    // Capacity sampler: the drain-and-swap fences one replica at a
    // time, so at least N-1 replicas must stay available throughout.
    std::atomic<std::int64_t> capacity_low{0};
    std::thread sampler([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            std::size_t available = 0;
            for (const ReplicaSnapshot &replica : service.pool().snapshot())
                if (replica.state == ReplicaState::kActive &&
                    !replica.draining)
                    ++available;
            if (available < 2)
                ++capacity_low;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });

    // Let the incumbent serve a little, then roll out the new version
    // with a live canary slice.
    while (completed.load() < 30)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    RolloutOptions rollout;
    rollout.canary_fraction = 0.5;
    rollout.min_canary_samples = 6;
    rollout.observe_timeout_ms = 10'000;
    const RolloutReport report =
        service.reload(tiny_cnn_version("tiny-cnn-v2"), rollout);

    stop.store(true);
    for (std::thread &client : clients)
        client.join();
    sampler.join();

    ASSERT_TRUE(report.status.is_ok()) << report.status.to_string();
    EXPECT_FALSE(report.rolled_back);
    EXPECT_EQ(report.replicas_swapped, 3u);
    EXPECT_GE(report.canary_samples, 1);

    EXPECT_EQ(failed.load(), 0);
    EXPECT_EQ(wrong_bits.load(), 0);
    EXPECT_GT(completed.load(), 30);
    EXPECT_EQ(capacity_low.load(), 0) << "capacity dipped below N-1";

    EXPECT_EQ(service.registry().active_generation(), 2u);
    EXPECT_EQ(service.registry().active_model(), "tiny-cnn-v2");
    for (const ReplicaSnapshot &replica : service.pool().snapshot()) {
        EXPECT_EQ(replica.generation, 2u);
        EXPECT_FALSE(replica.draining);
    }
    const auto generations = service.registry().generations();
    ASSERT_EQ(generations.size(), 2u);
    EXPECT_EQ(generations[0].state, GenerationState::kRetired);
    EXPECT_EQ(generations[1].state, GenerationState::kActive);
    EXPECT_GE(service.stats().model_swaps, 3);
    EXPECT_GE(service.stats().canary_routed, 1);
}

// --- Acceptance (b): bad generations are rolled back automatically ----------

TEST(ModelRegistry, WarmupProbeQuarantinesBrokenGeneration)
{
    set_global_num_threads(1);
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // Only the staged generation corrupts; the incumbent "tiny-cnn"
    // shares the injector but never matches.
    engine_options.fault_injector->arm_model_corruption(
        "tiny-cnn-bad", CorruptionKind::kNaNPoke);

    ServiceOptions options;
    options.workers = 1;
    options.replicas = 2;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), engine_options, options);

    EXPECT_TRUE(service.run(cnn_inputs(0x40b)).status.is_ok());

    const RolloutReport report =
        service.reload(tiny_cnn_version("tiny-cnn-bad"));
    EXPECT_EQ(report.status.code(), StatusCode::kModelRejected);
    EXPECT_EQ(report.replicas_swapped, 0u);

    // The incumbent never stopped serving and the pool is untouched.
    EXPECT_TRUE(service.run(cnn_inputs(0x40c)).status.is_ok());
    EXPECT_EQ(service.registry().active_generation(), 1u);
    EXPECT_EQ(service.registry().rollbacks(), 1);
    EXPECT_EQ(service.stats().model_rollbacks, 1);
    for (const ReplicaSnapshot &replica : service.pool().snapshot()) {
        EXPECT_EQ(replica.generation, 1u);
        EXPECT_EQ(replica.state, ReplicaState::kActive);
        EXPECT_FALSE(replica.draining);
    }
    const auto generations = service.registry().generations();
    ASSERT_EQ(generations.size(), 2u);
    EXPECT_EQ(generations[1].state, GenerationState::kQuarantined);
    EXPECT_NE(generations[1].detail.find("probe"), std::string::npos)
        << generations[1].detail;
}

TEST(ModelRegistry, LiveCanaryRolledBackWhileIncumbentServes)
{
    set_global_num_threads(1);
    EngineOptions engine_options;
    engine_options.guard.enabled = true;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    engine_options.fault_injector->arm_model_corruption(
        "tiny-cnn-bad", CorruptionKind::kNaNPoke);

    ServiceOptions options;
    options.workers = 2;
    options.replicas = 2;
    options.max_queue_depth = 64;
    options.enable_watchdog = false;
    // Failover keeps clients whole while the canary misbehaves.
    options.max_retries = 2;
    options.retry_budget = 1.0;
    InferenceService service(models::tiny_cnn(), engine_options, options);

    std::atomic<bool> stop{false};
    std::atomic<std::int64_t> failed{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 2; ++c)
        clients.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed))
                if (!service.submit(cnn_inputs(0x40d)).get().status.is_ok())
                    ++failed;
        });

    // Skip the warm-up probes so the NaN generation reaches the live
    // canary phase; the guard catches every corrupted canary response
    // and the error-rate verdict must roll the generation back.
    // Three corrupted responses (1.2 penalty each) quarantine the
    // canary, so three samples is all the window can ever hold; the
    // timeout is only a backstop for that race.
    RolloutOptions rollout;
    rollout.warmup_probes = 0;
    rollout.canary_fraction = 0.5;
    rollout.min_canary_samples = 3;
    rollout.observe_timeout_ms = 1500;
    const RolloutReport report =
        service.reload(tiny_cnn_version("tiny-cnn-bad"), rollout);

    stop.store(true);
    for (std::thread &client : clients)
        client.join();

    EXPECT_EQ(report.status.code(), StatusCode::kModelRejected);
    EXPECT_TRUE(report.rolled_back);
    EXPECT_GE(report.canary_samples, 1);
    EXPECT_EQ(failed.load(), 0)
        << "failover must shield clients from the bad canary";

    EXPECT_EQ(service.registry().active_generation(), 1u);
    const auto generations = service.registry().generations();
    ASSERT_EQ(generations.size(), 2u);
    EXPECT_EQ(generations[1].state, GenerationState::kRolledBack);
    // The displaced incumbent engine was restored on the canary
    // replica; the whole pool serves generation 1 again.
    for (const ReplicaSnapshot &replica : service.pool().snapshot()) {
        EXPECT_EQ(replica.generation, 1u);
        EXPECT_FALSE(replica.draining);
    }
    EXPECT_TRUE(service.run(cnn_inputs(0x40e)).status.is_ok());
}

TEST(ModelRegistry, SignatureMismatchRejectedWithoutTouchingPool)
{
    set_global_num_threads(1);
    ServiceOptions options;
    options.workers = 1;
    options.replicas = 2;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), {}, options);

    const RolloutReport report = service.reload(models::tiny_mlp());
    EXPECT_EQ(report.status.code(), StatusCode::kModelRejected);
    EXPECT_NE(report.status.message().find("signature"),
              std::string::npos)
        << report.status.message();
    EXPECT_EQ(service.stats().model_swaps, 0);
    EXPECT_EQ(service.registry().active_generation(), 1u);
    EXPECT_TRUE(service.run(cnn_inputs(0x40f)).status.is_ok());
}

// --- Acceptance (c): tight shutdown deadline sheds batch work only ----------

TEST(ModelRegistry, TightShutdownDeadlineShedsOnlyBatchWork)
{
    set_global_num_threads(1);
    Graph graph = models::tiny_cnn();
    const std::string first_node = graph.nodes().front().name();

    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // The seed request (training the latency estimate) and the request
    // in flight at shutdown each take ~300 ms; everything queued
    // behind them is fast.
    engine_options.fault_injector->arm_delay(first_node, "",
                                             /*delay_ms=*/300,
                                             /*delay_from_call=*/0,
                                             /*max_delays=*/2);

    ServiceOptions options;
    options.workers = 1;
    options.max_queue_depth = 16;
    options.enable_watchdog = false;
    InferenceService service(std::move(graph), engine_options, options);

    // Seed the P50 estimate with one slow completed request.
    ASSERT_TRUE(service.run(cnn_inputs(0x410)).status.is_ok());

    // Occupy the worker, then queue batch and interactive work.
    auto in_flight = service.submit(cnn_inputs(0x411));
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (service.queue_depth() > 0 &&
           std::chrono::steady_clock::now() < give_up)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    auto batch_a = service.submit(cnn_inputs(0x412), DeadlineToken(), 0,
                                  RequestPriority::kBatch);
    auto batch_b = service.submit(cnn_inputs(0x413), DeadlineToken(), 0,
                                  RequestPriority::kBatch);
    auto interactive = service.submit(cnn_inputs(0x414));

    // ~300 ms in flight + a ~375 ms-per-request estimate over four
    // requests cannot fit in 1 s, so batch work must be shed up front;
    // the interactive requests still fit comfortably.
    const ShutdownReport report = service.shutdown(/*deadline_ms=*/1000);
    EXPECT_TRUE(report.status.is_ok()) << report.status.to_string();
    EXPECT_EQ(report.shed, 2);
    EXPECT_EQ(report.flushed, 1);
    EXPECT_LE(report.duration_ms, 1500.0);

    EXPECT_TRUE(in_flight.get().status.is_ok());
    EXPECT_TRUE(interactive.get().status.is_ok());
    const InferenceResponse shed_a = batch_a.get();
    const InferenceResponse shed_b = batch_b.get();
    EXPECT_EQ(shed_a.status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(shed_b.status.code(), StatusCode::kResourceExhausted);
    EXPECT_NE(shed_a.status.message().find("batch"), std::string::npos)
        << shed_a.status.message();

    // No lease survives shutdown, and admission is closed for good.
    for (const ReplicaSnapshot &replica : service.pool().snapshot())
        EXPECT_FALSE(replica.leased);
    EXPECT_FALSE(
        service.submit(cnn_inputs(0x415)).get().status.is_ok());
    EXPECT_EQ(service.stats().shutdown_shed, 2);
}

TEST(ModelRegistry, UnlimitedShutdownFlushesEverything)
{
    set_global_num_threads(1);
    ServiceOptions options;
    options.workers = 1;
    options.max_queue_depth = 16;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), {}, options);

    std::vector<std::future<InferenceResponse>> pending;
    for (int i = 0; i < 6; ++i)
        pending.push_back(service.submit(
            cnn_inputs(0x420 + static_cast<std::uint64_t>(i)),
            DeadlineToken(), 0,
            i % 2 == 0 ? RequestPriority::kBatch
                       : RequestPriority::kInteractive));

    const ShutdownReport report = service.shutdown(/*deadline_ms=*/0);
    EXPECT_TRUE(report.status.is_ok()) << report.status.to_string();
    EXPECT_EQ(report.shed, 0);
    for (auto &future : pending)
        EXPECT_TRUE(future.get().status.is_ok());
}

} // namespace
} // namespace orpheus
