/** @file Unit tests for the im2col lowering. */
#include "ops/conv/im2col.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "core/status.hpp"

namespace orpheus {
namespace {

/** Reference im2col: direct index arithmetic, no fast paths. */
void
im2col_reference(const float *data, std::int64_t channels, std::int64_t h,
                 std::int64_t w, const Conv2dParams &p, std::int64_t out_h,
                 std::int64_t out_w, float *col)
{
    std::int64_t row = 0;
    for (std::int64_t c = 0; c < channels; ++c) {
        for (std::int64_t kh = 0; kh < p.kernel_h; ++kh) {
            for (std::int64_t kw = 0; kw < p.kernel_w; ++kw, ++row) {
                for (std::int64_t oh = 0; oh < out_h; ++oh) {
                    for (std::int64_t ow = 0; ow < out_w; ++ow) {
                        const std::int64_t ih =
                            oh * p.stride_h - p.pad_top + kh * p.dilation_h;
                        const std::int64_t iw =
                            ow * p.stride_w - p.pad_left +
                            kw * p.dilation_w;
                        const bool inside =
                            ih >= 0 && ih < h && iw >= 0 && iw < w;
                        col[row * out_h * out_w + oh * out_w + ow] =
                            inside ? data[(c * h + ih) * w + iw] : 0.0f;
                    }
                }
            }
        }
    }
}

struct Im2colCase {
    std::int64_t channels, h, w, kernel, stride, pad, dilation;
};

class Im2colVsReference : public ::testing::TestWithParam<Im2colCase>
{
};

TEST_P(Im2colVsReference, Matches)
{
    const Im2colCase &c = GetParam();
    Conv2dParams p;
    p.kernel_h = p.kernel_w = c.kernel;
    p.stride_h = p.stride_w = c.stride;
    p.pad_top = p.pad_left = p.pad_bottom = p.pad_right = c.pad;
    p.dilation_h = p.dilation_w = c.dilation;

    const std::int64_t out_h = p.out_h(c.h);
    const std::int64_t out_w = p.out_w(c.w);
    const std::size_t col_size = static_cast<std::size_t>(
        c.channels * c.kernel * c.kernel * out_h * out_w);

    Rng rng(0x101);
    std::vector<float> data(static_cast<std::size_t>(c.channels * c.h *
                                                     c.w));
    for (float &value : data)
        value = rng.uniform(-1.0f, 1.0f);

    std::vector<float> expected(col_size, -99.0f), actual(col_size, -99.0f);
    im2col_reference(data.data(), c.channels, c.h, c.w, p, out_h, out_w,
                     expected.data());
    im2col(data.data(), c.channels, c.h, c.w, p, out_h, out_w,
           actual.data());
    EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, Im2colVsReference,
    ::testing::Values(Im2colCase{1, 4, 4, 3, 1, 1, 1},
                      Im2colCase{3, 8, 8, 3, 1, 1, 1},
                      Im2colCase{2, 7, 9, 3, 2, 1, 1},
                      Im2colCase{2, 8, 8, 5, 1, 2, 1},
                      Im2colCase{1, 9, 9, 3, 1, 2, 2},
                      Im2colCase{4, 6, 6, 1, 1, 0, 1},
                      Im2colCase{2, 10, 5, 3, 3, 0, 1}),
    [](const ::testing::TestParamInfo<Im2colCase> &info) {
        const Im2colCase &c = info.param;
        return "c" + std::to_string(c.channels) + "h" + std::to_string(c.h) +
               "w" + std::to_string(c.w) + "k" + std::to_string(c.kernel) +
               "s" + std::to_string(c.stride) + "p" + std::to_string(c.pad) +
               "d" + std::to_string(c.dilation);
    });

TEST(Im2col, PointwiseIsIdentityLayout)
{
    // For 1x1 stride-1 no-pad, the col matrix equals the input.
    Conv2dParams p; // all defaults: 1x1, stride 1, no padding
    std::vector<float> data = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<float> col(8, 0.0f);
    im2col(data.data(), 2, 2, 2, p, 2, 2, col.data());
    EXPECT_EQ(col, data);
}

} // namespace
} // namespace orpheus
