/** @file Correctness tests for the Winograd F(2x2,3x3) kernel. */
#include "ops/conv/conv.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::expect_close;
using testing::make_random;

struct WinogradCase {
    std::string label;
    std::int64_t batch, in_c, h, w, out_c, pad;
    bool bias;
};

class WinogradVsDirect : public ::testing::TestWithParam<WinogradCase>
{
};

TEST_P(WinogradVsDirect, Matches)
{
    const WinogradCase &c = GetParam();
    Conv2dParams p;
    p.kernel_h = p.kernel_w = 3;
    p.pad_top = p.pad_left = p.pad_bottom = p.pad_right = c.pad;

    Tensor input = make_random(Shape({c.batch, c.in_c, c.h, c.w}), 0xa0);
    Tensor weight = make_random(Shape({c.out_c, c.in_c, 3, 3}), 0xa1);
    Tensor bias = make_random(Shape({c.out_c}), 0xa2);
    const Tensor *bias_ptr = c.bias ? &bias : nullptr;

    const Shape out_shape(
        {c.batch, c.out_c, p.out_h(c.h), p.out_w(c.w)});
    Tensor expected(out_shape), actual(out_shape);
    conv2d(ConvAlgo::kDirect, input, weight, bias_ptr, p,
           ActivationSpec::none(), expected);
    conv2d(ConvAlgo::kWinograd, input, weight, bias_ptr, p,
           ActivationSpec::none(), actual);
    // Winograd reassociates heavily; tolerance scales with channel count.
    expect_close(actual, expected, 1e-3f, 2e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WinogradVsDirect,
    ::testing::Values(
        WinogradCase{"even", 1, 4, 8, 8, 8, 1, true},
        WinogradCase{"odd_extent", 1, 4, 7, 7, 4, 1, true},
        WinogradCase{"no_pad", 1, 3, 10, 10, 5, 0, false},
        WinogradCase{"rect", 1, 2, 6, 12, 3, 1, true},
        WinogradCase{"batch2", 2, 3, 8, 8, 4, 1, false},
        WinogradCase{"many_channels", 1, 16, 8, 8, 16, 1, true}),
    [](const ::testing::TestParamInfo<WinogradCase> &info) {
        return info.param.label;
    });

TEST(Winograd, FusedActivationApplied)
{
    Conv2dParams p;
    p.kernel_h = p.kernel_w = 3;
    p.pad_top = p.pad_left = p.pad_bottom = p.pad_right = 1;

    Tensor input = make_random(Shape({1, 4, 8, 8}), 0xa3);
    Tensor weight = make_random(Shape({4, 4, 3, 3}), 0xa4);
    Tensor expected(Shape({1, 4, 8, 8})), actual(Shape({1, 4, 8, 8}));
    conv2d(ConvAlgo::kDirect, input, weight, nullptr, p,
           ActivationSpec::relu(), expected);
    conv2d(ConvAlgo::kWinograd, input, weight, nullptr, p,
           ActivationSpec::relu(), actual);
    expect_close(actual, expected, 1e-3f, 2e-3f);
}

TEST(Winograd, SupportPredicate)
{
    Conv2dArgs args;
    args.params.kernel_h = args.params.kernel_w = 3;
    EXPECT_TRUE(conv2d_winograd_supported(args));

    Conv2dArgs strided = args;
    strided.params.stride_h = 2;
    EXPECT_FALSE(conv2d_winograd_supported(strided));

    Conv2dArgs dilated = args;
    dilated.params.dilation_w = 2;
    EXPECT_FALSE(conv2d_winograd_supported(dilated));

    Conv2dArgs grouped = args;
    grouped.params.group = 2;
    EXPECT_FALSE(conv2d_winograd_supported(grouped));

    Conv2dArgs five = args;
    five.params.kernel_h = five.params.kernel_w = 5;
    EXPECT_FALSE(conv2d_winograd_supported(five));
}

TEST(Winograd, RejectsUnsupportedConfig)
{
    Conv2dParams p;
    p.kernel_h = p.kernel_w = 3;
    p.stride_h = p.stride_w = 2;

    Tensor input = make_random(Shape({1, 2, 8, 8}));
    Tensor weight = make_random(Shape({2, 2, 3, 3}));
    Tensor output(Shape({1, 2, 3, 3}));
    EXPECT_THROW(conv2d(ConvAlgo::kWinograd, input, weight, nullptr, p,
                        ActivationSpec::none(), output),
                 Error);
}

} // namespace
} // namespace orpheus
