/** @file Unit + property tests for the protobuf wire reader/writer. */
#include "onnx/proto.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace orpheus::proto {
namespace {

TEST(ProtoWriter, VarintFieldEncoding)
{
    Writer w;
    w.write_varint_field(1, 150); // Canonical protobuf example.
    const auto &bytes = w.bytes();
    ASSERT_EQ(bytes.size(), 3u);
    EXPECT_EQ(bytes[0], 0x08); // field 1, wire 0
    EXPECT_EQ(bytes[1], 0x96);
    EXPECT_EQ(bytes[2], 0x01);
}

TEST(ProtoWriter, StringFieldEncoding)
{
    Writer w;
    w.write_string_field(2, "testing");
    const auto &bytes = w.bytes();
    ASSERT_EQ(bytes.size(), 9u);
    EXPECT_EQ(bytes[0], 0x12); // field 2, wire 2
    EXPECT_EQ(bytes[1], 0x07);
    EXPECT_EQ(bytes[2], 't');
}

TEST(ProtoRoundTrip, VarintValues)
{
    const std::uint64_t values[] = {
        0,
        1,
        127,
        128,
        300,
        (1ULL << 32) - 1,
        1ULL << 32,
        ~0ULL,
    };
    for (std::uint64_t value : values) {
        Writer w;
        w.write_varint_field(5, value);
        Reader r(w.bytes().data(), w.bytes().size());
        WireType wire;
        EXPECT_EQ(r.read_tag(wire), 5u);
        EXPECT_EQ(wire, WireType::kVarint);
        EXPECT_EQ(r.read_varint(), value);
        EXPECT_TRUE(r.done());
    }
}

TEST(ProtoRoundTrip, NegativeInt64)
{
    Writer w;
    w.write_int64_field(3, -42);
    Reader r(w.bytes().data(), w.bytes().size());
    WireType wire;
    r.read_tag(wire);
    EXPECT_EQ(r.read_int64(), -42);
}

TEST(ProtoRoundTrip, FloatField)
{
    Writer w;
    w.write_float_field(4, 3.14159f);
    Reader r(w.bytes().data(), w.bytes().size());
    WireType wire;
    EXPECT_EQ(r.read_tag(wire), 4u);
    EXPECT_EQ(wire, WireType::kFixed32);
    EXPECT_FLOAT_EQ(r.read_float(), 3.14159f);
}

TEST(ProtoRoundTrip, NestedMessages)
{
    Writer inner;
    inner.write_varint_field(1, 7);
    inner.write_string_field(2, "leaf");

    Writer outer;
    outer.write_message_field(10, inner);
    outer.write_varint_field(11, 99);

    Reader r(outer.bytes().data(), outer.bytes().size());
    WireType wire;
    EXPECT_EQ(r.read_tag(wire), 10u);
    Reader nested(r.read_bytes());
    EXPECT_EQ(nested.read_tag(wire), 1u);
    EXPECT_EQ(nested.read_varint(), 7u);
    EXPECT_EQ(nested.read_tag(wire), 2u);
    EXPECT_EQ(nested.read_bytes(), "leaf");
    EXPECT_TRUE(nested.done());
    EXPECT_EQ(r.read_tag(wire), 11u);
    EXPECT_EQ(r.read_varint(), 99u);
}

TEST(ProtoRoundTrip, PackedInt64s)
{
    const std::vector<std::int64_t> values = {0, 1, -1, 1000000, -1000000};
    Writer w;
    w.write_packed_int64s(8, values);
    Reader r(w.bytes().data(), w.bytes().size());
    WireType wire;
    r.read_tag(wire);
    EXPECT_EQ(wire, WireType::kLengthDelimited);
    Reader packed(r.read_bytes());
    std::vector<std::int64_t> decoded;
    while (!packed.done())
        decoded.push_back(packed.read_int64());
    EXPECT_EQ(decoded, values);
}

TEST(ProtoRoundTrip, PackedFloats)
{
    const std::vector<float> values = {0.0f, -1.5f, 3.25f, 1e20f};
    Writer w;
    w.write_packed_floats(9, values);
    Reader r(w.bytes().data(), w.bytes().size());
    WireType wire;
    r.read_tag(wire);
    Reader packed(r.read_bytes());
    std::vector<float> decoded;
    while (!packed.done())
        decoded.push_back(packed.read_float());
    EXPECT_EQ(decoded, values);
}

TEST(ProtoRoundTrip, RandomizedFieldSequences)
{
    // Property test: arbitrary interleavings of field kinds round-trip.
    Rng rng(0x9909);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<int> kinds;
        std::vector<std::uint64_t> varints;
        std::vector<float> floats;
        std::vector<std::string> strings;

        Writer w;
        const int fields = static_cast<int>(rng.uniform_int(1, 20));
        for (int i = 0; i < fields; ++i) {
            const int kind = static_cast<int>(rng.uniform_int(0, 2));
            kinds.push_back(kind);
            const std::uint32_t field =
                static_cast<std::uint32_t>(rng.uniform_int(1, 100));
            if (kind == 0) {
                const std::uint64_t value = rng.next_u64();
                varints.push_back(value);
                w.write_varint_field(field, value);
            } else if (kind == 1) {
                const float value = rng.uniform(-1e6f, 1e6f);
                floats.push_back(value);
                w.write_float_field(field, value);
            } else {
                std::string value(static_cast<std::size_t>(
                                      rng.uniform_int(0, 32)),
                                  'x');
                strings.push_back(value);
                w.write_string_field(field, value);
            }
        }

        Reader r(w.bytes().data(), w.bytes().size());
        std::size_t vi = 0, fi = 0, si = 0;
        for (int kind : kinds) {
            WireType wire;
            r.read_tag(wire);
            if (kind == 0)
                EXPECT_EQ(r.read_varint(), varints[vi++]);
            else if (kind == 1)
                EXPECT_FLOAT_EQ(r.read_float(), floats[fi++]);
            else
                EXPECT_EQ(r.read_bytes(), strings[si++]);
        }
        EXPECT_TRUE(r.done());
    }
}

TEST(ProtoReader, SkipEveryWireType)
{
    Writer w;
    w.write_varint_field(1, 7);
    w.write_float_field(2, 1.0f);
    w.write_string_field(3, "skip me");
    w.write_varint_field(4, 42);

    Reader r(w.bytes().data(), w.bytes().size());
    WireType wire;
    for (int i = 0; i < 3; ++i) {
        r.read_tag(wire);
        r.skip(wire);
    }
    EXPECT_EQ(r.read_tag(wire), 4u);
    EXPECT_EQ(r.read_varint(), 42u);
}

TEST(ProtoReader, TruncatedInputRejected)
{
    Writer w;
    w.write_string_field(1, "hello world");
    // Drop the last 3 bytes.
    Reader r(w.bytes().data(), w.bytes().size() - 3);
    WireType wire;
    r.read_tag(wire);
    EXPECT_THROW(r.read_bytes(), Error);
}

TEST(ProtoReader, TruncatedVarintRejected)
{
    const std::uint8_t bytes[] = {0x08, 0x80}; // continuation bit set, EOF
    Reader r(bytes, 2);
    WireType wire;
    r.read_tag(wire);
    EXPECT_THROW(r.read_varint(), Error);
}

TEST(ProtoReader, OverlongVarintRejected)
{
    std::vector<std::uint8_t> bytes{0x08};
    for (int i = 0; i < 11; ++i)
        bytes.push_back(0x80);
    Reader r(bytes.data(), bytes.size());
    WireType wire;
    r.read_tag(wire);
    EXPECT_THROW(r.read_varint(), Error);
}

TEST(ProtoReader, UnknownWireTypeRejected)
{
    const std::uint8_t bytes[] = {0x0B}; // field 1, wire type 3
    Reader r(bytes, 1);
    WireType wire;
    EXPECT_THROW(r.read_tag(wire), Error);
}

TEST(ProtoReader, FieldNumberZeroRejected)
{
    const std::uint8_t bytes[] = {0x00};
    Reader r(bytes, 1);
    WireType wire;
    EXPECT_THROW(r.read_tag(wire), Error);
}

} // namespace
} // namespace orpheus::proto
