/**
 * @file
 * SIMD microkernel tier: cpu-probe sanity, scalar-vs-vector
 * equivalence (bitwise for the integer kernels, ULP-bounded for fp32),
 * and dispatch behaviour under the ORPHEUS_DISABLE_SIMD override.
 *
 * The equivalence tests deliberately sweep ragged shapes (M not a
 * multiple of the micro-kernel MR, N not a multiple of the panel width,
 * tiny/odd/block-straddling K) so every tail path in the vector kernels
 * is exercised. All fp32 test data is positive, so ULP comparisons are
 * not inflated by cancellation.
 */
#include "core/cpu_features.hpp"

#include <cstdlib>
#include <gtest/gtest.h>

#include "core/tensor.hpp"
#include "models/builder.hpp"
#include "ops/conv/conv.hpp"
#include "ops/gemm/gemm.hpp"
#include "ops/quant/qconv.hpp"
#include "ops/quant/qgemm.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::make_random;

/** Restores the forced-disable override on scope exit. */
struct SimdOverrideGuard {
    ~SimdOverrideGuard() { force_disable_simd(false); }
};

/** Positive uniform values in [0.1, 1.1): no cancellation in sums. */
std::vector<float>
positive_values(std::size_t count, unsigned seed)
{
    std::vector<float> values(count);
    unsigned state = seed * 2654435761u + 1u;
    for (auto &v : values) {
        state = state * 1664525u + 1013904223u;
        v = 0.1f + static_cast<float>(state >> 8) /
                       static_cast<float>(1u << 24);
    }
    return values;
}

std::int64_t
max_ulp_diff(const std::vector<float> &a, const std::vector<float> &b)
{
    std::int64_t worst = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, ulp_distance(a[i], b[i]));
    return worst;
}

TEST(CpuFeatures, ProbeMatchesCompilerBuiltins)
{
    const CpuFeatures &f = cpu_features();
#if defined(__x86_64__) || defined(_M_X64)
    EXPECT_EQ(f.avx2, bool(__builtin_cpu_supports("avx2")));
    EXPECT_EQ(f.fma, bool(__builtin_cpu_supports("fma")));
    EXPECT_EQ(f.sse42, bool(__builtin_cpu_supports("sse4.2")));
    EXPECT_EQ(f.neon, false);
#elif defined(__aarch64__)
    EXPECT_TRUE(f.neon);
#endif
    // The probe is cached: repeated calls return the same object.
    EXPECT_EQ(&cpu_features(), &f);
}

TEST(CpuFeatures, ForceDisableOverridesProbe)
{
    SimdOverrideGuard guard;
    force_disable_simd(true);
    EXPECT_TRUE(simd_disabled());
    EXPECT_FALSE(simd_enabled());
    force_disable_simd(false);
    // Clearing the force flag restores the probe verdict — unless the
    // environment override is active (e.g. the whole suite runs under
    // ORPHEUS_DISABLE_SIMD=1), which is an independent disable channel.
    EXPECT_EQ(simd_enabled(), simd_isa_supported() && !simd_disabled());
}

TEST(CpuFeatures, EnvVarDisablesSimd)
{
    const char *ambient = std::getenv("ORPHEUS_DISABLE_SIMD");
    const std::string saved = ambient ? ambient : "";
    ::setenv("ORPHEUS_DISABLE_SIMD", "1", 1);
    EXPECT_TRUE(simd_disabled());
    EXPECT_FALSE(simd_enabled());
    EXPECT_FALSE(gemm_packed_simd_available());
    EXPECT_FALSE(qgemm_simd_available());
    EXPECT_FALSE(conv2d_depthwise_simd_available());
    ::unsetenv("ORPHEUS_DISABLE_SIMD");
    EXPECT_FALSE(simd_disabled());
    if (ambient)
        ::setenv("ORPHEUS_DISABLE_SIMD", saved.c_str(), 1);
}

TEST(CpuFeatures, DisabledSimdEntryPointsMatchScalarBitwise)
{
    // With the tier disabled the *_simd entry points must route to the
    // scalar kernels — outputs are bitwise identical, not just close.
    SimdOverrideGuard guard;
    force_disable_simd(true);
    const std::int64_t m = 5, n = 17, k = 33;
    const auto a = positive_values(static_cast<std::size_t>(m * k), 1);
    const auto b = positive_values(static_cast<std::size_t>(k * n), 2);
    std::vector<float> c_scalar(static_cast<std::size_t>(m * n));
    std::vector<float> c_simd(c_scalar.size());
    gemm_packed(m, n, k, a.data(), k, b.data(), n, c_scalar.data(), n);
    gemm_packed_simd(m, n, k, a.data(), k, b.data(), n, c_simd.data(), n);
    EXPECT_EQ(c_scalar, c_simd);
}

// --- fp32 packed GEMM: scalar vs SIMD, ragged-shape sweep -------------------

struct GemmShape {
    std::int64_t m, n, k;
};

class SimdGemmEquivalence : public ::testing::TestWithParam<GemmShape>
{
};

TEST_P(SimdGemmEquivalence, WithinFourUlps)
{
    if (!simd_enabled())
        GTEST_SKIP() << "SIMD tier unavailable on this host";
    const GemmShape s = GetParam();
    const auto a =
        positive_values(static_cast<std::size_t>(s.m * s.k), 0xa0);
    const auto b =
        positive_values(static_cast<std::size_t>(s.k * s.n), 0xb0);
    std::vector<float> c_scalar(static_cast<std::size_t>(s.m * s.n));
    std::vector<float> c_simd(c_scalar.size());
    gemm_packed(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                c_scalar.data(), s.n);
    gemm_packed_simd(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                     c_simd.data(), s.n);
    EXPECT_LE(max_ulp_diff(c_scalar, c_simd), 4)
        << "m=" << s.m << " n=" << s.n << " k=" << s.k;
}

INSTANTIATE_TEST_SUITE_P(
    RaggedSweep, SimdGemmEquivalence,
    ::testing::Values(
        // M sweeps the micro-kernel row tails (scalar MR=4, AVX2 MR=6).
        GemmShape{1, 16, 3}, GemmShape{3, 16, 3}, GemmShape{4, 16, 3},
        GemmShape{5, 16, 3}, GemmShape{6, 16, 3}, GemmShape{7, 16, 3},
        GemmShape{13, 16, 3},
        // N sweeps the 16-column panel tails.
        GemmShape{6, 1, 7}, GemmShape{6, 7, 7}, GemmShape{6, 15, 7},
        GemmShape{6, 17, 7}, GemmShape{6, 31, 7}, GemmShape{6, 33, 7},
        // K: unit, odd, and one past the 256-deep pack block.
        GemmShape{7, 17, 1}, GemmShape{7, 17, 3}, GemmShape{7, 17, 257},
        // A dense-ish production shape.
        GemmShape{64, 96, 128}),
    [](const ::testing::TestParamInfo<GemmShape> &info) {
        const GemmShape &s = info.param;
        return "m" + std::to_string(s.m) + "n" + std::to_string(s.n) +
               "k" + std::to_string(s.k);
    });

// --- int8 qgemm: scalar vs SIMD must be bitwise identical -------------------

class SimdQgemmEquivalence : public ::testing::TestWithParam<GemmShape>
{
};

TEST_P(SimdQgemmEquivalence, BitwiseEqualAcrossZeroPoints)
{
    if (!simd_enabled())
        GTEST_SKIP() << "SIMD tier unavailable on this host";
    const GemmShape s = GetParam();
    std::vector<std::uint8_t> a(static_cast<std::size_t>(s.m * s.k));
    std::vector<std::int8_t> b(static_cast<std::size_t>(s.k * s.n));
    unsigned state = 0x51ce;
    for (auto &v : a) {
        state = state * 1664525u + 1013904223u;
        v = static_cast<std::uint8_t>(state >> 16);
    }
    for (auto &v : b) {
        state = state * 1664525u + 1013904223u;
        v = static_cast<std::int8_t>(state >> 16);
    }
    std::vector<std::int32_t> c_scalar(static_cast<std::size_t>(s.m * s.n));
    std::vector<std::int32_t> c_simd(c_scalar.size());
    for (std::int32_t zp : {0, 7, 128, 255}) {
        qgemm_u8i8(s.m, s.n, s.k, a.data(), s.k, zp, b.data(), s.n,
                   c_scalar.data(), s.n);
        qgemm_u8i8_simd(s.m, s.n, s.k, a.data(), s.k, zp, b.data(), s.n,
                        c_simd.data(), s.n);
        EXPECT_EQ(c_scalar, c_simd)
            << "zp=" << zp << " m=" << s.m << " n=" << s.n << " k=" << s.k;
    }
}

TEST_P(SimdQgemmEquivalence, WeightStationaryBitwiseEqual)
{
    if (!simd_enabled())
        GTEST_SKIP() << "SIMD tier unavailable on this host";
    const GemmShape s = GetParam();
    std::vector<std::int8_t> w(static_cast<std::size_t>(s.m * s.k));
    std::vector<std::uint8_t> col(static_cast<std::size_t>(s.k * s.n));
    unsigned state = 0x3817;
    for (auto &v : w) {
        state = state * 1664525u + 1013904223u;
        v = static_cast<std::int8_t>(state >> 16);
    }
    for (auto &v : col) {
        state = state * 1664525u + 1013904223u;
        v = static_cast<std::uint8_t>(state >> 16);
    }
    std::vector<std::int32_t> c_scalar(static_cast<std::size_t>(s.m * s.n));
    std::vector<std::int32_t> c_simd(c_scalar.size());
    qgemm_w8a8(s.m, s.n, s.k, w.data(), s.k, col.data(), s.n,
               c_scalar.data(), s.n);
    qgemm_w8a8_simd(s.m, s.n, s.k, w.data(), s.k, col.data(), s.n,
                    c_simd.data(), s.n);
    EXPECT_EQ(c_scalar, c_simd);
}

INSTANTIATE_TEST_SUITE_P(
    RaggedSweep, SimdQgemmEquivalence,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{3, 31, 3},
                      GemmShape{4, 32, 64}, GemmShape{5, 33, 17},
                      GemmShape{7, 16, 257}, GemmShape{8, 65, 9},
                      GemmShape{16, 40, 27}),
    [](const ::testing::TestParamInfo<GemmShape> &info) {
        const GemmShape &s = info.param;
        return "m" + std::to_string(s.m) + "n" + std::to_string(s.n) +
               "k" + std::to_string(s.k);
    });

// --- quantized conv: SIMD accumulation path is bitwise identical ------------

TEST(SimdQconv, SimdFlagProducesBitwiseIdenticalOutput)
{
    if (!simd_enabled())
        GTEST_SKIP() << "SIMD tier unavailable on this host";
    Tensor x_q(Shape({1, 6, 9, 9}), DataType::kUInt8);
    Tensor w_q(Shape({8, 6, 3, 3}), DataType::kInt8);
    Tensor bias(Shape({8}), DataType::kInt32);
    unsigned state = 0x9c0;
    for (std::int64_t i = 0; i < x_q.numel(); ++i) {
        state = state * 1664525u + 1013904223u;
        x_q.data<std::uint8_t>()[i] =
            static_cast<std::uint8_t>(state >> 16);
    }
    for (std::int64_t i = 0; i < w_q.numel(); ++i) {
        state = state * 1664525u + 1013904223u;
        w_q.data<std::int8_t>()[i] = static_cast<std::int8_t>(state >> 16);
    }
    for (std::int64_t i = 0; i < bias.numel(); ++i) {
        state = state * 1664525u + 1013904223u;
        bias.data<std::int32_t>()[i] =
            static_cast<std::int32_t>(state >> 12) - (1 << 18);
    }

    QConv2dArgs args;
    args.input = &x_q;
    args.input_params = {0.02f, 13};
    args.weight = &w_q;
    args.weight_params = {0.05f, 0};
    args.bias = &bias;
    args.output_params = {0.1f, 7};
    args.params.kernel_h = args.params.kernel_w = 3;
    args.params.pad_top = args.params.pad_left = 1;
    args.params.pad_bottom = args.params.pad_right = 1;
    args.activation = ActivationSpec::relu();

    Tensor y_scalar(Shape({1, 8, 9, 9}), DataType::kUInt8);
    Tensor y_simd(Shape({1, 8, 9, 9}), DataType::kUInt8);
    args.output = &y_scalar;
    args.simd = false;
    qconv2d(args);
    args.output = &y_simd;
    args.simd = true;
    qconv2d(args);
    for (std::int64_t i = 0; i < y_scalar.numel(); ++i)
        ASSERT_EQ(y_scalar.data<std::uint8_t>()[i],
                  y_simd.data<std::uint8_t>()[i])
            << "pixel " << i;
}

// --- depthwise conv: direct vs SIMD -----------------------------------------

struct DepthwiseCase {
    std::string label;
    std::int64_t channels, hw, multiplier, kernel, stride, pad, dilation;
};

class SimdDepthwiseEquivalence
    : public ::testing::TestWithParam<DepthwiseCase>
{
};

TEST_P(SimdDepthwiseEquivalence, WithinFourUlps)
{
    if (!simd_enabled())
        GTEST_SKIP() << "SIMD tier unavailable on this host";
    const DepthwiseCase &c = GetParam();
    Conv2dParams p;
    p.kernel_h = p.kernel_w = c.kernel;
    p.stride_h = p.stride_w = c.stride;
    p.pad_top = p.pad_left = p.pad_bottom = p.pad_right = c.pad;
    p.dilation_h = p.dilation_w = c.dilation;
    p.group = c.channels;

    const std::int64_t out_c = c.channels * c.multiplier;
    Tensor input(Shape({1, c.channels, c.hw, c.hw}));
    Tensor weight(Shape({out_c, 1, c.kernel, c.kernel}));
    Tensor bias(Shape({out_c}));
    const auto in_vals = positive_values(
        static_cast<std::size_t>(input.numel()), 0xdd1);
    const auto w_vals = positive_values(
        static_cast<std::size_t>(weight.numel()), 0xdd2);
    const auto b_vals = positive_values(
        static_cast<std::size_t>(bias.numel()), 0xdd3);
    std::copy(in_vals.begin(), in_vals.end(), input.data<float>());
    std::copy(w_vals.begin(), w_vals.end(), weight.data<float>());
    std::copy(b_vals.begin(), b_vals.end(), bias.data<float>());

    const Shape out_shape({1, out_c, p.out_h(c.hw), p.out_w(c.hw)});
    Tensor expected(out_shape), actual(out_shape);
    conv2d(ConvAlgo::kDepthwiseDirect, input, weight, &bias, p,
           ActivationSpec::relu(), expected);
    conv2d(ConvAlgo::kDepthwiseSimd, input, weight, &bias, p,
           ActivationSpec::relu(), actual);
    std::int64_t worst = 0;
    for (std::int64_t i = 0; i < expected.numel(); ++i)
        worst = std::max(worst, ulp_distance(expected.data<float>()[i],
                                             actual.data<float>()[i]));
    EXPECT_LE(worst, 4) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimdDepthwiseEquivalence,
    ::testing::Values(
        DepthwiseCase{"s1_3x3", 16, 14, 1, 3, 1, 1, 1},
        DepthwiseCase{"s2_3x3", 16, 14, 1, 3, 2, 1, 1},
        DepthwiseCase{"s1_5x5", 6, 12, 1, 5, 1, 2, 1},
        DepthwiseCase{"multiplier2", 8, 10, 2, 3, 1, 1, 1},
        DepthwiseCase{"dilated", 8, 13, 1, 3, 1, 2, 2},
        DepthwiseCase{"narrow", 4, 5, 1, 3, 1, 1, 1},
        DepthwiseCase{"no_pad", 8, 9, 1, 3, 1, 0, 1}),
    [](const ::testing::TestParamInfo<DepthwiseCase> &info) {
        return info.param.label;
    });

// --- engine dispatch --------------------------------------------------------

/** A small net covering depthwise conv, dense conv and a Gemm head. */
Graph
simd_probe_graph()
{
    GraphBuilder b("simd_probe", 0x51d);
    std::string x = b.input("input", Shape({1, 8, 10, 10}));
    x = b.conv_k(x, 8, 3, 1, 1, /*group=*/8, /*bias=*/true);
    x = b.conv_k(x, 16, 3, 1, 1, /*group=*/1, /*bias=*/true);
    x = b.flatten(x);
    x = b.dense(x, 10);
    b.output(x);
    return b.take();
}

/** impl selected per op type, in plan order. */
std::vector<std::pair<std::string, std::string>>
selected_impls(const Engine &engine)
{
    std::vector<std::pair<std::string, std::string>> impls;
    for (const PlanStep &step : engine.steps())
        impls.emplace_back(step.op_type, step.layer->impl_name());
    return impls;
}

TEST(SimdDispatch, SimdImplsSelectedWhenAvailable)
{
    if (!simd_enabled())
        GTEST_SKIP() << "SIMD tier unavailable on this host";
    const std::string isa = simd_isa_compiled();
    Engine engine(simd_probe_graph());
    bool saw_depthwise = false, saw_im2col = false, saw_gemm = false;
    for (const auto &[op, impl] : selected_impls(engine)) {
        if (impl == "depthwise_" + isa)
            saw_depthwise = true;
        if (impl == "im2col_gemm_" + isa)
            saw_im2col = true;
        if (impl == "packed_" + isa)
            saw_gemm = true;
    }
    EXPECT_TRUE(saw_depthwise);
    EXPECT_TRUE(saw_im2col);
    EXPECT_TRUE(saw_gemm);
}

TEST(SimdDispatch, DisableOverrideSelectsScalarImpls)
{
    if (simd_isa_compiled()[0] == '\0')
        GTEST_SKIP() << "no SIMD tier compiled into this binary";
    const bool ambient = std::getenv("ORPHEUS_DISABLE_SIMD") != nullptr;
    ::setenv("ORPHEUS_DISABLE_SIMD", "1", 1);
    Engine engine(simd_probe_graph());
    if (!ambient)
        ::unsetenv("ORPHEUS_DISABLE_SIMD");
    for (const auto &[op, impl] : selected_impls(engine)) {
        if (op == op_names::kConv)
            EXPECT_TRUE(impl == "depthwise_direct" ||
                        impl == "im2col_gemm")
                << impl;
        if (op == op_names::kGemm)
            EXPECT_EQ(impl, "reference");
    }
}

TEST(SimdDispatch, AllowSimdConfigRemovesSimdImpls)
{
    if (!simd_enabled())
        GTEST_SKIP() << "SIMD tier unavailable on this host";
    EngineOptions options;
    options.backend.allow_simd = false;
    Engine engine(simd_probe_graph(), options);
    const std::string isa = simd_isa_compiled();
    for (const auto &[op, impl] : selected_impls(engine)) {
        EXPECT_EQ(impl.find("_" + isa), std::string::npos)
            << op << " selected " << impl;
    }
}

TEST(SimdDispatch, SimdAndScalarEnginesAgree)
{
    if (!simd_enabled())
        GTEST_SKIP() << "SIMD tier unavailable on this host";
    Engine simd_engine(simd_probe_graph());
    EngineOptions scalar_options;
    scalar_options.backend.allow_simd = false;
    Engine scalar_engine(simd_probe_graph(), scalar_options);
    Tensor input = make_random(Shape({1, 8, 10, 10}), 0x5ee);
    const Tensor a = simd_engine.run(input);
    const Tensor b = scalar_engine.run(input);
    ASSERT_EQ(a.shape(), b.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i)
        EXPECT_LE(ulp_distance(a.data<float>()[i], b.data<float>()[i]),
                  256)
            << "output " << i;
}

} // namespace
} // namespace orpheus
