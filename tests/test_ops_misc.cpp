/** @file Unit tests for pooling, softmax, eltwise, concat, pad,
 *  batchnorm, dense, reduce and standalone activations. */
#include <cmath>

#include <gtest/gtest.h>

#include "ops/activation.hpp"
#include "ops/batchnorm.hpp"
#include "ops/concat.hpp"
#include "ops/dense.hpp"
#include "ops/eltwise.hpp"
#include "ops/pad.hpp"
#include "ops/pool.hpp"
#include "ops/reduce.hpp"
#include "ops/softmax.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::expect_close;
using testing::make_random;

// --- Pooling ---------------------------------------------------------------

TEST(MaxPool, KnownValues)
{
    Tensor input = Tensor::from_values(
        Shape({1, 1, 4, 4}),
        {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
    Pool2dParams p;
    p.kernel_h = p.kernel_w = 2;
    p.stride_h = p.stride_w = 2;
    Tensor output(Shape({1, 1, 2, 2}));
    maxpool2d(input, p, output);
    EXPECT_EQ(output.data<float>()[0], 6.0f);
    EXPECT_EQ(output.data<float>()[1], 8.0f);
    EXPECT_EQ(output.data<float>()[2], 14.0f);
    EXPECT_EQ(output.data<float>()[3], 16.0f);
}

TEST(MaxPool, PaddingNeverWins)
{
    // All-negative input with padding: zeros from padding must not leak.
    Tensor input(Shape({1, 1, 2, 2}));
    input.fill(-5.0f);
    Pool2dParams p;
    p.kernel_h = p.kernel_w = 3;
    p.stride_h = p.stride_w = 1;
    p.pad_top = p.pad_left = p.pad_bottom = p.pad_right = 1;
    Tensor output(Shape({1, 1, 2, 2}));
    maxpool2d(input, p, output);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(output.data<float>()[i], -5.0f);
}

TEST(AvgPool, CountIncludePadSemantics)
{
    Tensor input(Shape({1, 1, 2, 2}));
    input.fill(4.0f);
    Pool2dParams p;
    p.kernel_h = p.kernel_w = 2;
    p.stride_h = p.stride_w = 2;
    p.pad_top = p.pad_left = 1;
    p.pad_bottom = p.pad_right = 1;

    // Window at (0,0) covers 1 real element with exclude-pad...
    Tensor output(Shape({1, 1, 2, 2}));
    p.count_include_pad = false;
    avgpool2d(input, p, output);
    EXPECT_FLOAT_EQ(output.data<float>()[0], 4.0f);

    // ...and divides by 4 with include-pad.
    p.count_include_pad = true;
    avgpool2d(input, p, output);
    EXPECT_FLOAT_EQ(output.data<float>()[0], 1.0f);
}

TEST(GlobalAveragePool, AveragesPlane)
{
    Tensor input = Tensor::from_values(Shape({1, 2, 2, 2}),
                                       {1, 2, 3, 4, 10, 20, 30, 40});
    Tensor output(Shape({1, 2, 1, 1}));
    global_average_pool(input, output);
    EXPECT_FLOAT_EQ(output.data<float>()[0], 2.5f);
    EXPECT_FLOAT_EQ(output.data<float>()[1], 25.0f);
}

// --- Softmax ---------------------------------------------------------------

TEST(Softmax, RowsSumToOne)
{
    Tensor input = make_random(Shape({4, 10}), 0x50, -5.0f, 5.0f);
    Tensor output(Shape({4, 10}));
    softmax(input, output, -1);
    for (int row = 0; row < 4; ++row) {
        double sum = 0.0;
        for (int col = 0; col < 10; ++col) {
            const float value = output.data<float>()[row * 10 + col];
            EXPECT_GE(value, 0.0f);
            sum += value;
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(Softmax, StableUnderLargeInputs)
{
    Tensor input = Tensor::from_values(Shape({1, 3}), {1000, 1001, 1002});
    Tensor output(Shape({1, 3}));
    softmax(input, output);
    EXPECT_FALSE(std::isnan(output.data<float>()[0]));
    // exp(0)/sum, exp(1)/sum, exp(2)/sum after shift.
    EXPECT_NEAR(output.data<float>()[2], 0.66524f, 1e-4f);
}

TEST(Softmax, AxisSelection)
{
    Tensor input = Tensor::from_values(Shape({2, 2}), {0, 0, 1, 1});
    Tensor output(Shape({2, 2}));
    softmax(input, output, 0); // Columns sum to 1.
    EXPECT_NEAR(output.data<float>()[0] + output.data<float>()[2], 1.0f,
                1e-5f);
    EXPECT_NEAR(output.data<float>()[0], 1.0f / (1.0f + std::exp(1.0f)),
                1e-5f);
}

// --- Eltwise ---------------------------------------------------------------

TEST(Eltwise, SameShapeAddAndMul)
{
    Tensor a = Tensor::from_values(Shape({2, 2}), {1, 2, 3, 4});
    Tensor b = Tensor::from_values(Shape({2, 2}), {10, 20, 30, 40});
    Tensor out(Shape({2, 2}));
    eltwise(EltwiseOp::kAdd, a, b, out);
    EXPECT_EQ(out.data<float>()[3], 44.0f);
    eltwise(EltwiseOp::kMul, a, b, out);
    EXPECT_EQ(out.data<float>()[2], 90.0f);
}

TEST(Eltwise, BroadcastScalar)
{
    Tensor a = make_random(Shape({2, 3, 4}), 0x51);
    Tensor b = Tensor::scalar(2.0f);
    Tensor out(Shape({2, 3, 4}));
    eltwise(EltwiseOp::kMul, a, b, out);
    for (std::int64_t i = 0; i < a.numel(); ++i)
        EXPECT_FLOAT_EQ(out.data<float>()[i], a.data<float>()[i] * 2.0f);
}

TEST(Eltwise, BroadcastPerChannelBias)
{
    // NCHW + [1, C, 1, 1] — the classic bias broadcast.
    Tensor a = make_random(Shape({1, 3, 2, 2}), 0x52);
    Tensor b = Tensor::from_values(Shape({1, 3, 1, 1}), {10, 20, 30});
    Tensor out(Shape({1, 3, 2, 2}));
    eltwise(EltwiseOp::kAdd, a, b, out);
    for (int c = 0; c < 3; ++c) {
        for (int i = 0; i < 4; ++i) {
            EXPECT_FLOAT_EQ(out.data<float>()[c * 4 + i],
                            a.data<float>()[c * 4 + i] +
                                10.0f * static_cast<float>(c + 1));
        }
    }
}

TEST(Eltwise, BroadcastDifferentRanks)
{
    Tensor a = make_random(Shape({2, 3}), 0x53);
    Tensor b = Tensor::from_values(Shape({3}), {1, 2, 3});
    Tensor out(Shape({2, 3}));
    eltwise(EltwiseOp::kAdd, a, b, out);
    EXPECT_FLOAT_EQ(out.data<float>()[4],
                    a.data<float>()[4] + 2.0f);
}

TEST(Eltwise, IncompatibleShapesRejected)
{
    EXPECT_THROW(broadcast_result_shape(Shape({2, 3}), Shape({4})), Error);
    EXPECT_EQ(broadcast_result_shape(Shape({2, 1, 4}), Shape({3, 1})),
              Shape({2, 3, 4}));
}

// --- Concat ----------------------------------------------------------------

TEST(Concat, ChannelAxis)
{
    Tensor a = make_random(Shape({1, 2, 2, 2}), 0x54);
    Tensor b = make_random(Shape({1, 3, 2, 2}), 0x55);
    Tensor out(Shape({1, 5, 2, 2}));
    concat({&a, &b}, 1, out);
    EXPECT_FLOAT_EQ(out.data<float>()[0], a.data<float>()[0]);
    EXPECT_FLOAT_EQ(out.data<float>()[8], b.data<float>()[0]);
}

TEST(Concat, LastAxis)
{
    Tensor a = Tensor::from_values(Shape({2, 2}), {1, 2, 3, 4});
    Tensor b = Tensor::from_values(Shape({2, 1}), {9, 8});
    Tensor out(Shape({2, 3}));
    concat({&a, &b}, -1, out);
    const float expected[] = {1, 2, 9, 3, 4, 8};
    for (int i = 0; i < 6; ++i)
        EXPECT_FLOAT_EQ(out.data<float>()[i], expected[i]);
}

TEST(Concat, SingleInputIsCopy)
{
    Tensor a = make_random(Shape({2, 3}), 0x56);
    Tensor out(Shape({2, 3}));
    concat({&a}, 0, out);
    expect_close(out, a, 0, 0);
}

TEST(Concat, CoverageMismatchRejected)
{
    Tensor a = make_random(Shape({2, 2}));
    Tensor out(Shape({2, 5}));
    EXPECT_THROW(concat({&a}, 1, out), Error);
}

// --- Pad ---------------------------------------------------------------

TEST(Pad, Basic2d)
{
    Tensor input = Tensor::from_values(Shape({2, 2}), {1, 2, 3, 4});
    Tensor output(Shape({4, 5}));
    pad_constant(input, {1, 2, 1, 1}, -1.0f, output);
    // Row 0 all padding.
    for (int j = 0; j < 5; ++j)
        EXPECT_FLOAT_EQ(output.data<float>()[j], -1.0f);
    // Row 1: [-1, -1, 1, 2, -1]
    EXPECT_FLOAT_EQ(output.data<float>()[5 + 2], 1.0f);
    EXPECT_FLOAT_EQ(output.data<float>()[5 + 3], 2.0f);
    EXPECT_FLOAT_EQ(output.data<float>()[5 + 4], -1.0f);
    // Row 2: [-1, -1, 3, 4, -1]
    EXPECT_FLOAT_EQ(output.data<float>()[10 + 2], 3.0f);
}

TEST(Pad, Nchw4d)
{
    Tensor input = make_random(Shape({1, 2, 3, 3}), 0x57);
    Tensor output(Shape({1, 2, 5, 5}));
    pad_constant(input, {0, 0, 1, 1, 0, 0, 1, 1}, 0.0f, output);
    EXPECT_FLOAT_EQ(output.at(0, 0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(output.at(0, 1, 1, 1), input.at(0, 1, 0, 0));
    EXPECT_FLOAT_EQ(output.at(0, 1, 3, 3), input.at(0, 1, 2, 2));
    EXPECT_FLOAT_EQ(output.at(0, 1, 4, 4), 0.0f);
}

TEST(Pad, WrongPadCountRejected)
{
    Tensor input = make_random(Shape({2, 2}));
    Tensor output(Shape({3, 3}));
    EXPECT_THROW(pad_constant(input, {1, 0, 0}, 0.0f, output), Error);
}

// --- BatchNorm -------------------------------------------------------------

TEST(BatchNorm, MatchesManualFormula)
{
    const std::int64_t channels = 3;
    Tensor input = make_random(Shape({2, channels, 4, 4}), 0x58);
    Tensor gamma = Tensor::from_values(Shape({3}), {1.0f, 2.0f, 0.5f});
    Tensor beta = Tensor::from_values(Shape({3}), {0.0f, 1.0f, -1.0f});
    Tensor mean = Tensor::from_values(Shape({3}), {0.1f, -0.2f, 0.0f});
    Tensor var = Tensor::from_values(Shape({3}), {1.0f, 0.5f, 2.0f});
    const float eps = 1e-5f;

    Tensor output(input.shape());
    batchnorm_inference(input, gamma, beta, mean, var, eps, output);

    for (std::int64_t n = 0; n < 2; ++n) {
        for (std::int64_t c = 0; c < channels; ++c) {
            const float g = gamma.data<float>()[c];
            const float b = beta.data<float>()[c];
            const float m = mean.data<float>()[c];
            const float v = var.data<float>()[c];
            const float expected =
                g * (input.at(n, c, 1, 2) - m) / std::sqrt(v + eps) + b;
            EXPECT_NEAR(output.at(n, c, 1, 2), expected, 1e-5f);
        }
    }
}

TEST(BatchNorm, ParameterLengthChecked)
{
    Tensor input = make_random(Shape({1, 4, 2, 2}));
    Tensor short_param = make_random(Shape({3}));
    Tensor ok = make_random(Shape({4}));
    Tensor output(input.shape());
    EXPECT_THROW(batchnorm_inference(input, short_param, ok, ok, ok, 1e-5f,
                                     output),
                 Error);
}

// --- Dense -----------------------------------------------------------------

TEST(Dense, MatchesManualSmallCase)
{
    Tensor a = Tensor::from_values(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
    Tensor b = Tensor::from_values(Shape({3, 2}), {7, 8, 9, 10, 11, 12});
    Tensor out(Shape({2, 2}));
    dense(a, b, nullptr, false, false, 1.0f, 0.0f, out);
    EXPECT_FLOAT_EQ(out.data<float>()[0], 58.0f);
    EXPECT_FLOAT_EQ(out.data<float>()[1], 64.0f);
    EXPECT_FLOAT_EQ(out.data<float>()[2], 139.0f);
    EXPECT_FLOAT_EQ(out.data<float>()[3], 154.0f);
}

TEST(Dense, TransBWithBiasVector)
{
    // The FC-layer configuration: Y = X * W^T + b.
    Tensor x = make_random(Shape({2, 4}), 0x59);
    Tensor w = make_random(Shape({3, 4}), 0x5a);
    Tensor bias = Tensor::from_values(Shape({3}), {1, 2, 3});
    Tensor out(Shape({2, 3}));
    dense(x, w, &bias, false, true, 1.0f, 1.0f, out);

    for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 3; ++j) {
            float expected = bias.data<float>()[j];
            for (int k = 0; k < 4; ++k)
                expected += x.data<float>()[i * 4 + k] *
                            w.data<float>()[j * 4 + k];
            EXPECT_NEAR(out.data<float>()[i * 3 + j], expected, 1e-4f);
        }
    }
}

TEST(Dense, ScalarAndMatrixBiasBroadcast)
{
    Tensor a = Tensor::from_values(Shape({1, 2}), {1, 1});
    Tensor b = Tensor::from_values(Shape({2, 2}), {1, 0, 0, 1});
    Tensor scalar_bias = Tensor::scalar(5.0f);
    Tensor out(Shape({1, 2}));
    dense(a, b, &scalar_bias, false, false, 1.0f, 2.0f, out);
    EXPECT_FLOAT_EQ(out.data<float>()[0], 11.0f);

    Tensor row_bias = Tensor::from_values(Shape({1, 2}), {1, 2});
    dense(a, b, &row_bias, false, false, 1.0f, 1.0f, out);
    EXPECT_FLOAT_EQ(out.data<float>()[1], 3.0f);
}

TEST(Dense, InnerDimMismatchRejected)
{
    Tensor a = make_random(Shape({2, 3}));
    Tensor b = make_random(Shape({4, 2}));
    Tensor out(Shape({2, 2}));
    EXPECT_THROW(dense(a, b, nullptr, false, false, 1, 0, out), Error);
}

// --- ReduceMean -------------------------------------------------------------

TEST(ReduceMean, SpatialAxes)
{
    Tensor input = Tensor::from_values(Shape({1, 2, 2, 2}),
                                       {1, 2, 3, 4, 10, 20, 30, 40});
    Tensor output(Shape({1, 2, 1, 1}));
    reduce_mean(input, {2, 3}, output);
    EXPECT_FLOAT_EQ(output.data<float>()[0], 2.5f);
    EXPECT_FLOAT_EQ(output.data<float>()[1], 25.0f);
}

TEST(ReduceMean, NegativeAxesAndMiddleAxis)
{
    Tensor input = Tensor::from_values(Shape({2, 2, 2}),
                                       {1, 2, 3, 4, 5, 6, 7, 8});
    Tensor output(Shape({2, 2}));
    reduce_mean(input, {-2}, output);
    EXPECT_FLOAT_EQ(output.data<float>()[0], 2.0f); // mean(1, 3)
    EXPECT_FLOAT_EQ(output.data<float>()[3], 7.0f); // mean(6, 8)
}

TEST(ReduceMean, DuplicateAxisRejected)
{
    Tensor input = make_random(Shape({2, 2}));
    Tensor output(Shape({2}));
    EXPECT_THROW(reduce_mean(input, {1, -1}, output), Error);
}

// --- Activations -------------------------------------------------------------

TEST(Activation, AllKindsPointwise)
{
    EXPECT_FLOAT_EQ(ActivationSpec::relu().apply(-2.0f), 0.0f);
    EXPECT_FLOAT_EQ(ActivationSpec::relu().apply(3.0f), 3.0f);
    EXPECT_FLOAT_EQ(ActivationSpec::leaky_relu(0.1f).apply(-2.0f), -0.2f);
    EXPECT_FLOAT_EQ(ActivationSpec::clip(0.0f, 6.0f).apply(7.0f), 6.0f);
    EXPECT_FLOAT_EQ(ActivationSpec::clip(0.0f, 6.0f).apply(-1.0f), 0.0f);
    const ActivationSpec sigmoid{ActivationKind::kSigmoid, 0, 0, 0};
    EXPECT_NEAR(sigmoid.apply(0.0f), 0.5f, 1e-6f);
    const ActivationSpec tanh_spec{ActivationKind::kTanh, 0, 0, 0};
    EXPECT_NEAR(tanh_spec.apply(100.0f), 1.0f, 1e-6f);
    EXPECT_FLOAT_EQ(ActivationSpec::none().apply(-42.0f), -42.0f);
}

TEST(Activation, TensorForwardAndInplace)
{
    Tensor input = Tensor::from_values(Shape({4}), {-2, -1, 1, 2});
    Tensor output(Shape({4}));
    activation_forward(ActivationSpec::relu(), input, output);
    EXPECT_FLOAT_EQ(output.data<float>()[0], 0.0f);
    EXPECT_FLOAT_EQ(output.data<float>()[3], 2.0f);

    float data[3] = {-1.0f, 0.5f, 2.0f};
    ActivationSpec::clip(0.0f, 1.0f).apply_inplace(data, 3);
    EXPECT_FLOAT_EQ(data[0], 0.0f);
    EXPECT_FLOAT_EQ(data[1], 0.5f);
    EXPECT_FLOAT_EQ(data[2], 1.0f);
}

TEST(Activation, FusedAttrsRoundTrip)
{
    AttributeMap attrs;
    attrs.set("fused_activation", "leaky_relu");
    attrs.set("fused_alpha", 0.3f);
    const ActivationSpec spec = ActivationSpec::from_fused_attrs(attrs);
    EXPECT_EQ(spec.kind, ActivationKind::kLeakyRelu);
    EXPECT_FLOAT_EQ(spec.alpha, 0.3f);

    AttributeMap empty;
    EXPECT_TRUE(ActivationSpec::from_fused_attrs(empty).is_identity());

    AttributeMap bogus;
    bogus.set("fused_activation", "gelu");
    EXPECT_THROW(ActivationSpec::from_fused_attrs(bogus), Error);
}

} // namespace
} // namespace orpheus
