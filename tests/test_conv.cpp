/** @file Parameterized conv-algorithm correctness tests vs the direct
 *  reference kernel. */
#include "ops/conv/conv.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::expect_close;
using testing::make_random;

struct ConvCase {
    std::string label;
    std::int64_t batch, in_c, hw, out_c;
    std::int64_t kernel_h, kernel_w, stride, pad;
    std::int64_t dilation = 1;
    std::int64_t group = 1;
    bool bias = true;
};

Conv2dParams
params_of(const ConvCase &c)
{
    Conv2dParams p;
    p.kernel_h = c.kernel_h;
    p.kernel_w = c.kernel_w;
    p.stride_h = p.stride_w = c.stride;
    p.pad_top = p.pad_left = p.pad_bottom = p.pad_right = c.pad;
    p.dilation_h = p.dilation_w = c.dilation;
    p.group = c.group;
    return p;
}

/** Runs @p algo and the direct reference on the same data. */
void
run_case(const ConvCase &c, ConvAlgo algo,
         const ActivationSpec &activation = ActivationSpec::none())
{
    const Conv2dParams p = params_of(c);
    Tensor input = make_random(Shape({c.batch, c.in_c, c.hw, c.hw}), 0xc0);
    Tensor weight = make_random(
        Shape({c.out_c, c.in_c / c.group, c.kernel_h, c.kernel_w}), 0xc1);
    Tensor bias = make_random(Shape({c.out_c}), 0xc2);
    const Tensor *bias_ptr = c.bias ? &bias : nullptr;

    const Shape out_shape(
        {c.batch, c.out_c, p.out_h(c.hw), p.out_w(c.hw)});
    Tensor expected(out_shape), actual(out_shape);
    conv2d(ConvAlgo::kDirect, input, weight, bias_ptr, p, activation,
           expected);
    conv2d(algo, input, weight, bias_ptr, p, activation, actual);
    expect_close(actual, expected, 1e-3f, 1e-3f);
}

const ConvCase kCases[] = {
    {"basic3x3", 1, 4, 8, 8, 3, 3, 1, 1},
    {"stride2", 1, 4, 9, 6, 3, 3, 2, 1},
    {"nopad", 1, 3, 8, 5, 3, 3, 1, 0},
    {"kernel5", 1, 2, 12, 4, 5, 5, 1, 2},
    {"pointwise", 2, 8, 7, 16, 1, 1, 1, 0},
    {"nonsquare1x7", 1, 3, 9, 4, 1, 7, 1, 0},
    {"nonsquare7x1", 1, 3, 9, 4, 7, 1, 1, 0},
    {"grouped2", 1, 8, 8, 12, 3, 3, 1, 1, 1, 2},
    {"grouped4", 1, 8, 6, 8, 3, 3, 1, 1, 1, 4},
    {"batch3", 3, 4, 6, 5, 3, 3, 1, 1},
    {"nobias", 1, 4, 8, 8, 3, 3, 1, 1, 1, 1, false},
    {"bigpad", 1, 2, 5, 3, 3, 3, 1, 2},
};

class ConvAlgoVsDirect
    : public ::testing::TestWithParam<std::tuple<ConvCase, ConvAlgo>>
{
};

TEST_P(ConvAlgoVsDirect, Matches)
{
    const auto &[c, algo] = GetParam();
    run_case(c, algo);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvAlgoVsDirect,
    ::testing::Combine(::testing::ValuesIn(kCases),
                       ::testing::Values(ConvAlgo::kIm2colGemm,
                                         ConvAlgo::kSpatialPack)),
    [](const ::testing::TestParamInfo<std::tuple<ConvCase, ConvAlgo>>
           &info) {
        return std::get<0>(info.param).label +
               std::string("_") + to_string(std::get<1>(info.param));
    });

TEST(ConvDilated, Im2colGemmMatchesDirect)
{
    ConvCase c{"dilated", 1, 3, 10, 4, 3, 3, 1, 2, /*dilation=*/2};
    run_case(c, ConvAlgo::kIm2colGemm);
}

TEST(ConvDilated, SpatialPackMatchesDirect)
{
    ConvCase c{"dilated", 1, 3, 10, 4, 3, 3, 1, 2, /*dilation=*/2};
    run_case(c, ConvAlgo::kSpatialPack);
}

TEST(ConvFusedActivation, ReluAppliedByEveryAlgo)
{
    const ConvCase c{"fused", 1, 4, 8, 8, 3, 3, 1, 1};
    for (ConvAlgo algo : {ConvAlgo::kIm2colGemm, ConvAlgo::kSpatialPack})
        run_case(c, algo, ActivationSpec::relu());
}

TEST(ConvFusedActivation, ClipAppliedByEveryAlgo)
{
    const ConvCase c{"fusedclip", 1, 4, 8, 8, 3, 3, 1, 1};
    for (ConvAlgo algo : {ConvAlgo::kIm2colGemm, ConvAlgo::kSpatialPack})
        run_case(c, algo, ActivationSpec::clip(-0.2f, 0.3f));
}

TEST(ConvGemmVariants, AllVariantsAgree)
{
    const ConvCase c{"variants", 1, 6, 10, 8, 3, 3, 1, 1};
    const Conv2dParams p = params_of(c);
    Tensor input = make_random(Shape({1, 6, 10, 10}), 0xc3);
    Tensor weight = make_random(Shape({8, 6, 3, 3}), 0xc4);

    const Shape out_shape({1, 8, 10, 10});
    Tensor naive_out(out_shape), blocked_out(out_shape),
        packed_out(out_shape);
    conv2d(ConvAlgo::kIm2colGemm, input, weight, nullptr, p,
           ActivationSpec::none(), naive_out, GemmVariant::kNaive);
    conv2d(ConvAlgo::kIm2colGemm, input, weight, nullptr, p,
           ActivationSpec::none(), blocked_out, GemmVariant::kBlocked);
    conv2d(ConvAlgo::kIm2colGemm, input, weight, nullptr, p,
           ActivationSpec::none(), packed_out, GemmVariant::kPacked);
    expect_close(blocked_out, naive_out, 1e-3f, 1e-3f);
    expect_close(packed_out, naive_out, 1e-3f, 1e-3f);
}

TEST(Conv, ShapeValidationErrors)
{
    Tensor input = make_random(Shape({1, 4, 8, 8}));
    Tensor weight = make_random(Shape({8, 4, 3, 3}));
    Conv2dParams p;
    p.kernel_h = p.kernel_w = 3;
    p.pad_top = p.pad_left = p.pad_bottom = p.pad_right = 1;

    Tensor wrong_output(Shape({1, 8, 7, 7}));
    EXPECT_THROW(conv2d(ConvAlgo::kDirect, input, weight, nullptr, p,
                        ActivationSpec::none(), wrong_output),
                 Error);

    Tensor weight_mismatch = make_random(Shape({8, 3, 3, 3}));
    Tensor output(Shape({1, 8, 8, 8}));
    EXPECT_THROW(conv2d(ConvAlgo::kDirect, input, weight_mismatch, nullptr,
                        p, ActivationSpec::none(), output),
                 Error);
}

TEST(ConvAlgoNames, ParseAndFormat)
{
    EXPECT_EQ(parse_conv_algo("direct"), ConvAlgo::kDirect);
    EXPECT_EQ(parse_conv_algo("im2col_gemm"), ConvAlgo::kIm2colGemm);
    EXPECT_EQ(parse_conv_algo("spatial_pack"), ConvAlgo::kSpatialPack);
    EXPECT_EQ(parse_conv_algo("winograd"), ConvAlgo::kWinograd);
    EXPECT_EQ(parse_conv_algo("depthwise_direct"),
              ConvAlgo::kDepthwiseDirect);
    EXPECT_THROW(parse_conv_algo("fft"), Error);
    EXPECT_STREQ(to_string(ConvAlgo::kSpatialPack), "spatial_pack");
}

} // namespace
} // namespace orpheus
