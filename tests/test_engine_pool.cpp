/**
 * @file
 * Tests for the resilient engine pool (runtime/engine_pool.hpp) and
 * the retry/brownout machinery the InferenceService builds on it:
 * shared prepacked-constant caches (one allocation per model, not per
 * replica), bitwise-identical replica outputs, health-driven
 * quarantine with probe-gated readmission, warm-spare promotion,
 * fail-fast when every replica is quarantined, failover retries on a
 * different replica, the retry-storm budget, deadline expiry during
 * retry backoff, and brownout shedding of batch-priority work.
 */
#include "runtime/engine_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <new>
#include <thread>
#include <vector>

#include "core/threadpool.hpp"
#include "models/model_zoo.hpp"
#include "runtime/service.hpp"
#include "test_util.hpp"

// --- Allocation byte counting -----------------------------------------------
// Replaces the global allocation functions for this test binary: when
// counting is armed, every operator new tallies its byte size. Used to
// prove the shared ConstantPackCache really removes the per-replica
// pack allocations instead of merely deduplicating pointers.

namespace {
std::atomic<std::int64_t> g_alloc_bytes{0};
std::atomic<bool> g_counting{false};

void *
counted_alloc(std::size_t size)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_alloc_bytes.fetch_add(static_cast<std::int64_t>(size),
                                std::memory_order_relaxed);
    void *ptr = std::malloc(size == 0 ? 1 : size);
    if (ptr == nullptr)
        throw std::bad_alloc();
    return ptr;
}
} // namespace

// The full replacement family: omitting the nothrow/aligned variants
// would pair the default operator new with our free()-based delete (an
// alloc-dealloc mismatch under sanitizers).
void *
operator new(std::size_t size)
{
    return counted_alloc(size);
}

void *
operator new[](std::size_t size)
{
    return counted_alloc(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    if (g_counting.load(std::memory_order_relaxed))
        g_alloc_bytes.fetch_add(static_cast<std::int64_t>(size),
                                std::memory_order_relaxed);
    return std::malloc(size == 0 ? 1 : size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return operator new(size, std::nothrow);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_alloc_bytes.fetch_add(static_cast<std::int64_t>(size),
                                std::memory_order_relaxed);
    const std::size_t alignment = static_cast<std::size_t>(align);
    void *ptr = std::aligned_alloc(
        alignment, (size + alignment - 1) / alignment * alignment);
    if (ptr == nullptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return operator new(size, align);
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::align_val_t, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::align_val_t, std::size_t) noexcept
{
    std::free(ptr);
}

namespace orpheus {
namespace {

using testing::make_random;

std::map<std::string, Tensor>
cnn_inputs(std::uint64_t seed)
{
    return {{"input", make_random(Shape({1, 3, 8, 8}), seed)}};
}

/** Spin until the worker has dequeued everything (requests may still
 *  be executing). */
void
wait_for_empty_queue(const InferenceService &service)
{
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (service.queue_depth() > 0 &&
           std::chrono::steady_clock::now() < give_up)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(service.queue_depth(), 0u);
}

/** Engine options pinning convolutions to a pack-bearing backend so
 *  the ConstantPackCache is exercised deterministically. */
EngineOptions
pinned_spatial_pack()
{
    EngineOptions options;
    options.backend.forced_impl["Conv"] = "spatial_pack";
    return options;
}

// --- Shared prepacked-constant caches ---------------------------------------

TEST(EnginePool, SharedPackCacheBuildsOncePerModel)
{
    set_global_num_threads(1);
    EnginePoolOptions pool_options;
    pool_options.replicas = 4;
    EnginePool pool(models::tiny_cnn(), pinned_spatial_pack(),
                    pool_options);

    const ConstantPackCache &cache = pool.pack_cache();
    ASSERT_GT(cache.entries(), 0u)
        << "tiny_cnn pinned to spatial_pack must produce prepacked "
           "weights; the cache sharing test is vacuous otherwise";
    // Replica 0 misses (builds) every pack; replicas 1-3 must hit.
    EXPECT_EQ(cache.misses(), static_cast<std::int64_t>(cache.entries()));
    EXPECT_EQ(cache.hits(), 3 * cache.misses());
    // Every replica reports the same shared pack footprint.
    for (std::size_t i = 0; i < pool.replica_count(); ++i)
        EXPECT_EQ(pool.engine(i).constant_pack_bytes(), cache.bytes())
            << "replica " << i;
}

TEST(EnginePool, SharedPackCacheAvoidsPerReplicaAllocations)
{
    set_global_num_threads(1);
    Graph graph = models::tiny_cnn();

    // Warm a cache with one engine so the pack keys all exist.
    EngineOptions warm_options = pinned_spatial_pack();
    warm_options.pack_cache = std::make_shared<ConstantPackCache>();
    Engine warm_builder(Graph(graph), warm_options);
    const std::size_t pack_bytes = warm_options.pack_cache->bytes();
    ASSERT_GT(pack_bytes, 0u);

    // Cold: a fresh cache forces every pack to be rebuilt.
    EngineOptions cold_options = pinned_spatial_pack();
    cold_options.pack_cache = std::make_shared<ConstantPackCache>();
    g_alloc_bytes.store(0);
    g_counting.store(true);
    {
        Engine cold(Graph(graph), cold_options);
    }
    g_counting.store(false);
    const std::int64_t cold_bytes = g_alloc_bytes.load();

    // Warm: the shared cache serves every pack by reference.
    g_alloc_bytes.store(0);
    g_counting.store(true);
    {
        Engine shared(Graph(graph), warm_options);
    }
    g_counting.store(false);
    const std::int64_t shared_bytes = g_alloc_bytes.load();

    // The warm build must skip at least the pack storage itself (the
    // two engine builds are otherwise identical code paths).
    EXPECT_LE(shared_bytes + static_cast<std::int64_t>(pack_bytes) / 2,
              cold_bytes)
        << "shared-cache engine allocated " << shared_bytes
        << " bytes vs " << cold_bytes << " cold; packs are "
        << pack_bytes << " bytes and must not be rebuilt per replica";
}

TEST(EnginePool, ReplicasProduceBitwiseIdenticalOutputs)
{
    set_global_num_threads(1);
    Engine reference(models::tiny_cnn(), pinned_spatial_pack());
    const auto expected = reference.run(cnn_inputs(0xb17));

    EnginePoolOptions pool_options;
    pool_options.replicas = 4;
    EnginePool pool(models::tiny_cnn(), pinned_spatial_pack(),
                    pool_options);

    // Hold all four leases at once so each acquire lands on a distinct
    // replica, then run the same input everywhere.
    std::vector<EnginePool::Lease> leases;
    for (int i = 0; i < 4; ++i) {
        Status why;
        leases.push_back(pool.acquire(DeadlineToken::after_ms(5000),
                                      EnginePool::kNoReplica, &why));
        ASSERT_TRUE(leases.back().valid()) << why.to_string();
    }
    for (auto &lease : leases) {
        std::map<std::string, Tensor> outputs;
        const Status status =
            lease.engine().try_run(cnn_inputs(0xb17), outputs);
        ASSERT_TRUE(status.is_ok()) << status.to_string();
        ASSERT_EQ(outputs.size(), expected.size());
        for (const auto &[name, tensor] : expected)
            EXPECT_EQ(max_abs_diff(outputs.at(name), tensor), 0.0f)
                << "replica " << lease.replica_id() << " output " << name;
    }
    for (auto &lease : leases)
        pool.release(std::move(lease), Status::ok());
    EXPECT_EQ(pool.stats().acquires, 4);
}

// --- Quarantine, probing, readmission ---------------------------------------

TEST(EnginePool, QuarantineProbeReadmitsRecoveredReplica)
{
    set_global_num_threads(1);
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // Two kernel faults: the first request's fast kernel AND its
    // reference fallback both fail (exhausting the fallback chain into
    // kInternal); the readmission probe then runs clean.
    engine_options.fault_injector->arm("", "", /*fail_from_call=*/0,
                                       /*max_faults=*/2);

    EnginePoolOptions pool_options;
    pool_options.replicas = 1;
    pool_options.quarantine_threshold = 1.0;
    EnginePool pool(models::tiny_cnn(), engine_options, pool_options);

    Status why;
    EnginePool::Lease lease = pool.acquire(DeadlineToken::after_ms(5000),
                                           EnginePool::kNoReplica, &why);
    ASSERT_TRUE(lease.valid()) << why.to_string();
    std::map<std::string, Tensor> outputs;
    const Status failed =
        lease.engine().try_run(cnn_inputs(0x9a1), outputs);
    EXPECT_EQ(failed.code(), StatusCode::kInternal);
    pool.release(std::move(lease), failed);
    EXPECT_EQ(pool.stats().quarantines, 1);
    EXPECT_EQ(pool.stats().quarantined_replicas, 1u);

    // The only replica is quarantined: the next acquire must probe it
    // and, since the fault budget is exhausted, readmit it.
    lease = pool.acquire(DeadlineToken::after_ms(5000),
                         EnginePool::kNoReplica, &why);
    ASSERT_TRUE(lease.valid()) << why.to_string();
    const Status healed =
        lease.engine().try_run(cnn_inputs(0x9a1), outputs);
    EXPECT_TRUE(healed.is_ok()) << healed.to_string();
    pool.release(std::move(lease), healed);

    const EnginePoolStats stats = pool.stats();
    EXPECT_EQ(stats.probes, 1);
    EXPECT_EQ(stats.readmissions, 1);
    EXPECT_EQ(stats.quarantined_replicas, 0u);
    EXPECT_EQ(stats.active_replicas, 1u);
}

/**
 * Probe readmission racing concurrent acquire(): replicas fault in
 * bursts (quarantined at threshold 1.0, then the fault budget runs
 * dry, the readmission probe passes, and the replica is revived) while
 * several threads hammer acquire/run/release the whole time. The
 * nightly chaos soak loops this suite under TSan, so the test's job is
 * to put revive() and the acquire wait path on a collision course; the
 * assertions check the ledger still balances afterwards.
 */
TEST(EnginePool, ProbeReadmissionRacesConcurrentAcquires)
{
    set_global_num_threads(1);
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // A finite fault budget shared by both replicas: enough failures
    // to quarantine them repeatedly, then probes run clean and readmit.
    engine_options.fault_injector->arm("", "", /*fail_from_call=*/0,
                                       /*max_faults=*/12);

    EnginePoolOptions pool_options;
    pool_options.replicas = 2;
    pool_options.quarantine_threshold = 1.0;
    EnginePool pool(models::tiny_cnn(), engine_options, pool_options);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 24;
    std::atomic<std::int64_t> leased{0};
    std::atomic<std::int64_t> denied{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                Status why;
                EnginePool::Lease lease =
                    pool.acquire(DeadlineToken::after_ms(30000),
                                 EnginePool::kNoReplica, &why);
                if (!lease.valid()) {
                    // Both replicas down mid-burst: a typed rejection,
                    // never a hang or a torn lease.
                    EXPECT_FALSE(why.is_ok());
                    ++denied;
                    continue;
                }
                std::map<std::string, Tensor> outputs;
                const Status verdict = lease.engine().try_run(
                    cnn_inputs(0xace0 +
                               static_cast<std::uint64_t>(t * 100 + i)),
                    outputs);
                pool.release(std::move(lease), verdict);
                ++leased;
            }
        });
    for (std::thread &thread : threads)
        thread.join();

    const EnginePoolStats stats = pool.stats();
    EXPECT_EQ(leased.load() + denied.load(), kThreads * kPerThread);
    EXPECT_EQ(stats.acquires, leased.load());
    EXPECT_LE(stats.readmissions, stats.probes);
    for (const ReplicaSnapshot &replica : pool.snapshot()) {
        EXPECT_FALSE(replica.leased);
        EXPECT_FALSE(replica.draining);
    }
}

TEST(EnginePool, AllReplicasQuarantinedFailsFastNotHang)
{
    set_global_num_threads(1);
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // Every invocation faults, forever: probes can never pass.
    engine_options.fault_injector->arm("", "");

    EnginePoolOptions pool_options;
    pool_options.replicas = 2;
    pool_options.quarantine_threshold = 1.0;
    EnginePool pool(models::tiny_cnn(), engine_options, pool_options);

    for (int i = 0; i < 2; ++i) {
        Status why;
        EnginePool::Lease lease =
            pool.acquire(DeadlineToken::after_ms(5000),
                         EnginePool::kNoReplica, &why);
        ASSERT_TRUE(lease.valid()) << why.to_string();
        std::map<std::string, Tensor> outputs;
        const Status failed =
            lease.engine().try_run(cnn_inputs(0x9a2), outputs);
        EXPECT_EQ(failed.code(), StatusCode::kInternal);
        pool.release(std::move(lease), failed);
    }
    EXPECT_EQ(pool.stats().quarantined_replicas, 2u);

    // Both replicas are out and the probe keeps failing: acquire must
    // return kResourceExhausted promptly instead of blocking.
    const auto started = std::chrono::steady_clock::now();
    Status why;
    EnginePool::Lease lease = pool.acquire(DeadlineToken::after_ms(30000),
                                           EnginePool::kNoReplica, &why);
    const double waited_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - started)
            .count();
    EXPECT_FALSE(lease.valid());
    EXPECT_EQ(why.code(), StatusCode::kResourceExhausted);
    EXPECT_LT(waited_ms, 10000.0) << "acquire must fail fast, not hang";
    EXPECT_GE(pool.stats().probe_failures, 1);
}

TEST(EnginePool, WarmSparePromotedWhenReplicaQuarantined)
{
    set_global_num_threads(1);
    EnginePoolOptions pool_options;
    pool_options.replicas = 1;
    pool_options.warm_spares = 1;
    pool_options.quarantine_threshold = 1.0;
    EnginePool pool(models::tiny_cnn(), {}, pool_options);
    EXPECT_EQ(pool.stats().spare_replicas, 1u);

    Status why;
    EnginePool::Lease lease = pool.acquire(DeadlineToken::after_ms(5000),
                                           EnginePool::kNoReplica, &why);
    ASSERT_TRUE(lease.valid()) << why.to_string();
    EXPECT_EQ(lease.replica_id(), 0u);
    pool.release(std::move(lease),
                 internal_error("synthetic kernel fault"));

    const EnginePoolStats stats = pool.stats();
    EXPECT_EQ(stats.quarantines, 1);
    EXPECT_EQ(stats.spare_promotions, 1);
    EXPECT_EQ(stats.active_replicas, 1u);
    EXPECT_EQ(stats.spare_replicas, 0u);

    // The next lease lands on the promoted spare, not the sick replica.
    lease = pool.acquire(DeadlineToken::after_ms(5000),
                         EnginePool::kNoReplica, &why);
    ASSERT_TRUE(lease.valid()) << why.to_string();
    EXPECT_EQ(lease.replica_id(), 1u);
    pool.release(std::move(lease), Status::ok());
}

// --- Service-level failover, retry budget, backoff --------------------------

TEST(ServiceRetry, FailsOverToDifferentReplicaOnCorruption)
{
    set_global_num_threads(1);
    // Replica 0 corrupts every output; replica 1 is clean. The guard
    // turns the corruption into kDataCorruption, and the retry must
    // land on replica 1 and succeed.
    auto sick = std::make_shared<FaultInjector>();
    sick->arm_corruption("", "", CorruptionKind::kNaNPoke);

    EngineOptions engine_options;
    engine_options.guard.enabled = true;

    ServiceOptions options;
    options.workers = 1;
    options.replicas = 2;
    options.enable_watchdog = false;
    options.max_retries = 2;
    options.per_replica_injectors = {sick, nullptr};

    InferenceService service(models::tiny_cnn(), engine_options, options);
    const InferenceResponse response = service.run(cnn_inputs(0xfa11));

    ASSERT_TRUE(response.status.is_ok()) << response.status.to_string();
    EXPECT_EQ(response.retries, 1);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed_ok, 1);
    EXPECT_EQ(stats.retries, 1);
    EXPECT_EQ(stats.data_corruption, 0)
        << "the corrupted attempt must not surface to the caller";
}

TEST(ServiceRetry, RetryStormCappedByBudget)
{
    set_global_num_threads(1);
    // Every attempt on the only replica corrupts: each request wants
    // max_retries retries, and the token bucket must refuse most of
    // them (initial burst 3 tokens + 0.2 earned per request).
    auto sick = std::make_shared<FaultInjector>();
    sick->arm_corruption("", "", CorruptionKind::kNaNPoke);

    EngineOptions engine_options;
    engine_options.guard.enabled = true;
    // Keep the breaker closed: once it opens, execution routes to the
    // reference kernel and the injected corruption no longer applies,
    // which would end the retry storm this test is about.
    engine_options.guard.open_after_trips = 1 << 30;
    engine_options.fault_injector = sick;

    ServiceOptions options;
    options.workers = 1;
    options.replicas = 1;
    options.enable_watchdog = false;
    options.max_retries = 2;
    options.retry_budget = 0.2;
    options.quarantine_threshold = 1e9; // Isolate the budget behaviour.

    InferenceService service(models::tiny_cnn(), engine_options, options);
    const int kRequests = 10;
    for (int i = 0; i < kRequests; ++i) {
        const InferenceResponse response = service.run(cnn_inputs(0x1000 + i));
        EXPECT_EQ(response.status.code(), StatusCode::kDataCorruption);
    }

    const ServiceStats stats = service.stats();
    // Supply: 3 initial tokens + 0.2 earned per dispatched request —
    // far below the 20 retries the requests would otherwise attempt.
    EXPECT_LE(stats.retries, 6);
    EXPECT_GE(stats.retry_budget_denied, 5);
    EXPECT_EQ(stats.data_corruption, kRequests);
}

TEST(ServiceRetry, DeadlineExpiresDuringBackoff)
{
    set_global_num_threads(1);
    auto sick = std::make_shared<FaultInjector>();
    sick->arm_corruption("", "", CorruptionKind::kNaNPoke);

    EngineOptions engine_options;
    engine_options.guard.enabled = true;
    engine_options.fault_injector = sick;

    ServiceOptions options;
    options.workers = 1;
    options.replicas = 1;
    options.enable_watchdog = false;
    options.max_retries = 3;
    // Backoff floor (500 ms * 0.5 jitter = 250 ms) far beyond the
    // remaining deadline, so the backoff sleep must be what expires.
    options.retry_backoff_ms = 500;
    options.retry_backoff_max_ms = 500;
    options.quarantine_threshold = 1e9;

    InferenceService service(models::tiny_cnn(), engine_options, options);
    const InferenceResponse response =
        service.run(cnn_inputs(0xdead), DeadlineToken::after_ms(150));

    EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(response.status.message().find("backoff"),
              std::string::npos)
        << response.status.to_string();
    EXPECT_EQ(service.stats().deadline_exceeded, 1);
}

// --- Brownout ---------------------------------------------------------------

TEST(ServiceBrownout, ShedsBatchPriorityWorkUnderOverload)
{
    set_global_num_threads(1);
    EngineOptions engine_options;
    engine_options.fault_injector = std::make_shared<FaultInjector>();
    // Stall the first dispatched request so the queue fills behind it.
    engine_options.fault_injector->arm_delay("", "", /*delay_ms=*/400,
                                             /*delay_from_call=*/0,
                                             /*max_delays=*/1);

    ServiceOptions options;
    options.workers = 1;
    options.replicas = 1;
    options.max_queue_depth = 4;
    options.enable_watchdog = false;
    options.enable_brownout = true;
    // Enter at 3 queued requests, exit at 1.
    options.brownout_high_watermark = 3;
    options.brownout_low_watermark = 1;

    InferenceService service(models::tiny_cnn(), engine_options, options);

    auto in_flight = service.submit(cnn_inputs(0xb0));
    wait_for_empty_queue(service); // The worker is now inside the delay.
    std::vector<std::future<InferenceResponse>> batch;
    for (int i = 0; i < 4; ++i)
        batch.push_back(service.submit(cnn_inputs(0xb1 + i), {}, 0,
                                       RequestPriority::kBatch));
    EXPECT_TRUE(service.browned_out());

    EXPECT_TRUE(in_flight.get().status.is_ok());
    int shed = 0;
    for (auto &future : batch) {
        const InferenceResponse response = future.get();
        if (response.status.code() == StatusCode::kResourceExhausted) {
            ++shed;
            EXPECT_NE(response.status.message().find("brownout"),
                      std::string::npos);
        }
    }
    EXPECT_GE(shed, 2);

    const ServiceStats stats = service.stats();
    EXPECT_GE(stats.brownout_entered, 1);
    EXPECT_EQ(stats.brownout_shed, shed);
    EXPECT_GE(stats.brownout_exited, 1)
        << "draining the queue below the low watermark must restore "
           "full fidelity";
    EXPECT_FALSE(service.browned_out());
}

// --- Latency histogram ------------------------------------------------------

TEST(LatencyHistogram, PercentilesTrackRecordedSamples)
{
    LatencyHistogram histogram;
    for (int i = 0; i < 99; ++i)
        histogram.record(1.0);
    histogram.record(1000.0);

    EXPECT_EQ(histogram.count(), 100);
    const double p50 = histogram.percentile(0.50);
    const double p999 = histogram.percentile(0.999);
    // Geometric buckets: bounds are within one 1.3x ratio of the truth.
    EXPECT_GE(p50, 1.0 / 1.3);
    EXPECT_LE(p50, 1.0 * 1.3);
    EXPECT_GE(p999, 1000.0 / 1.3);
    EXPECT_LE(p999, 1000.0 * 1.3);
    EXPECT_LE(histogram.percentile(0.50), histogram.percentile(0.99));
}

TEST(LatencyHistogram, OutlierPercentileClampsToRecordedMax)
{
    // One 10 s hang among fast requests: the tail percentile must
    // report the recorded maximum, not the outlier bucket's geometric
    // upper bound (which over-reports by up to the bucket ratio).
    LatencyHistogram histogram;
    for (int i = 0; i < 99; ++i)
        histogram.record(1.0);
    histogram.record(10000.0);
    EXPECT_DOUBLE_EQ(histogram.percentile(0.999), 10000.0);
    EXPECT_DOUBLE_EQ(histogram.max_ms(), 10000.0);

    // A sample beyond the geometric range lands in the unbounded top
    // bucket, which used to report that bucket's lower bound and
    // silently cap the tail; it must report the recorded max.
    LatencyHistogram extreme;
    extreme.record(1.0e7);
    EXPECT_DOUBLE_EQ(extreme.percentile(0.999), 1.0e7);

    // merge() carries the max across histograms; reset() clears it.
    histogram.merge(extreme);
    EXPECT_DOUBLE_EQ(histogram.max_ms(), 1.0e7);
    histogram.reset();
    EXPECT_DOUBLE_EQ(histogram.max_ms(), 0.0);
    EXPECT_EQ(histogram.count(), 0);
}

TEST(ServiceStatsLatency, PercentilesPopulatedAfterTraffic)
{
    set_global_num_threads(1);
    ServiceOptions options;
    options.workers = 1;
    options.enable_watchdog = false;
    InferenceService service(models::tiny_cnn(), {}, options);
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(service.run(cnn_inputs(0xce + i)).status.is_ok());

    const ServiceStats stats = service.stats();
    EXPECT_GT(stats.latency_p50_ms, 0.0);
    EXPECT_GE(stats.latency_p99_ms, stats.latency_p50_ms);
    EXPECT_GE(stats.latency_p999_ms, stats.latency_p99_ms);
}

} // namespace
} // namespace orpheus
