/**
 * @file
 * Shared helpers for the Orpheus test suite.
 */
#pragma once

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "core/tensor.hpp"

namespace orpheus::testing {

/** Deterministic random fp32 tensor. */
inline Tensor
make_random(Shape shape, std::uint64_t seed = 0x7e57, float lo = -1.0f,
            float hi = 1.0f)
{
    Rng rng(seed);
    return random_tensor(std::move(shape), rng, lo, hi);
}

/** EXPECT that two fp32 tensors agree within tolerance, with context. */
inline void
expect_close(const Tensor &actual, const Tensor &expected, float atol = 1e-4f,
             float rtol = 1e-3f)
{
    ASSERT_EQ(actual.shape(), expected.shape())
        << "shape mismatch: " << actual.shape() << " vs "
        << expected.shape();
    EXPECT_TRUE(all_close(actual, expected, atol, rtol))
        << "max |diff| = " << max_abs_diff(actual, expected);
}

} // namespace orpheus::testing
