/** @file Tests for the C ABI (the binding surface). */
#include "capi/orpheus_c.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "capi/status_map.hpp"
#include "core/rng.hpp"
#include "models/model_zoo.hpp"
#include "onnx/exporter.hpp"

namespace {

TEST(CApi, VersionAndInitialError)
{
    EXPECT_NE(std::string(orpheus_version()).find("orpheus"),
              std::string::npos);
}

TEST(CApi, SetNumThreadsValidates)
{
    EXPECT_EQ(orpheus_set_num_threads(1), ORPHEUS_OK);
    EXPECT_EQ(orpheus_set_num_threads(0), ORPHEUS_ERR_INVALID_ARGUMENT);
    EXPECT_NE(std::string(orpheus_last_error()).size(), 0u);
}

TEST(CApi, ZooEngineLifecycle)
{
    orpheus_engine *engine = orpheus_engine_create_zoo("tiny-cnn", nullptr);
    ASSERT_NE(engine, nullptr) << orpheus_last_error();
    EXPECT_EQ(orpheus_engine_input_count(engine), 1);
    EXPECT_EQ(orpheus_engine_output_count(engine), 1);
    EXPECT_GT(orpheus_engine_step_count(engine), 0);
    orpheus_engine_destroy(engine);
}

TEST(CApi, UnknownModelReturnsNullWithMessage)
{
    orpheus_engine *engine = orpheus_engine_create_zoo("vgg-999", nullptr);
    EXPECT_EQ(engine, nullptr);
    EXPECT_NE(std::string(orpheus_last_error()).find("vgg-999"),
              std::string::npos);
    EXPECT_EQ(orpheus_engine_create_zoo(nullptr, nullptr), nullptr);
}

TEST(CApi, ShapeQueries)
{
    orpheus_engine *engine = orpheus_engine_create_zoo("tiny-cnn", nullptr);
    ASSERT_NE(engine, nullptr);

    int64_t dims[8];
    int rank = 8;
    ASSERT_EQ(orpheus_engine_input_shape(engine, 0, dims, &rank),
              ORPHEUS_OK);
    EXPECT_EQ(rank, 4);
    EXPECT_EQ(dims[0], 1);
    EXPECT_EQ(dims[1], 3);
    EXPECT_EQ(dims[2], 8);
    EXPECT_EQ(dims[3], 8);

    rank = 8;
    ASSERT_EQ(orpheus_engine_output_shape(engine, 0, dims, &rank),
              ORPHEUS_OK);
    EXPECT_EQ(rank, 2);
    EXPECT_EQ(dims[1], 10);

    rank = 1; // Too small.
    EXPECT_EQ(orpheus_engine_input_shape(engine, 0, dims, &rank),
              ORPHEUS_ERR_BUFFER_TOO_SMALL);
    EXPECT_EQ(rank, 4) << "required rank must be reported";

    rank = 8;
    EXPECT_EQ(orpheus_engine_input_shape(engine, 5, dims, &rank),
              ORPHEUS_ERR_NOT_FOUND);

    orpheus_engine_destroy(engine);
}

TEST(CApi, RunProducesDistribution)
{
    orpheus_engine *engine = orpheus_engine_create_zoo("tiny-cnn", nullptr);
    ASSERT_NE(engine, nullptr);

    std::vector<float> input(3 * 8 * 8);
    orpheus::Rng rng(0xca11);
    for (float &value : input)
        value = rng.uniform(-1.0f, 1.0f);
    std::vector<float> output(10, -1.0f);

    ASSERT_EQ(orpheus_engine_run(engine, input.data(), input.size(),
                                 output.data(), output.size()),
              ORPHEUS_OK)
        << orpheus_last_error();
    double sum = 0.0;
    for (float value : output) {
        EXPECT_GE(value, 0.0f);
        sum += value;
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);

    // Size validation.
    EXPECT_EQ(orpheus_engine_run(engine, input.data(), 5, output.data(),
                                 output.size()),
              ORPHEUS_ERR_INVALID_ARGUMENT);
    EXPECT_EQ(orpheus_engine_run(engine, input.data(), input.size(),
                                 output.data(), 3),
              ORPHEUS_ERR_BUFFER_TOO_SMALL);
    EXPECT_EQ(orpheus_engine_run(nullptr, input.data(), input.size(),
                                 output.data(), output.size()),
              ORPHEUS_ERR_INVALID_ARGUMENT);

    orpheus_engine_destroy(engine);
}

TEST(CApi, ProfileCsvAfterRuns)
{
    orpheus_engine *engine = orpheus_engine_create_zoo("tiny-mlp", nullptr);
    ASSERT_NE(engine, nullptr);

    std::vector<float> input(32, 0.5f);
    std::vector<float> output(10);
    ASSERT_EQ(orpheus_engine_run(engine, input.data(), input.size(),
                                 output.data(), output.size()),
              ORPHEUS_OK);

    char buffer[4096];
    const int length =
        orpheus_engine_profile_csv(engine, buffer, sizeof(buffer));
    EXPECT_GT(length, 0);
    EXPECT_NE(std::string(buffer).find("node,op,impl"), std::string::npos);

    // Truncation behaves like snprintf.
    char tiny[8];
    const int full_length = orpheus_engine_profile_csv(engine, tiny, 8);
    EXPECT_EQ(full_length, length);
    EXPECT_EQ(std::strlen(tiny), 7u);

    orpheus_engine_destroy(engine);
}

TEST(CApi, PersonalitySelection)
{
    orpheus_engine *engine =
        orpheus_engine_create_zoo("tiny-cnn", "pytorch");
    ASSERT_NE(engine, nullptr) << orpheus_last_error();
    orpheus_engine_destroy(engine);

    EXPECT_EQ(orpheus_engine_create_zoo("tiny-cnn", "unknown-framework"),
              nullptr);
}

TEST(CApi, ErrorCodesAreStableAbiValues)
{
    // These values are published ABI: bindings hard-code them, so they
    // must never change meaning.
    EXPECT_EQ(ORPHEUS_OK, 0);
    EXPECT_EQ(ORPHEUS_ERR_INVALID_ARGUMENT, -1);
    EXPECT_EQ(ORPHEUS_ERR_NOT_FOUND, -2);
    EXPECT_EQ(ORPHEUS_ERR_RUNTIME, -3);
    EXPECT_EQ(ORPHEUS_ERR_BUFFER_TOO_SMALL, -4);
    EXPECT_EQ(ORPHEUS_ERR_DEADLINE_EXCEEDED, -5);
    EXPECT_EQ(ORPHEUS_ERR_RESOURCE_EXHAUSTED, -6);
    EXPECT_EQ(ORPHEUS_ERR_DATA_CORRUPTION, -7);
    EXPECT_EQ(ORPHEUS_ERR_UNIMPLEMENTED, -8);
    EXPECT_EQ(ORPHEUS_ERR_OUT_OF_RANGE, -9);
    EXPECT_EQ(ORPHEUS_ERR_FAILED_PRECONDITION, -10);
    EXPECT_EQ(ORPHEUS_ERR_PARSE, -11);
    EXPECT_EQ(ORPHEUS_ERR_MODEL_REJECTED, -12);
}

TEST(CApi, StatusCodesRoundTripThroughCCodes)
{
    using orpheus::StatusCode;
    // The mapping table itself is the exhaustiveness witness: its size
    // is pinned to the enumerator count by a static_assert in
    // status_map.hpp, so iterating it covers every StatusCode.
    for (const orpheus::capi::StatusCodeMapping &entry :
         orpheus::capi::kStatusCodeTable) {
        const int c_code = orpheus::capi::to_c_code(entry.status);
        EXPECT_EQ(c_code, entry.c_code);
        EXPECT_EQ(orpheus::capi::from_c_code(c_code), entry.status)
            << "C code " << c_code;
        if (entry.status != StatusCode::kOk)
            EXPECT_LT(c_code, 0);
    }
    EXPECT_EQ(orpheus::capi::to_c_code(StatusCode::kDataCorruption),
              ORPHEUS_ERR_DATA_CORRUPTION);
    EXPECT_EQ(orpheus::capi::to_c_code(StatusCode::kModelRejected),
              ORPHEUS_ERR_MODEL_REJECTED);
    // Unknown C codes degrade to kInternal rather than UB.
    EXPECT_EQ(orpheus::capi::from_c_code(-999),
              orpheus::StatusCode::kInternal);
}

TEST(CApi, EveryStatusCodeHasAnErrorName)
{
    // Every StatusCode — kModelRejected (−12) included — must
    // round-trip through orpheus_error_name with a real name: a
    // newly-added code that falls back to "Unknown" means the C ABI
    // table fell out of sync with the StatusCode enum.
    for (const orpheus::capi::StatusCodeMapping &entry :
         orpheus::capi::kStatusCodeTable) {
        const char *name = orpheus_error_name(entry.c_code);
        EXPECT_STRNE(name, "Unknown")
            << "C code " << entry.c_code << " has no name";
        EXPECT_STREQ(name, orpheus::to_string(entry.status))
            << "C code " << entry.c_code;
    }
}

TEST(CApi, ErrorNamesMatchStatusCodes)
{
    EXPECT_STREQ(orpheus_error_name(ORPHEUS_OK), "OK");
    EXPECT_STREQ(orpheus_error_name(ORPHEUS_ERR_DATA_CORRUPTION),
                 "DataCorruption");
    EXPECT_STREQ(orpheus_error_name(ORPHEUS_ERR_DEADLINE_EXCEEDED),
                 "DeadlineExceeded");
    EXPECT_STREQ(orpheus_error_name(ORPHEUS_ERR_RESOURCE_EXHAUSTED),
                 "ResourceExhausted");
    EXPECT_STREQ(orpheus_error_name(ORPHEUS_ERR_MODEL_REJECTED),
                 "ModelRejected");
    EXPECT_STREQ(orpheus_error_name(ORPHEUS_ERR_BUFFER_TOO_SMALL),
                 "BufferTooSmall");
    EXPECT_STREQ(orpheus_error_name(-999), "Unknown");
}

TEST(CApi, SetGuardValidatesAndRunsClean)
{
    orpheus_engine *engine = orpheus_engine_create_zoo("tiny-mlp", nullptr);
    ASSERT_NE(engine, nullptr);

    EXPECT_EQ(orpheus_engine_set_guard(nullptr, 1, 0),
              ORPHEUS_ERR_INVALID_ARGUMENT);
    EXPECT_EQ(orpheus_engine_set_guard(engine, 1, -2),
              ORPHEUS_ERR_INVALID_ARGUMENT);
    ASSERT_EQ(orpheus_engine_set_guard(engine, 1, 1), ORPHEUS_OK);

    // A healthy model runs guarded without tripping anything.
    std::vector<float> input(32, 0.5f);
    std::vector<float> output(10);
    EXPECT_EQ(orpheus_engine_run(engine, input.data(), input.size(),
                                 output.data(), output.size()),
              ORPHEUS_OK)
        << orpheus_last_error();

    ASSERT_EQ(orpheus_engine_set_guard(engine, 0, 0), ORPHEUS_OK);
    orpheus_engine_destroy(engine);
}

TEST(CApi, CreateFromOnnxFile)
{
    const std::string path = ::testing::TempDir() + "/capi_model.onnx";
    ASSERT_TRUE(
        orpheus::export_onnx_file(orpheus::models::tiny_mlp(), path)
            .is_ok());

    orpheus_engine *engine =
        orpheus_engine_create_from_file(path.c_str(), nullptr);
    ASSERT_NE(engine, nullptr) << orpheus_last_error();
    EXPECT_EQ(orpheus_engine_input_count(engine), 1);
    orpheus_engine_destroy(engine);

    EXPECT_EQ(orpheus_engine_create_from_file("/no/such/file.onnx",
                                              nullptr),
              nullptr);
    std::remove(path.c_str());
}

TEST(CApi, ServiceLifecycleRunAndStats)
{
    orpheus_service_config config{};
    config.workers = 1;
    config.replicas = 2;
    config.max_retries = 1;
    orpheus_service *service =
        orpheus_service_create_zoo("tiny-cnn", nullptr, &config);
    ASSERT_NE(service, nullptr) << orpheus_last_error();
    EXPECT_EQ(orpheus_service_replica_count(service), 2);

    std::vector<float> input(3 * 8 * 8);
    orpheus::Rng rng(0x5eca);
    for (float &value : input)
        value = rng.uniform(-1.0f, 1.0f);
    std::vector<float> output(10, -1.0f);
    int retries = -1;
    ASSERT_EQ(orpheus_service_run(service, input.data(), input.size(),
                                  output.data(), output.size(),
                                  ORPHEUS_PRIORITY_INTERACTIVE,
                                  /*deadline_ms=*/0, &retries),
              ORPHEUS_OK)
        << orpheus_last_error();
    EXPECT_EQ(retries, 0);
    double sum = 0.0;
    for (float value : output)
        sum += value;
    EXPECT_NEAR(sum, 1.0, 1e-3); // Softmax head.

    // A real-time request routes through its own lane and histogram.
    ASSERT_EQ(orpheus_service_run(service, input.data(), input.size(),
                                  output.data(), output.size(),
                                  ORPHEUS_PRIORITY_REALTIME,
                                  /*deadline_ms=*/0, &retries),
              ORPHEUS_OK)
        << orpheus_last_error();

    orpheus_service_stats stats{};
    ASSERT_EQ(orpheus_service_query_stats(service, &stats), ORPHEUS_OK);
    EXPECT_EQ(stats.submitted, 2);
    EXPECT_EQ(stats.completed_ok, 2);
    EXPECT_GT(stats.latency_p50_ms, 0.0);
    EXPECT_EQ(stats.class_count[ORPHEUS_PRIORITY_REALTIME], 1);
    EXPECT_EQ(stats.class_count[ORPHEUS_PRIORITY_INTERACTIVE], 1);
    EXPECT_EQ(stats.class_count[ORPHEUS_PRIORITY_BATCH], 0);
    EXPECT_GT(stats.class_p50_ms[ORPHEUS_PRIORITY_REALTIME], 0.0);
    EXPECT_EQ(stats.rejected_infeasible, 0);

    // Buffer and argument validation mirror orpheus_engine_run.
    EXPECT_EQ(orpheus_service_run(service, input.data(), 5,
                                  output.data(), output.size(),
                                  ORPHEUS_PRIORITY_INTERACTIVE, 0,
                                  nullptr),
              ORPHEUS_ERR_INVALID_ARGUMENT);
    EXPECT_EQ(orpheus_service_run(nullptr, input.data(), input.size(),
                                  output.data(), output.size(),
                                  ORPHEUS_PRIORITY_INTERACTIVE, 0,
                                  nullptr),
              ORPHEUS_ERR_INVALID_ARGUMENT);
    EXPECT_EQ(orpheus_service_run(service, input.data(), input.size(),
                                  output.data(), output.size(),
                                  /*priority=*/99, 0, nullptr),
              ORPHEUS_ERR_INVALID_ARGUMENT);

    orpheus_service_destroy(service);
    orpheus_service_destroy(nullptr); // Must be a safe no-op.
    EXPECT_EQ(orpheus_service_create_zoo(nullptr, nullptr, &config),
              nullptr);
}

TEST(CApi, ServiceReloadAndShutdown)
{
    orpheus_service_config config{};
    config.workers = 1;
    config.replicas = 2;
    orpheus_service *service =
        orpheus_service_create_zoo("tiny-cnn", nullptr, &config);
    ASSERT_NE(service, nullptr) << orpheus_last_error();

    // A model with a different signature is rejected through the
    // canary lifecycle; the incumbent keeps serving.
    EXPECT_EQ(orpheus_service_reload_zoo(service, "tiny-mlp", nullptr,
                                         /*canary_fraction=*/0,
                                         /*min_canary_samples=*/0),
              ORPHEUS_ERR_MODEL_REJECTED);
    orpheus_service_stats stats{};
    ASSERT_EQ(orpheus_service_query_stats(service, &stats), ORPHEUS_OK);
    EXPECT_EQ(stats.active_generation, 1u);
    EXPECT_EQ(stats.model_rollbacks, 1);

    std::vector<float> input(3 * 8 * 8, 0.25f);
    std::vector<float> output(10, -1.0f);
    ASSERT_EQ(orpheus_service_run(service, input.data(), input.size(),
                                  output.data(), output.size(),
                                  ORPHEUS_PRIORITY_INTERACTIVE, 0,
                                  nullptr),
              ORPHEUS_OK)
        << orpheus_last_error();

    // Reloading onto a signature-compatible model promotes it.
    ASSERT_EQ(orpheus_service_reload_zoo(service, "tiny-cnn", nullptr, 0,
                                         0),
              ORPHEUS_OK)
        << orpheus_last_error();
    ASSERT_EQ(orpheus_service_query_stats(service, &stats), ORPHEUS_OK);
    // The rejected generation consumed id 2; the promoted one is 3.
    EXPECT_EQ(stats.active_generation, 3u);
    EXPECT_GE(stats.model_swaps, 2);

    EXPECT_EQ(orpheus_service_shutdown(service, /*deadline_ms=*/0),
              ORPHEUS_OK);
    // After shutdown the service rejects work but stays queryable.
    EXPECT_NE(orpheus_service_run(service, input.data(), input.size(),
                                  output.data(), output.size(),
                                  ORPHEUS_PRIORITY_INTERACTIVE, 0,
                                  nullptr),
              ORPHEUS_OK);
    EXPECT_EQ(orpheus_service_shutdown(nullptr, 0),
              ORPHEUS_ERR_INVALID_ARGUMENT);
    orpheus_service_destroy(service);
}

} // namespace
