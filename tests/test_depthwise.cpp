/** @file Correctness tests for the specialised depthwise conv kernel. */
#include "ops/conv/conv.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::expect_close;
using testing::make_random;

struct DepthwiseCase {
    std::string label;
    std::int64_t batch, channels, hw, multiplier, kernel, stride, pad;
};

class DepthwiseVsDirect : public ::testing::TestWithParam<DepthwiseCase>
{
};

TEST_P(DepthwiseVsDirect, Matches)
{
    const DepthwiseCase &c = GetParam();
    Conv2dParams p;
    p.kernel_h = p.kernel_w = c.kernel;
    p.stride_h = p.stride_w = c.stride;
    p.pad_top = p.pad_left = p.pad_bottom = p.pad_right = c.pad;
    p.group = c.channels;

    const std::int64_t out_c = c.channels * c.multiplier;
    Tensor input = make_random(Shape({c.batch, c.channels, c.hw, c.hw}),
                               0xd0);
    Tensor weight =
        make_random(Shape({out_c, 1, c.kernel, c.kernel}), 0xd1);
    Tensor bias = make_random(Shape({out_c}), 0xd2);

    const Shape out_shape(
        {c.batch, out_c, p.out_h(c.hw), p.out_w(c.hw)});
    Tensor expected(out_shape), actual(out_shape);
    conv2d(ConvAlgo::kDirect, input, weight, &bias, p,
           ActivationSpec::relu(), expected);
    conv2d(ConvAlgo::kDepthwiseDirect, input, weight, &bias, p,
           ActivationSpec::relu(), actual);
    expect_close(actual, expected, 1e-4f, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DepthwiseVsDirect,
    ::testing::Values(
        DepthwiseCase{"mobilenet_s1", 1, 16, 14, 1, 3, 1, 1},
        DepthwiseCase{"mobilenet_s2", 1, 16, 14, 1, 3, 2, 1},
        DepthwiseCase{"multiplier2", 1, 8, 10, 2, 3, 1, 1},
        DepthwiseCase{"kernel5", 1, 6, 12, 1, 5, 1, 2},
        DepthwiseCase{"batch2", 2, 4, 9, 1, 3, 2, 1},
        DepthwiseCase{"wide", 1, 32, 7, 1, 3, 1, 1}),
    [](const ::testing::TestParamInfo<DepthwiseCase> &info) {
        return info.param.label;
    });

TEST(Depthwise, GroupedGemmPathAlsoCorrect)
{
    // The PyTorch personality lowers depthwise through im2col+GEMM with
    // group = C; it must be slow, not wrong.
    Conv2dParams p;
    p.kernel_h = p.kernel_w = 3;
    p.pad_top = p.pad_left = p.pad_bottom = p.pad_right = 1;
    p.group = 12;

    Tensor input = make_random(Shape({1, 12, 10, 10}), 0xd3);
    Tensor weight = make_random(Shape({12, 1, 3, 3}), 0xd4);
    Tensor expected(Shape({1, 12, 10, 10})), actual(Shape({1, 12, 10, 10}));
    conv2d(ConvAlgo::kDepthwiseDirect, input, weight, nullptr, p,
           ActivationSpec::none(), expected);
    conv2d(ConvAlgo::kIm2colGemm, input, weight, nullptr, p,
           ActivationSpec::none(), actual);
    expect_close(actual, expected, 1e-4f, 1e-3f);
}

TEST(Depthwise, PredicateRejectsNonDepthwise)
{
    Conv2dArgs args;
    args.in_c = 8;
    args.out_c = 8;
    args.params.group = 4; // grouped but not depthwise
    EXPECT_FALSE(conv2d_is_depthwise(args));
    args.params.group = 8;
    EXPECT_TRUE(conv2d_is_depthwise(args));
    args.out_c = 12; // not a multiple
    EXPECT_FALSE(conv2d_is_depthwise(args));
}

} // namespace
} // namespace orpheus
