/** @file Round-trip and error tests for the .orpht text model format. */
#include "graph/text_format.hpp"

#include <gtest/gtest.h>

#include "models/model_zoo.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace orpheus {
namespace {

using testing::make_random;

Graph
round_trip(const Graph &graph)
{
    const std::string text = to_text(graph);
    Graph imported;
    const Status status = from_text(text, imported);
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    return imported;
}

TEST(TextFormat, HeaderAndStructure)
{
    const std::string text = to_text(models::tiny_mlp());
    EXPECT_EQ(text.rfind("orpheus-text 1", 0), 0u)
        << "file must start with the magic header";
    EXPECT_NE(text.find("graph tiny-mlp"), std::string::npos);
    EXPECT_NE(text.find("node "), std::string::npos);
    EXPECT_NE(text.find("attr_int transB 1"), std::string::npos);
}

TEST(TextFormat, StructuralRoundTrip)
{
    const Graph original = models::tiny_cnn();
    const Graph imported = round_trip(original);
    EXPECT_EQ(imported.name(), original.name());
    EXPECT_EQ(imported.nodes().size(), original.nodes().size());
    EXPECT_EQ(imported.initializers().size(),
              original.initializers().size());
    EXPECT_EQ(imported.inputs().size(), original.inputs().size());
    EXPECT_EQ(imported.outputs().size(), original.outputs().size());
    EXPECT_NO_THROW(imported.validate());
}

TEST(TextFormat, WeightsAreBitExact)
{
    const Graph original = models::tiny_mlp();
    const Graph imported = round_trip(original);
    for (const auto &[name, tensor] : original.initializers()) {
        ASSERT_TRUE(imported.has_initializer(name)) << name;
        const Tensor &restored = imported.initializer(name);
        ASSERT_EQ(restored.byte_size(), tensor.byte_size());
        EXPECT_EQ(std::memcmp(restored.raw_data(), tensor.raw_data(),
                              tensor.byte_size()),
                  0)
            << name;
    }
}

TEST(TextFormat, InferenceIdenticalAfterRoundTrip)
{
    Graph original = models::tiny_cnn();
    Graph imported = round_trip(original);
    Engine engine_a(std::move(original));
    Engine engine_b(std::move(imported));
    Tensor input = make_random(Shape({1, 3, 8, 8}), 0x7f0);
    EXPECT_EQ(max_abs_diff(engine_a.run(input), engine_b.run(input)),
              0.0f);
}

TEST(TextFormat, AllAttributeKindsSurvive)
{
    Graph graph("attrs");
    graph.add_input("x", Shape({1, 4}));
    AttributeMap attrs;
    attrs.set("an_int", std::int64_t{-7});
    attrs.set("a_float", 0.1f); // Not exactly representable in decimal.
    attrs.set("a_string", "hello world with spaces");
    attrs.set("some_ints", std::vector<std::int64_t>{1, -2, 3});
    attrs.set("some_floats", std::vector<float>{0.5f, -0.25f, 1e-20f});
    attrs.set("a_tensor", Tensor::from_values(Shape({2}), {8.5f, -9.25f}));
    graph.add_node(op_names::kIdentity, {"x"}, {"y"}, std::move(attrs));
    graph.add_output("y");

    const Graph imported = round_trip(graph);
    const Node &node = imported.nodes().front();
    EXPECT_EQ(node.attrs().get_int("an_int", 0), -7);
    EXPECT_EQ(node.attrs().get_float("a_float", 0), 0.1f)
        << "max_digits10 decimal round trip must be exact";
    EXPECT_EQ(node.attrs().get_string("a_string", ""),
              "hello world with spaces");
    EXPECT_EQ(node.attrs().get_ints("some_ints", {}),
              (std::vector<std::int64_t>{1, -2, 3}));
    EXPECT_EQ(node.attrs().get_floats("some_floats", {}),
              (std::vector<float>{0.5f, -0.25f, 1e-20f}));
    EXPECT_EQ(node.attrs().at("a_tensor").as_tensor().data<float>()[1],
              -9.25f);
}

TEST(TextFormat, OptionalInputPlaceholder)
{
    Graph graph("optional");
    graph.add_input("x", Shape({1, 1, 4, 4}));
    graph.add_initializer("w", Tensor(Shape({1, 1, 3, 3})));
    AttributeMap attrs;
    attrs.set("kernel_shape", std::vector<std::int64_t>{3, 3});
    attrs.set("pads", std::vector<std::int64_t>{1, 1, 1, 1});
    graph.add_node(op_names::kConv, {"x", "w", ""}, {"y"},
                   std::move(attrs));
    graph.add_output("y");

    const std::string text = to_text(graph);
    EXPECT_NE(text.find(" _"), std::string::npos)
        << "empty optional input must serialise as _";
    const Graph imported = round_trip(graph);
    EXPECT_FALSE(imported.nodes().front().has_input(2));
}

TEST(TextFormat, CommentsAndBlankLinesIgnored)
{
    std::string text = to_text(models::tiny_mlp());
    text.insert(text.find('\n') + 1,
                "# a comment\n\n# another comment\r\n");
    Graph imported;
    EXPECT_TRUE(from_text(text, imported).is_ok());
}

TEST(TextFormat, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/orpheus_model.orpht";
    const Graph original = models::tiny_mlp();
    ASSERT_TRUE(save_text_file(original, path).is_ok());

    Graph imported;
    const Status status = load_text_file(path, imported);
    ASSERT_TRUE(status.is_ok()) << status.to_string();
    EXPECT_EQ(imported.nodes().size(), original.nodes().size());
    std::remove(path.c_str());

    EXPECT_EQ(load_text_file("/no/such/file.orpht", imported).code(),
              StatusCode::kNotFound);
}

TEST(TextFormat, MalformedInputsRejected)
{
    Graph out;
    EXPECT_EQ(from_text("", out).code(), StatusCode::kParseError);
    EXPECT_EQ(from_text("not-orpheus 1\n", out).code(),
              StatusCode::kParseError);
    EXPECT_EQ(from_text("orpheus-text 99\n", out).code(),
              StatusCode::kParseError);
    EXPECT_EQ(from_text("orpheus-text 1\nbogus record\n", out).code(),
              StatusCode::kParseError);
    EXPECT_EQ(
        from_text("orpheus-text 1\nnode n Relu\ninputs x\noutputs y\n",
                  out)
            .code(),
        StatusCode::kParseError)
        << "unterminated node must be rejected";
    EXPECT_EQ(from_text("orpheus-text 1\ninitializer w float32 [2]\n"
                        "data zz\n",
                        out)
                  .code(),
              StatusCode::kParseError)
        << "bad hex must be rejected";
}

TEST(TextFormat, QuantizedGraphRoundTrips)
{
    // Mixed-dtype graphs (uint8/int8/int32 initializers) survive.
    Graph graph("q");
    graph.add_input("x", Shape({1, 2}));
    Tensor zp(Shape{}, DataType::kUInt8);
    *zp.data<std::uint8_t>() = 3;
    graph.add_initializer("zp", std::move(zp));
    Tensor w(Shape({2}), DataType::kInt8);
    w.data<std::int8_t>()[0] = -5;
    w.data<std::int8_t>()[1] = 7;
    graph.add_initializer("w", std::move(w));
    graph.add_node(op_names::kIdentity, {"x"}, {"y"});
    graph.add_output("y");

    const Graph imported = round_trip(graph);
    EXPECT_EQ(*imported.initializer("zp").data<std::uint8_t>(), 3);
    EXPECT_EQ(imported.initializer("w").data<std::int8_t>()[0], -5);
}

} // namespace
} // namespace orpheus
