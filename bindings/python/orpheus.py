"""Python bindings for the Orpheus edge-inference framework.

The paper exposes Orpheus "with the option of using Python bindings" so
that experiments embed in scripted workflows; this module is that
binding, implemented with ctypes over the stable C ABI
(src/capi/orpheus_c.h). It has no dependencies beyond the standard
library — numpy arrays are accepted when numpy is present, but plain
lists and array('f') buffers work everywhere.

Example:

    import orpheus

    orpheus.set_num_threads(1)           # the paper's configuration
    engine = orpheus.Engine.from_zoo("resnet-18", personality="orpheus")
    probabilities = engine.run([0.0] * engine.input_size)
    print(engine.input_shape, "->", engine.output_shape)
    print(max(probabilities))
"""

from __future__ import annotations

import ctypes
import os
from array import array
from typing import List, Optional, Sequence

__all__ = ["Engine", "OrpheusError", "set_num_threads", "version"]

_ORPHEUS_OK = 0


class OrpheusError(RuntimeError):
    """Raised when the Orpheus runtime reports an error."""


def _candidate_library_paths() -> List[str]:
    """Locations tried for liborpheus_c, most specific first."""
    names = ["liborpheus_c.so", "liborpheus_c.dylib"]
    roots = []
    env = os.environ.get("ORPHEUS_LIBRARY_PATH")
    if env:
        roots.append(env)
    here = os.path.dirname(os.path.abspath(__file__))
    # In-tree build layout: <repo>/bindings/python -> <repo>/build/...
    repo = os.path.dirname(os.path.dirname(here))
    roots.append(os.path.join(repo, "build", "src", "capi"))
    roots.append(here)
    paths = []
    for root in roots:
        for name in names:
            paths.append(os.path.join(root, name))
    paths.extend(names)  # Fall back to the system loader's search path.
    return paths


def _load_library() -> ctypes.CDLL:
    last_error: Optional[Exception] = None
    for path in _candidate_library_paths():
        try:
            return ctypes.CDLL(path)
        except OSError as error:  # Try the next candidate.
            last_error = error
    raise OrpheusError(
        "cannot load liborpheus_c; build with `cmake --build build` or "
        "set ORPHEUS_LIBRARY_PATH (last error: %s)" % last_error
    )


_lib = _load_library()

# --- prototypes -------------------------------------------------------------

_lib.orpheus_version.restype = ctypes.c_char_p
_lib.orpheus_last_error.restype = ctypes.c_char_p
_lib.orpheus_set_num_threads.argtypes = [ctypes.c_int]
_lib.orpheus_engine_create_zoo.restype = ctypes.c_void_p
_lib.orpheus_engine_create_zoo.argtypes = [ctypes.c_char_p,
                                           ctypes.c_char_p]
_lib.orpheus_engine_create_from_file.restype = ctypes.c_void_p
_lib.orpheus_engine_create_from_file.argtypes = [ctypes.c_char_p,
                                                 ctypes.c_char_p]
_lib.orpheus_engine_destroy.argtypes = [ctypes.c_void_p]
_lib.orpheus_engine_input_count.argtypes = [ctypes.c_void_p]
_lib.orpheus_engine_output_count.argtypes = [ctypes.c_void_p]
_lib.orpheus_engine_step_count.argtypes = [ctypes.c_void_p]
_lib.orpheus_engine_input_shape.argtypes = [
    ctypes.c_void_p, ctypes.c_int, ctypes.POINTER(ctypes.c_int64),
    ctypes.POINTER(ctypes.c_int)]
_lib.orpheus_engine_output_shape.argtypes = [
    ctypes.c_void_p, ctypes.c_int, ctypes.POINTER(ctypes.c_int64),
    ctypes.POINTER(ctypes.c_int)]
_lib.orpheus_engine_run.argtypes = [
    ctypes.c_void_p, ctypes.POINTER(ctypes.c_float), ctypes.c_size_t,
    ctypes.POINTER(ctypes.c_float), ctypes.c_size_t]
_lib.orpheus_engine_profile_csv.argtypes = [
    ctypes.c_void_p, ctypes.c_char_p, ctypes.c_size_t]


def _last_error() -> str:
    message = _lib.orpheus_last_error()
    return message.decode("utf-8", "replace") if message else ""


def _check(status: int) -> None:
    if status != _ORPHEUS_OK:
        raise OrpheusError("orpheus error %d: %s" % (status, _last_error()))


def version() -> str:
    """Library version string, e.g. ``"orpheus 1.0.0"``."""
    return _lib.orpheus_version().decode("utf-8")


def set_num_threads(count: int) -> None:
    """Sets the global inference thread count (>= 1)."""
    _check(_lib.orpheus_set_num_threads(count))


class Engine:
    """A compiled single-input, single-output inference engine."""

    def __init__(self, handle: int):
        if not handle:
            raise OrpheusError(_last_error() or "engine creation failed")
        self._handle = handle

    # --- constructors -------------------------------------------------

    @classmethod
    def from_zoo(cls, model: str,
                 personality: Optional[str] = None) -> "Engine":
        """Compiles a model-zoo network (``"resnet-18"``, ...)."""
        handle = _lib.orpheus_engine_create_zoo(
            model.encode(), personality.encode() if personality else None)
        return cls(handle)

    @classmethod
    def from_onnx(cls, path: str,
                  personality: Optional[str] = None) -> "Engine":
        """Compiles an ONNX model file."""
        handle = _lib.orpheus_engine_create_from_file(
            path.encode(), personality.encode() if personality else None)
        return cls(handle)

    # --- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if self._handle:
            _lib.orpheus_engine_destroy(self._handle)
            self._handle = None

    def __del__(self):  # pragma: no cover - interpreter shutdown order
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # --- introspection ---------------------------------------------------

    def _shape(self, query, index: int) -> List[int]:
        dims = (ctypes.c_int64 * 16)()
        rank = ctypes.c_int(16)
        _check(query(self._handle, index, dims, ctypes.byref(rank)))
        return [int(dims[i]) for i in range(rank.value)]

    @property
    def input_shape(self) -> List[int]:
        return self._shape(_lib.orpheus_engine_input_shape, 0)

    @property
    def output_shape(self) -> List[int]:
        return self._shape(_lib.orpheus_engine_output_shape, 0)

    @property
    def input_size(self) -> int:
        size = 1
        for dim in self.input_shape:
            size *= dim
        return size

    @property
    def output_size(self) -> int:
        size = 1
        for dim in self.output_shape:
            size *= dim
        return size

    @property
    def step_count(self) -> int:
        """Executable layers in the compiled plan."""
        return _lib.orpheus_engine_step_count(self._handle)

    # --- inference ---------------------------------------------------------

    def run(self, values: Sequence[float]) -> List[float]:
        """Runs one inference; ``values`` must have ``input_size``
        elements (any flat float sequence, including numpy arrays)."""
        buffer = array("f", values)
        if len(buffer) != self.input_size:
            raise OrpheusError(
                "input has %d elements, model expects %d"
                % (len(buffer), self.input_size))
        out = (ctypes.c_float * self.output_size)()
        in_ptr = (ctypes.c_float * len(buffer)).from_buffer(buffer)
        _check(_lib.orpheus_engine_run(self._handle, in_ptr, len(buffer),
                                       out, self.output_size))
        return list(out)

    def profile_csv(self) -> str:
        """Per-layer profile (CSV) accumulated over previous runs."""
        needed = _lib.orpheus_engine_profile_csv(self._handle, None, 0)
        buffer = ctypes.create_string_buffer(needed + 1)
        _lib.orpheus_engine_profile_csv(self._handle, buffer, needed + 1)
        return buffer.value.decode("utf-8", "replace")


if __name__ == "__main__":
    # Smoke demo: classify random data with the quickstart model.
    import random

    print(version())
    set_num_threads(1)
    with Engine.from_zoo("tiny-cnn") as engine:
        print("input:", engine.input_shape, "output:",
              engine.output_shape, "steps:", engine.step_count)
        data = [random.uniform(-1, 1) for _ in range(engine.input_size)]
        probabilities = engine.run(data)
        best = max(range(len(probabilities)),
                   key=probabilities.__getitem__)
        print("predicted class %d (p=%.4f)" % (best, probabilities[best]))
