/**
 * @file
 * Model interoperability demo: export a network to ONNX bytes, inspect
 * the file, re-import it, and prove the round trip is lossless (both
 * structurally and numerically). This is the paper's "system to parse
 * pre-trained models exported to the ONNX format" exercised end to end.
 *
 * Usage:
 *   export_import [model] [output.onnx]   (default: wrn-40-2, /tmp/...)
 */
#include <cstdio>
#include <string>

#include "core/rng.hpp"
#include "models/model_zoo.hpp"
#include "onnx/exporter.hpp"
#include "onnx/importer.hpp"
#include "runtime/engine.hpp"

int
main(int argc, char **argv)
{
    using namespace orpheus;

    const std::string model_name = argc > 1 ? argv[1] : "wrn-40-2";
    const std::string path =
        argc > 2 ? argv[2] : "/tmp/orpheus_export_demo.onnx";

    try {
        Graph original = models::by_name(model_name);
        std::printf("built %-14s %zu nodes, %zu initializers\n",
                    original.name().c_str(), original.nodes().size(),
                    original.initializers().size());

        export_onnx_file(original, path).throw_if_error();
        const std::vector<std::uint8_t> bytes = export_onnx(original);
        std::printf("exported to %s (%.2f MiB)\n", path.c_str(),
                    static_cast<double>(bytes.size()) / (1024.0 * 1024.0));

        Graph imported;
        OnnxModelInfo info;
        import_onnx_file(path, imported, &info).throw_if_error();
        std::printf("imported: ir_version=%lld opset=%lld producer=%s\n",
                    static_cast<long long>(info.ir_version),
                    static_cast<long long>(info.opset_version),
                    info.producer_name.c_str());
        std::printf("structure: %zu nodes, %zu initializers %s\n",
                    imported.nodes().size(),
                    imported.initializers().size(),
                    imported.nodes().size() == original.nodes().size()
                        ? "(matches)"
                        : "(MISMATCH!)");

        // Numerical equivalence.
        Engine engine_a{Graph(original)};
        Engine engine_b(std::move(imported));
        Rng rng(99);
        Tensor input =
            random_tensor(original.inputs().front().shape, rng);
        const float divergence =
            max_abs_diff(engine_a.run(input), engine_b.run(input));
        std::printf("max |output difference| after round trip: %g %s\n",
                    static_cast<double>(divergence),
                    divergence == 0.0f ? "(bit exact)" : "");
        return divergence == 0.0f ? 0 : 1;
    } catch (const Error &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
