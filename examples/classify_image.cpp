/**
 * @file
 * Image classification through the full Orpheus pipeline: a model is
 * exported to a real ONNX file, re-imported (exercising the model
 * loader), and used to classify a synthetic image. This mirrors the
 * deployment workflow the paper targets: train elsewhere, export to
 * ONNX, run on the edge with Orpheus.
 *
 * Usage:
 *   classify_image [model] [personality]
 *     model        zoo model name (default: mobilenet-v1 at 0.25 width)
 *     personality  orpheus | tvm | pytorch | darknet (default: orpheus)
 */
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/timer.hpp"
#include "eval/personalities.hpp"
#include "models/model_zoo.hpp"
#include "onnx/exporter.hpp"
#include "onnx/importer.hpp"
#include "runtime/engine.hpp"

namespace {

/** Synthesises a deterministic "photo": smooth gradients + noise. */
orpheus::Tensor
synthetic_image(const orpheus::Shape &shape)
{
    orpheus::Tensor image(shape);
    orpheus::Rng rng(0x1317a9e);
    const std::int64_t channels = shape.dim(1);
    const std::int64_t height = shape.dim(2);
    const std::int64_t width = shape.dim(3);
    for (std::int64_t c = 0; c < channels; ++c) {
        for (std::int64_t y = 0; y < height; ++y) {
            for (std::int64_t x = 0; x < width; ++x) {
                const float gradient =
                    static_cast<float>(x + y) /
                    static_cast<float>(width + height);
                image.at(0, c, y, x) =
                    gradient + 0.1f * rng.normal();
            }
        }
    }
    return image;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace orpheus;

    const std::string model_name = argc > 1 ? argv[1] : "mobilenet-v1";
    const std::string personality_name = argc > 2 ? argv[2] : "orpheus";

    try {
        // 1. "Training framework" side: build and export to ONNX.
        Graph trained = model_name == "mobilenet-v1"
                            ? models::mobilenet_v1(1000, 0.25f)
                            : models::by_name(model_name);
        const std::string onnx_path = "/tmp/orpheus_classify_demo.onnx";
        export_onnx_file(trained, onnx_path).throw_if_error();
        std::printf("exported %s to %s\n", trained.name().c_str(),
                    onnx_path.c_str());

        // 2. Orpheus side: import and compile under a personality.
        Graph deployed;
        import_onnx_file(onnx_path, deployed).throw_if_error();
        const FrameworkPersonality personality =
            personality_by_name(personality_name);
        Engine engine(std::move(deployed), personality.options);
        std::printf("compiled with the %s personality (%s)\n",
                    personality.name.c_str(), personality.notes.c_str());

        // 3. Classify.
        const Shape input_shape = engine.graph().inputs().front().shape;
        Tensor image = synthetic_image(input_shape);
        Timer timer;
        Tensor probabilities = engine.run(image);
        const double first_ms = timer.elapsed_ms();
        timer.start();
        probabilities = engine.run(image);
        const double second_ms = timer.elapsed_ms();

        std::printf("inference: %.2f ms (first), %.2f ms (warm)\n",
                    first_ms, second_ms);

        // Top-5 report.
        const float *p = probabilities.data<float>();
        std::vector<int> order(
            static_cast<std::size_t>(probabilities.numel()));
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = static_cast<int>(i);
        std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                          [&](int a, int b) { return p[a] > p[b]; });
        std::printf("top-5 classes:\n");
        for (int rank = 0; rank < 5; ++rank)
            std::printf("  #%d class %4d  p=%.4f\n", rank + 1, order[rank],
                        static_cast<double>(p[order[rank]]));
        return 0;
    } catch (const Error &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
