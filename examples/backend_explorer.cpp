/**
 * @file
 * Backend explorer: the paper's core workflow of comparing multiple
 * layer implementations "in a consistent environment".
 *
 * For every Conv node of a model, the auto-tuner measures each
 * registered implementation on the node's real shapes and the explorer
 * prints the full measurement matrix — showing exactly where GEMM
 * convolution wins, where spatial pack wins and where the depthwise
 * kernel dominates.
 *
 * Usage:
 *   backend_explorer [model]   (default: mobilenet-v1 at 0.5 width)
 */
#include <cstdio>
#include <map>
#include <string>

#include "models/model_zoo.hpp"
#include "runtime/engine.hpp"

int
main(int argc, char **argv)
{
    using namespace orpheus;

    const std::string model_name = argc > 1 ? argv[1] : "mobilenet-v1";

    try {
        Graph graph = model_name == "mobilenet-v1"
                          ? models::mobilenet_v1(1000, 0.5f)
                          : models::by_name(model_name);

        EngineOptions options;
        options.selection = SelectionStrategy::kAutoTune;
        options.autotune_runs = 2;
        options.backend.allow_winograd = true; // let it compete
        Engine engine(std::move(graph), options);

        // Collect every implementation name that was measured.
        std::map<std::string, int> impl_columns;
        for (const auto &[node, measurements] : engine.autotune_log()) {
            for (const auto &[impl, ms] : measurements) {
                (void)ms;
                impl_columns.emplace(impl, 0);
            }
        }
        int column = 0;
        for (auto &[impl, index] : impl_columns)
            index = column++;

        std::printf("auto-tune measurements (ms per run, * = selected):\n\n");
        std::printf("%-28s", "node");
        for (const auto &[impl, index] : impl_columns) {
            (void)index;
            std::printf(" %16s", impl.c_str());
        }
        std::printf("\n%s\n", std::string(28 + 17 * impl_columns.size(),
                                          '-')
                                  .c_str());

        for (const PlanStep &step : engine.steps()) {
            auto log = engine.autotune_log().find(step.node_name);
            if (log == engine.autotune_log().end())
                continue;
            std::printf("%-28.28s", step.node_name.c_str());
            std::map<std::string, double> row;
            for (const auto &[impl, ms] : log->second)
                row[impl] = ms;
            for (const auto &[impl, index] : impl_columns) {
                (void)index;
                auto it = row.find(impl);
                if (it == row.end()) {
                    std::printf(" %16s", "-");
                } else {
                    const bool selected =
                        impl == step.layer->impl_name();
                    std::printf(" %14.3f%s", it->second,
                                selected ? " *" : "  ");
                }
            }
            std::printf("\n");
        }

        // How often did each implementation win?
        std::map<std::string, int> wins;
        for (const PlanStep &step : engine.steps()) {
            if (engine.autotune_log().count(step.node_name) > 0)
                ++wins[step.layer->impl_name()];
        }
        std::printf("\nselection summary:\n");
        for (const auto &[impl, count] : wins)
            std::printf("  %-20s selected for %d node(s)\n", impl.c_str(),
                        count);
        return 0;
    } catch (const Error &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
