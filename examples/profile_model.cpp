/**
 * @file
 * Per-layer profiling: the paper's "evaluating full networks, and
 * individual layers" infrastructure. Prints where a model spends its
 * time, layer by layer, under a chosen framework personality.
 *
 * Usage:
 *   profile_model [model] [personality] [repetitions]
 *     model        zoo name (default: wrn-40-2)
 *     personality  orpheus | tvm | pytorch | darknet (default: orpheus)
 */
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "eval/layer_bench.hpp"
#include "eval/personalities.hpp"
#include "models/model_zoo.hpp"
#include "runtime/engine.hpp"

int
main(int argc, char **argv)
{
    using namespace orpheus;

    const std::string model_name = argc > 1 ? argv[1] : "wrn-40-2";
    const std::string personality_name = argc > 2 ? argv[2] : "orpheus";
    const int repetitions = argc > 3 ? std::atoi(argv[3]) : 3;

    try {
        const FrameworkPersonality personality =
            personality_by_name(personality_name);
        EngineOptions options = personality.options;
        options.enable_profiling = true;

        Engine engine(models::by_name(model_name), options);
        std::printf("profiling %s under the %s personality "
                    "(%d repetitions, 1 thread)...\n\n",
                    model_name.c_str(), personality.name.c_str(),
                    repetitions);

        const auto timings = profile_layers(engine, repetitions);
        std::printf("%s\n",
                    layer_timings_to_string(timings, /*max_rows=*/20)
                        .c_str());

        double total = 0.0;
        for (const LayerTiming &timing : timings)
            total += timing.mean_ms;
        std::printf("total network time: %.3f ms over %zu layers\n", total,
                    timings.size());

        // Aggregate per op type — the view that motivates kernel work.
        std::map<std::string, double> per_op;
        for (const LayerTiming &timing : timings)
            per_op[timing.op_type + " / " + timing.impl_name] +=
                timing.mean_ms;
        std::printf("\nper (op, implementation) totals:\n");
        for (const auto &[key, ms] : per_op)
            std::printf("  %-40s %10.3f ms  (%4.1f%%)\n", key.c_str(), ms,
                        total > 0 ? 100.0 * ms / total : 0.0);
        return 0;
    } catch (const Error &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
