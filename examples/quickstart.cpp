/**
 * @file
 * Orpheus quickstart: define a small CNN, compile it, run inference.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "core/rng.hpp"
#include "models/builder.hpp"
#include "runtime/engine.hpp"

int
main()
{
    using namespace orpheus;

    // 1. Describe a network. GraphBuilder assembles the graph IR and
    //    initialises weights deterministically from the seed.
    GraphBuilder builder("quickstart-cnn", /*seed=*/42);
    std::string x = builder.input("image", Shape({1, 3, 32, 32}));
    x = builder.cbr(x, 16, /*k=*/3, /*s=*/1, /*p=*/1); // conv+bn+relu
    x = builder.maxpool(x, 2, 2);
    x = builder.cbr(x, 32, 3, 1, 1);
    x = builder.global_average_pool(x);
    x = builder.flatten(x);
    x = builder.dense(x, 10);
    builder.output(builder.softmax(x));

    // 2. Compile. The engine simplifies the graph (folding the batch
    //    norms into the convs, fusing the relus), plans activation
    //    memory and selects one kernel per layer.
    Engine engine(builder.take());
    std::printf("%s\n", engine.plan_summary().c_str());
    std::printf("activation arena: %zu bytes (unplanned would be %zu)\n\n",
                engine.arena_bytes(), engine.naive_arena_bytes());

    // 3. Run inference on a random image.
    Rng rng(7);
    Tensor image = random_tensor(Shape({1, 3, 32, 32}), rng);
    Tensor probabilities = engine.run(image);

    std::printf("class probabilities:\n");
    const float *p = probabilities.data<float>();
    for (int c = 0; c < 10; ++c)
        std::printf("  class %d: %.4f\n", c, static_cast<double>(p[c]));
    return 0;
}
