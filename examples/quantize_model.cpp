/**
 * @file
 * Post-training quantization walkthrough: calibrate a float model,
 * quantize its convolutions to int8, inspect the rewritten graph, and
 * compare outputs and footprints against the float original.
 *
 * Usage:
 *   quantize_model [model] [calibration_runs]   (default: wrn-40-2, 4)
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/rng.hpp"
#include "graph/passes/pass.hpp"
#include "models/model_zoo.hpp"
#include "quant/quantizer.hpp"
#include "runtime/engine.hpp"

namespace {

std::size_t
initializer_bytes(const orpheus::Graph &graph)
{
    std::size_t total = 0;
    for (const auto &[name, tensor] : graph.initializers()) {
        (void)name;
        total += tensor.byte_size();
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace orpheus;

    const std::string model_name = argc > 1 ? argv[1] : "wrn-40-2";
    const int calibration_runs = argc > 2 ? std::atoi(argv[2]) : 4;

    try {
        Graph float_graph = models::by_name(model_name);
        Graph simplified = float_graph;
        simplify_graph(simplified);
        std::printf("float model: %zu nodes, %.2f MiB of weights\n",
                    simplified.nodes().size(),
                    static_cast<double>(initializer_bytes(simplified)) /
                        (1024.0 * 1024.0));

        QuantizationOptions options;
        options.calibration_runs = calibration_runs;
        QuantizationReport report;
        Graph quantized =
            quantize_model(Graph(float_graph), options, &report);

        std::printf("quantized: %d convs -> QLinearConv, %d skipped, "
                    "%d Q/DQ bridges removed\n",
                    report.quantized_convs, report.skipped_convs,
                    report.removed_quant_pairs);
        std::printf("quantized model: %zu nodes, %.2f MiB of weights\n",
                    quantized.nodes().size(),
                    static_cast<double>(initializer_bytes(quantized)) /
                        (1024.0 * 1024.0));

        // Compare against the float model on a fresh input.
        Engine float_engine(std::move(float_graph));
        Engine quant_engine(std::move(quantized));
        Rng rng(0x9c);
        Tensor input = random_tensor(
            float_engine.graph().inputs().front().shape, rng);

        const Tensor float_out = float_engine.run(input);
        const Tensor quant_out = quant_engine.run(input);
        std::printf("max |probability drift| vs float: %.5f\n",
                    static_cast<double>(
                        max_abs_diff(quant_out, float_out)));

        std::printf("\nfloat vs quantized class probabilities:\n");
        for (std::int64_t c = 0;
             c < std::min<std::int64_t>(float_out.numel(), 10); ++c) {
            std::printf("  class %2lld:  %.4f  ->  %.4f\n",
                        static_cast<long long>(c),
                        static_cast<double>(float_out.data<float>()[c]),
                        static_cast<double>(quant_out.data<float>()[c]));
        }
        return 0;
    } catch (const Error &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
